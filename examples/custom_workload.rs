//! Building your own application model and running it under every tool.
//!
//! ```bash
//! cargo run --release --example custom_workload
//! ```
//!
//! The workload layer is not limited to the paper's applications: the
//! [`ScenarioBuilder`] describes any program as named objects, sites and
//! accesses. This example models a small image decoder with a classic
//! off-by-one in its row-copy loop (which lives in an *uninstrumented*
//! codec library), then runs it under the baseline, CSOD, ASan and
//! Sampler, comparing what each tool sees.

use csod::asan::AsanConfig;
use csod::core::CsodConfig;
use csod::machine::AccessKind;
use csod::sampler::SamplerConfig;
use csod::workloads::{ScenarioBuilder, ToolSpec, TraceRunner};

fn main() {
    let mut b = ScenarioBuilder::new("imgview");
    b.malloc("header", "imgview/open.c:40", 128);
    for row in 0..32 {
        let name = format!("row{row}");
        b.malloc(&name, "imgview/row_alloc.c:77", 256)
            // The codec fills the row, the viewer blits it back out.
            .touch(&name, "libcodec.so", AccessKind::Write, 32)
            .touch(&name, "imgview", AccessKind::Read, 32)
            // Per-row decode work (DCT, filtering, ...) keeps tool
            // overheads in realistic proportion.
            .compute(1_000_000);
    }
    // The bug: the last row's copy loop runs one element too far, then
    // keeps streaming (16 more words) — all inside libcodec.so.
    b.overflow("row31", "libcodec.so", AccessKind::Write, 16);
    for row in 0..32 {
        b.free(&format!("row{row}"));
    }
    let (registry, trace) = b.build();

    let tools: Vec<(&str, ToolSpec)> = vec![
        ("baseline", ToolSpec::Baseline),
        ("csod", ToolSpec::Csod(CsodConfig::default())),
        (
            "asan (app instrumented only)",
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: vec!["imgview".into()],
            },
        ),
        (
            "sampler (period 64)",
            ToolSpec::Sampler(SamplerConfig {
                sample_period: 64,
                ..SamplerConfig::default()
            }),
        ),
    ];

    println!("imgview decoder model: 33 allocations, off-by-one in libcodec.so\n");
    for (name, spec) in tools {
        let outcome = TraceRunner::new(&registry, spec).run(trace.iter().copied());
        println!(
            "{name:>30}: detected={:<5} overhead={:.3} allocations={}",
            outcome.detected, outcome.overhead, outcome.allocations
        );
        if let Some(report) = outcome.reports.first() {
            let first_line = report.lines().next().unwrap_or("");
            println!("{:>30}  `{first_line}`", "");
        }
    }
    println!("\nnotes: ASan misses the bug (it lives in the uninstrumented codec");
    println!("library); CSOD's detection is probabilistic per run — rerun with");
    println!("different CsodConfig::seed values to observe the sampling; the");
    println!("over-write also leaves canary evidence, so CSOD's exit sweep");
    println!("catches it even when the watchpoint missed.");
}
