//! Analyze-then-run: prime CSOD's sampler with static risk verdicts.
//!
//! ```bash
//! cargo run --example analyze_then_run
//! ```
//!
//! The workflow this demonstrates is the deployment loop the
//! `csod-analyze` crate adds to the reproduction:
//!
//! 1. run the static analysis over a workload's trace offline,
//! 2. persist the resulting risk report,
//! 3. start CSOD with the report's verdicts as sampling priors, and
//! 4. compare watch-slot spending against an unprimed run.

use csod::analyze::{analyze, RiskReport};
use csod::core::{CsodConfig, RiskClass};
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = BuggyApp::by_name("heartbleed").expect("built-in app");
    let registry = app.registry();
    let trace = app.trace(42);

    // 1. Offline: classify every allocation site of the workload.
    let report = analyze(&registry, &trace);
    let (safe, sus, unknown) = report.census();
    println!(
        "static analysis of {}: {safe} proven-safe, {sus} suspicious, {unknown} unknown site(s)",
        app.name
    );
    for v in &report.verdicts {
        if v.class == RiskClass::Suspicious {
            let innermost = v.signature.split('|').next().unwrap_or("?");
            println!(
                "  suspicious: {innermost} — {}",
                v.witness.as_deref().unwrap_or("no witness")
            );
        }
    }

    // 2. Persist and reload, as a deployment would across runs.
    let path = std::env::temp_dir().join("heartbleed-risk.tsv");
    report.save(&path)?;
    let report = RiskReport::load(&path, &registry)?;
    println!("report round-tripped through {}", path.display());

    // 3. Online: one unprimed run, one primed run, same seed.
    let unprimed = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::default()))
        .run(trace.iter().copied());
    let priors = report.to_priors(&registry);
    let primed = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_priors(priors)))
        .run(trace.iter().copied());

    // 4. What the priors bought.
    println!("\nunprimed: {} installs, detected: {}", unprimed.watched_times, unprimed.detected);
    println!(
        "primed:   {} installs ({} on proven-safe, {} on suspicious), detected: {}",
        primed.watched_times,
        primed.proven_safe_installs,
        primed.suspicious_installs,
        primed.detected
    );
    println!(
        "watch slots saved on proven-safe contexts: {} skip(s); soundness violations: {}",
        primed.prior_availability_skips, primed.proven_safe_overflows
    );
    assert_eq!(primed.proven_safe_overflows, 0);
    Ok(())
}
