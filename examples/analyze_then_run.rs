//! Analyze-then-run: prime CSOD's sampler with static risk verdicts.
//!
//! ```bash
//! cargo run --example analyze_then_run
//! ```
//!
//! The workflow this demonstrates is the deployment loop the
//! `csod-analyze` crate adds to the reproduction:
//!
//! 1. run the static analysis over a workload's trace offline,
//! 2. persist the resulting risk report,
//! 3. start CSOD with the report's verdicts as sampling priors,
//! 4. compare watch-slot spending against an unprimed run,
//! 5. show why verdicts are keyed by *calling context* rather than
//!    allocation site (a shared helper is safe from most callers and
//!    buggy from one), and
//! 6. feed the static verdicts into the fleet priors, where runtime
//!    trap evidence always outranks a static proven-safe claim and
//!    proven coverage buys the fleet a sampling-budget discount.

use csod::analyze::{analyze, RiskReport};
use csod::core::{CsodConfig, RiskClass};
use csod::fleet::{BudgetCoordinator, BudgetPolicy, FleetPriors};
use csod::workloads::{BuggyApp, SharedHelperApp, ToolSpec, TraceRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = BuggyApp::by_name("heartbleed").expect("built-in app");
    let registry = app.registry();
    let trace = app.trace(42);

    // 1. Offline: classify every allocation site of the workload.
    let report = analyze(&registry, &trace);
    let (safe, sus, unknown) = report.census();
    println!(
        "static analysis of {}: {safe} proven-safe, {sus} suspicious, {unknown} unknown site(s)",
        app.name
    );
    for v in &report.verdicts {
        if v.class == RiskClass::Suspicious {
            let innermost = v.signature.split('|').next().unwrap_or("?");
            println!(
                "  suspicious: {innermost} — {}",
                v.witness.as_deref().unwrap_or("no witness")
            );
        }
    }

    // 2. Persist and reload, as a deployment would across runs.
    let path = std::env::temp_dir().join("heartbleed-risk.tsv");
    report.save(&path)?;
    let report = RiskReport::load(&path, &registry)?;
    println!("report round-tripped through {}", path.display());

    // 3. Online: one unprimed run, one primed run, same seed.
    let unprimed = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::default()))
        .run(trace.iter().copied());
    let priors = report.to_priors(&registry);
    let primed = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_priors(priors)))
        .run(trace.iter().copied());

    // 4. What the priors bought.
    println!("\nunprimed: {} installs, detected: {}", unprimed.watched_times, unprimed.detected);
    println!(
        "primed:   {} installs ({} on proven-safe, {} on suspicious), detected: {}",
        primed.watched_times,
        primed.proven_safe_installs,
        primed.suspicious_installs,
        primed.detected
    );
    println!(
        "watch slots saved on proven-safe contexts: {} skip(s); soundness violations: {}",
        primed.prior_availability_skips, primed.proven_safe_overflows
    );
    assert_eq!(primed.proven_safe_overflows, 0);

    // 5. Context sensitivity: a helper shared by many callers. Per
    //    function, the whole helper looks suspicious (one caller
    //    overflows through it); per calling context, every innocent
    //    caller is proven safe and only the buggy caller stays hot.
    let shared = SharedHelperApp::standard();
    let shared_registry = shared.registry();
    let shared_report = analyze(&shared_registry, &shared.trace(7, None));
    let (ctx_safe, ctx_sus, _) = shared_report.census();
    let (fn_safe, fn_sus, _) = shared_report.function_census();
    println!(
        "\nshared-helper app: per-context {ctx_safe} safe / {ctx_sus} suspicious, \
         per-function view {fn_safe} safe / {fn_sus} suspicious"
    );
    assert!(ctx_safe > fn_safe, "context sensitivity must prove strictly more");

    // 6. Close the fleet loop: static verdicts become priors evidence.
    //    A later runtime trap on a context the analysis called safe
    //    must win — the effective class is worst-of-both.
    let mut fleet_priors = FleetPriors::new();
    for v in &shared_report.verdicts {
        fleet_priors.record_static(&v.signature, v.class);
    }
    let trapped = shared_report
        .verdicts
        .iter()
        .find(|v| v.class == RiskClass::ProvenSafe)
        .expect("some proven-safe context")
        .signature
        .clone();
    fleet_priors.observe(&trapped, 1);
    assert_eq!(fleet_priors.static_class(&trapped), Some(RiskClass::ProvenSafe));
    assert_eq!(fleet_priors.effective_class(&trapped), Some(RiskClass::Suspicious));
    println!("trap on {trapped}: static says ProvenSafe, fleet says Suspicious — trap wins");

    let proven = shared_report
        .verdicts
        .iter()
        .filter(|v| {
            v.class == RiskClass::ProvenSafe
                && fleet_priors.effective_class(&v.signature) == Some(RiskClass::ProvenSafe)
        })
        .count();
    let mut budget = BudgetCoordinator::new(BudgetPolicy::default());
    budget.apply_static_priors(proven, shared_report.verdicts.len());
    println!(
        "{proven}/{} contexts stand proven → workers sample at {} ppm of nominal",
        shared_report.verdicts.len(),
        budget.worker_scale_ppm()
    );
    Ok(())
}
