//! Crowdsourced detection: why 16% per execution is enough.
//!
//! ```bash
//! cargo run --release --example crowdsourced_fleet
//! ```
//!
//! The paper positions CSOD for "crowdsourcing or cloud environments,
//! where a program will be executed repeatedly by a large number of
//! users". This example simulates a fleet of users running the buggy
//! MySQL model: each execution detects the overflow with only ~16%
//! probability, yet the fleet as a whole finds it almost immediately —
//! and the evidence file turns every *subsequent* run on the same host
//! into a guaranteed detection.

use csod::core::CsodConfig;
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() {
    let app = BuggyApp::by_name("mysql").expect("model exists");
    let registry = app.registry();
    let trace = app.trace(42);
    println!(
        "fleet scenario: {} ({}), one overflow hidden in {} allocations\n",
        app.name, app.reference, app.total_allocs
    );

    // Phase 1: independent first executions across the fleet.
    let users: u64 = 40;
    let mut detectors = Vec::new();
    for user in 0..users {
        let outcome = TraceRunner::new(
            &registry,
            ToolSpec::Csod(CsodConfig::with_seed(user)),
        )
        .run(trace.iter().copied());
        if outcome.watchpoint_detected {
            detectors.push(user);
        }
    }
    println!(
        "day 1: {}/{} user machines trapped the overflow precisely: users {:?}",
        detectors.len(),
        users,
        detectors
    );
    let p = detectors.len() as f64 / users as f64;
    println!(
        "per-execution probability ~{:.0}% -> P(fleet misses) = {:.2e}\n",
        p * 100.0,
        (1.0 - p).powi(users as i32)
    );

    // Phase 2: one host that MISSED the watchpoint still recorded canary
    // evidence (it is an over-write); its second run cannot miss.
    let missed_seed = (0..1000)
        .find(|&s| {
            let out = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(s)))
                .run(trace.iter().copied());
            !out.watchpoint_detected
        })
        .expect("some execution misses");
    let path = std::env::temp_dir().join("csod-fleet-example.evidence");
    let _ = std::fs::remove_file(&path);
    let mut config = CsodConfig::with_seed(missed_seed);
    config.evidence_path = Some(path.clone());
    let first = TraceRunner::new(&registry, ToolSpec::Csod(config.clone()))
        .run(trace.iter().copied());
    println!(
        "a host that missed (seed {missed_seed}): watchpoint {}, canary evidence {}",
        first.watchpoint_detected, first.evidence_detected
    );
    let mut config2 = CsodConfig::with_seed(missed_seed + 1);
    config2.evidence_path = Some(path.clone());
    let second = TraceRunner::new(&registry, ToolSpec::Csod(config2))
        .run(trace.iter().copied());
    println!(
        "the same host, second execution: watchpoint detection = {} (paper V-A2: always)",
        second.watchpoint_detected
    );
    let _ = std::fs::remove_file(&path);

    // The cost of being always-on.
    let outcome = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::default()))
        .run(trace.iter().copied());
    println!(
        "\nalways-on cost of this run: {} watch installs, {} syscalls",
        outcome.watched_times, outcome.syscalls
    );
}
