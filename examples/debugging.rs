//! Post-mortem debugging with the machine's flight recorder.
//!
//! ```bash
//! cargo run --release --example debugging
//! ```
//!
//! When a detection report looks surprising, the question is always
//! "what exactly happened just before the trap?". The simulated machine
//! has the answer built in: a bounded flight recorder of recent
//! accesses, syscalls, signals and thread events. This example triggers
//! an overflow from a worker thread and dumps the recorded tail.

use csod::core::{Csod, CsodConfig, RunSummary};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{Machine, SiteToken, ThreadId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    machine.recorder_enable(32); // keep the last 32 events
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));

    // A producer/consumer pair sharing a ring of buffers.
    let consumer = csod.spawn_thread(&mut machine);
    let site = SiteToken(0);
    csod.register_site(
        site,
        CallingContext::from_locations(&frames, ["ring/pop.c:77", "consumer.c:consume_loop:12"]),
    );

    let mut ring = Vec::new();
    for i in 0..4 {
        let ctx = CallingContext::from_locations(
            &frames,
            ["ring/push.c:31", "producer.c:main_loop:8"],
        );
        let key = ContextKey::new(frames.intern("ring/push.c:31"), 0x40 + i * 0x10);
        ring.push(csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 48, key, &ctx)?);
    }

    // The consumer drains the ring... and reads one slot too far on the
    // last buffer.
    machine.set_current_site(consumer, site);
    for &buf in &ring {
        for off in (0..48).step_by(8) {
            machine.app_read(consumer, buf + off, 8)?;
        }
    }
    machine.app_read(consumer, ring[3] + 48, 8)?; // the bug
    csod.poll(&mut machine);

    assert!(csod.detected());
    println!("--- report ---\n");
    println!("{}", csod.reports()[0].render(&frames));

    println!("--- flight recorder: the last {} events before/at the trap ---\n",
        machine.recorder().map_or(0, |r| r.len()));
    let recorder = machine.recorder_take().expect("enabled at boot");
    print!("{}", recorder.dump());

    csod.finish(&mut machine);
    println!("\n{}", RunSummary::collect(&csod, &machine));
    Ok(())
}
