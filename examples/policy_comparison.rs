//! Replacement-policy shoot-out on one application (Table II, one row).
//!
//! ```bash
//! cargo run --release --example policy_comparison -- libdwarf 200
//! ```
//!
//! Libdwarf is the instructive case: the naive policy detects its
//! over-read *every* time (the buggy allocation reuses a register an
//! early, still-watched object just released), while the preempting
//! policies trade that certainty for coverage of applications the naive
//! policy can never catch.

use csod::core::{CsodConfig, ReplacementPolicy};
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "libdwarf".into());
    let runs: u64 = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let Some(app) = BuggyApp::by_name(&name) else {
        eprintln!("unknown application `{name}`; known:");
        for a in BuggyApp::all() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };

    println!("{} x {runs} executions per policy\n", app.name);
    let registry = app.registry();
    let trace = app.trace(42);
    for policy in ReplacementPolicy::ALL {
        let mut detected = 0u64;
        let mut watched_total = 0u64;
        for seed in 0..runs {
            let mut config = CsodConfig::with_policy(policy);
            config.seed = seed;
            let outcome =
                TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied());
            detected += u64::from(outcome.watchpoint_detected);
            watched_total += outcome.watched_times;
        }
        println!(
            "{policy:>10}: detected {detected:>4}/{runs}  ({:>5.1}%), avg {:.1} watch installs/run",
            100.0 * detected as f64 / runs as f64,
            watched_total as f64 / runs as f64,
        );
    }
}
