//! Chaos drill: watch CSOD degrade and recover under injected faults.
//!
//! ```bash
//! cargo run --example chaos_drill            # the acceptance storm
//! cargo run --example chaos_drill -- busy    # EBUSY window -> ladder down & up
//! cargo run --example chaos_drill -- broken  # permanently dead backend
//! cargo run --example chaos_drill -- clean   # control run, no faults
//! ```
//!
//! Each scenario runs the chaos soak from `csod::workloads` and prints
//! the injected-fault tally, the run summary (with its `health:` line),
//! and the no-leak verdict.

use csod::core::{CsodConfig, DegradationParams};
use csod::machine::VirtDuration;
use csod::workloads::{run_chaos_soak, ChaosConfig};

fn scenario(name: &str) -> Option<ChaosConfig> {
    let fast_recovery = DegradationParams {
        retry_backoff: VirtDuration::from_micros(100),
        max_backoff: VirtDuration::from_millis(2),
        probe_interval: VirtDuration::from_millis(2),
        quarantine_threshold: 50,
        quarantine_period: VirtDuration::from_millis(5),
        ..DegradationParams::default()
    };
    match name {
        // The acceptance scenario: 30 % of perf syscalls fail, 10 % of
        // SIGTRAPs vanish, and the detector has to ride it out.
        "storm" => Some(ChaosConfig {
            allocations: 200_000,
            csod: CsodConfig {
                degradation: fast_recovery,
                ..CsodConfig::default()
            },
            ..ChaosConfig::default()
        }),
        // A co-resident debugger holds the registers for a while: the
        // ladder goes watchpoints -> canary-only -> probed -> re-armed.
        "busy" => Some(ChaosConfig {
            allocations: 120_000,
            perf_failure_ppm: 0,
            signal_drop_ppm: 0,
            signal_delay_ppm: 0,
            alloc_failure_ppm: 0,
            busy_window: Some((VirtDuration::from_millis(1), VirtDuration::from_millis(100))),
            csod: CsodConfig {
                degradation: DegradationParams {
                    retry_backoff: VirtDuration::from_millis(1),
                    max_backoff: VirtDuration::from_millis(10),
                    degrade_threshold: 4,
                    probe_interval: VirtDuration::from_millis(20),
                    quarantine_threshold: 1_000,
                    ..DegradationParams::default()
                },
                ..CsodConfig::default()
            },
            ..ChaosConfig::default()
        }),
        // The backend never works: detection survives on canaries alone.
        "broken" => Some(ChaosConfig {
            allocations: 50_000,
            perf_failure_ppm: 1_000_000,
            ..ChaosConfig::default()
        }),
        // Control: no fault plan activity at all.
        "clean" => Some(ChaosConfig {
            allocations: 50_000,
            perf_failure_ppm: 0,
            signal_drop_ppm: 0,
            signal_delay_ppm: 0,
            alloc_failure_ppm: 0,
            ..ChaosConfig::default()
        }),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "storm".into());
    let Some(cfg) = scenario(&name) else {
        eprintln!("unknown scenario `{name}`; pick one of: storm, busy, broken, clean");
        std::process::exit(2);
    };

    println!("== chaos drill: {name} ({} allocations) ==", cfg.allocations);
    let out = run_chaos_soak(&cfg);

    println!(
        "injected: {} perf failure(s), {} dropped + {} delayed SIGTRAP(s), \
         {} busy rejection(s), {} failed alloc(s)",
        out.faults.perf_failures(),
        out.faults.dropped_signals,
        out.faults.delayed_signals,
        out.faults.busy_rejections,
        out.failed_allocs,
    );
    println!("planted overflows: {}", out.planted);
    println!("{}", out.summary);
    println!(
        "leak check: {} open event(s), {}/{} registers free -> {}",
        out.open_events,
        out.free_registers,
        out.total_registers,
        if out.leak_free() { "LEAK-FREE" } else { "LEAKED" },
    );
    if !out.detected {
        eprintln!("warning: planted overflows went undetected");
        std::process::exit(1);
    }
    Ok(())
}
