//! Quickstart: detect a heap buffer over-write with CSOD in ~40 lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! The flow mirrors a real deployment: the application's allocations are
//! interposed, CSOD samples the new object's calling context, places one
//! of the four hardware watchpoints on the word just past the object, and
//! the overflowing statement traps the moment it runs.

use csod::core::{Csod, CsodConfig, RunSummary};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{Machine, SiteToken, ThreadId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The substrate: a deterministic machine with a heap.
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;

    // The drop-in detector (the paper preloads it with LD_PRELOAD).
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));

    // The application allocates a 64-byte buffer...
    let alloc_ctx = CallingContext::from_locations(
        &frames,
        ["app/parser.c:104", "app/driver.c:88", "app/main.c:21"],
    );
    let key = ContextKey::new(alloc_ctx.first_level().expect("non-empty"), 0x40);
    let buffer = csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &alloc_ctx)?;
    println!("allocated 64-byte buffer at {buffer}");
    println!("watched by a hardware watchpoint: {}", csod.is_watched(buffer));

    // ...fills it correctly...
    let copy_site = SiteToken(0);
    csod.register_site(
        copy_site,
        CallingContext::from_locations(
            &frames,
            ["libc/memcpy.S:81", "app/parser.c:131", "app/main.c:21"],
        ),
    );
    machine.set_current_site(ThreadId::MAIN, copy_site);
    for offset in (0..64).step_by(8) {
        machine.app_write(ThreadId::MAIN, buffer + offset, 8)?;
    }
    // ...does the rest of its real work (parsing, rendering, ...)...
    machine.app_compute(50_000_000);
    csod.poll(&mut machine);
    assert!(!csod.detected(), "in-bounds writes never alarm");

    // ...and then writes one word too far.
    machine.app_write(ThreadId::MAIN, buffer + 64, 8)?;
    csod.poll(&mut machine);

    assert!(csod.detected(), "the overflow trapped instantly");
    println!("\n--- CSOD bug report (paper Figure 6 format) ---\n");
    for report in csod.reports() {
        println!("{}", report.render(&frames));
    }

    csod.free(&mut machine, &mut heap, ThreadId::MAIN, buffer)?;
    csod.finish(&mut machine);
    println!("{}", RunSummary::collect(&csod, &machine));
    Ok(())
}
