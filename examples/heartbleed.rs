//! The Heartbleed scenario (CVE-2014-0160) on the workload models.
//!
//! ```bash
//! cargo run --release --example heartbleed
//! ```
//!
//! Nginx + OpenSSL allocate ~5,400 objects from ~300 calling contexts
//! before the malicious heartbeat request arrives; the over-*read* then
//! leaks whatever lies past the reply buffer. Tools that only check
//! writes (canaries, DoubleTake) cannot see it — CSOD's read/write
//! watchpoints can, with a per-execution probability that this example
//! measures over repeated "user sessions".

use csod::core::CsodConfig;
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() {
    let app = BuggyApp::by_name("heartbleed").expect("model exists");
    println!(
        "{}: {} ({})",
        app.name, app.vulnerability, app.reference
    );
    println!(
        "{} contexts / {} allocations, {} / {} before the overflow\n",
        app.total_contexts, app.total_allocs, app.contexts_before, app.allocs_before
    );

    let registry = app.registry();
    let trace = app.trace(42);

    // One "server lifetime" = one execution; the exploit is in the trace.
    let sessions: u64 = 50;
    let mut detected: u64 = 0;
    let mut first_report: Option<String> = None;
    for seed in 0..sessions {
        let config = CsodConfig::with_seed(seed);
        let outcome =
            TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied());
        if outcome.watchpoint_detected {
            detected += 1;
            if first_report.is_none() {
                first_report = outcome.reports.first().cloned();
            }
        }
    }
    println!(
        "detected in {detected}/{sessions} executions ({:.0}%; paper: ~36-40%)",
        100.0 * detected as f64 / sessions as f64
    );
    println!("\nfirst report produced:\n");
    println!(
        "{}",
        first_report.unwrap_or_else(|| "(no detection in this batch — rerun)".into())
    );

    // The canary cannot catch an over-READ, so evidence mode alone would
    // stay silent — exactly the Heartbleed blind spot of write-only
    // detectors the paper calls out in Section I.
    let outcome = TraceRunner::new(
        &registry,
        ToolSpec::Csod(CsodConfig {
            seed: 7,
            ..CsodConfig::default()
        }),
    )
    .run(trace.iter().copied());
    println!(
        "canary evidence for this over-read: {} (expected: none — reads corrupt nothing)",
        if outcome.evidence_detected { "found" } else { "none" }
    );
}
