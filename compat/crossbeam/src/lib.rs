//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the one API it uses: [`scope`] with
//! [`Scope::spawn`], implemented on top of `std::thread::scope`. As in
//! crossbeam, the scope joins every spawned thread before returning and
//! reports child panics through its `Result` instead of unwinding.

#![warn(missing_docs)]

use std::thread;

/// A scope handle passed to [`scope`]'s closure; spawn threads through it.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

// Manual impls: deriving would put a `Clone` bound on the lifetimes' types.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a spawned scoped thread; `join` returns the closure's result.
pub type ScopedJoinHandle<'scope, T> = thread::ScopedJoinHandle<'scope, T>;

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a copy of the scope so
    /// nested spawns are possible (callers commonly ignore it with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Runs `f` with a [`Scope`]; joins all spawned threads before returning.
///
/// Returns `Err` carrying the panic payload if any child thread panicked,
/// mirroring crossbeam's signature (callers `.unwrap()` it).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                let total = &total;
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 8_000);
    }

    #[test]
    fn join_returns_value() {
        let got = scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(result.is_err());
    }
}
