//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple — a
//! timed loop reporting mean ns/iter — with none of criterion's
//! statistics, but the benches compile, run fast and print comparable
//! numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the compiler fence against over-optimisation.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (shim: ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            mean_ns: 0.0,
        }
    }

    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` over fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

/// Top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

fn run_one(path: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // One untimed calibration pass, then the measured pass. The iteration
    // count scales with sample_size only loosely — enough for a readable
    // ns/iter figure without criterion's statistical machinery.
    let mut calib = Bencher::new(1);
    f(&mut calib);
    let target_iters = (sample_size as u64).max(10);
    let mut bench = Bencher::new(target_iters);
    f(&mut bench);
    println!("{path}: {:.1} ns/iter (n={})", bench.mean_ns, bench.iters);
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let path = format!("{}/{}", self.name, id.into().label);
        run_one(&path, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let path = format!("{}/{}", self.name, id.label);
        run_one(&path, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_parameterised_cases() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = Vec::new();
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| n * 2);
            });
            seen.push(n);
        }
        group.finish();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher::new(5);
        let mut built = 0;
        b.iter_batched(
            || {
                built += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(built, 5);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
