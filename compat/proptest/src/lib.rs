//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the subset of proptest it actually uses: the
//! [`proptest!`] macro, integer-range / `any::<T>()` / tuple /
//! [`collection::vec`] strategies, `prop_assert!`-style assertions, and
//! [`ProptestConfig::with_cases`]. Each test runs its body over a
//! deterministic stream of sampled inputs (seeded from the test name, so
//! failures reproduce); there is no shrinking — a failing case panics with
//! the normal assertion message.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic input source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name, so every run of a given test
    /// sees the same input stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of sampled values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a default "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The unconstrained strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each test body runs over.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exploring the input space (streams are deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __csod_config: $crate::ProptestConfig = $cfg;
            let mut __csod_rng = $crate::TestRng::from_name(stringify!($name));
            for _ in 0..__csod_config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __csod_rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Skips the current sampled case when its precondition fails.
///
/// Expands to `continue` on the case loop, so it is only valid at the top
/// level of a `proptest!` body (which is where the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Proptest-style assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Proptest-style equality assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Proptest-style inequality assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs(ops in crate::collection::vec((1u64..9, any::<bool>()), 1..30)) {
            prop_assert!(!ops.is_empty() && ops.len() < 30);
            for (v, _flag) in ops {
                prop_assert!((1..9).contains(&v));
            }
        }
    }
}
