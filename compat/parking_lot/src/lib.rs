//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the small API subset it actually uses: [`Mutex`] and
//! [`RwLock`] whose guards are returned directly (no `Result`), with
//! poisoning recovered transparently like `parking_lot` semantics.

#![warn(missing_docs)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
