//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the surface it actually uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`Rng::gen`] over the primitive types that appear
//! in the workloads. The generator is SplitMix64 — deterministic and
//! high-quality enough for workload shaping; it is *not* the upstream
//! ChaCha-based `StdRng`, so streams differ from real `rand` for the same
//! seed (nothing in the workspace depends on the exact stream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry points (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the given bit source.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0..=4u32);
            assert!(b <= 4);
            let c = rng.gen_range(0.0..=0.95f64);
            assert!((0.0..=0.95).contains(&c));
            let d = rng.gen_range(5usize..6);
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
