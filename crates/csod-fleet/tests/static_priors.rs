//! Property tests for the two evidence classes the fleet priors hold:
//! runtime trap counts and static analysis verdicts. The soundness
//! obligations they pin down:
//!
//! 1. Trap evidence always wins: no sequence of static verdicts — in
//!    any order, including after the trap — can make a context that
//!    trapped look anything but `Suspicious`.
//! 2. Static `Suspicious` verdicts only ever *add* pinned contexts to
//!    the seed evidence; static `ProvenSafe` never removes one.
//! 3. The journal (WAL frames plus checkpoints) round-trips both
//!    evidence classes exactly, so a crash between generations cannot
//!    silently drop a static verdict or downgrade a trap.
//!
//! The vendored proptest shim samples plain tuples, so each op is an
//! encoded `(kind, signature index, magnitude)` triple decoded by
//! [`apply`].

use csod_core::RiskClass;
use csod_fleet::journal::PriorsStore;
use csod_fleet::FleetPriors;
use proptest::prelude::*;

/// One mutation against the priors, drawn from both evidence classes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Trap { sig: usize, count: u64 },
    Static { sig: usize, class: RiskClass },
}

const SIG_POOL: usize = 8;

fn sig_name(i: usize) -> String {
    format!("fn_{i}|caller_{}", i % 3)
}

/// Decodes a sampled `(kind, sig, magnitude)` triple: kind 0 is a trap
/// (magnitude = count), kinds 1-3 are static verdicts (one per class).
fn decode(kind: u8, sig: usize, magnitude: u64) -> Op {
    match kind {
        0 => Op::Trap { sig, count: magnitude.max(1) },
        1 => Op::Static { sig, class: RiskClass::ProvenSafe },
        2 => Op::Static { sig, class: RiskClass::Unknown },
        _ => Op::Static { sig, class: RiskClass::Suspicious },
    }
}

fn apply(priors: &mut FleetPriors, op: Op) {
    match op {
        Op::Trap { sig, count } => {
            priors.observe(&sig_name(sig), count);
        }
        Op::Static { sig, class } => {
            priors.record_static(&sig_name(sig), class);
        }
    }
}

fn build(ops: &[(u8, usize, u64)]) -> FleetPriors {
    let mut priors = FleetPriors::new();
    for &(kind, sig, magnitude) in ops {
        apply(&mut priors, decode(kind, sig, magnitude));
    }
    priors
}

proptest! {
    /// Any context with at least one trap reports `Suspicious` as its
    /// effective class, no matter which static verdicts landed before
    /// or after — static `ProvenSafe` must never mask a live trap.
    #[test]
    fn trap_evidence_is_never_masked_by_static_verdicts(
        ops in proptest::collection::vec((0u8..4, 0usize..SIG_POOL, 1u64..50), 1..60)
    ) {
        let priors = build(&ops);
        for i in 0..SIG_POOL {
            let sig = sig_name(i);
            if priors.contains(&sig) {
                prop_assert_eq!(
                    priors.effective_class(&sig),
                    Some(RiskClass::Suspicious),
                    "trapped context {} reported a non-suspicious class",
                    sig
                );
            }
        }
    }

    /// The generation-zero seed evidence is monotone: every trapped
    /// context stays pinned, every static-`Suspicious` context is
    /// pre-boosted, and static `ProvenSafe` verdicts remove nothing.
    #[test]
    fn seed_evidence_is_monotone_under_static_verdicts(
        ops in proptest::collection::vec((0u8..4, 0usize..SIG_POOL, 1u64..50), 1..60)
    ) {
        let priors = build(&ops);
        let seed = priors.seed_evidence_store();
        for i in 0..SIG_POOL {
            let sig = sig_name(i);
            if priors.contains(&sig) {
                prop_assert!(seed.contains_signature(&sig), "trap evidence dropped: {}", sig);
            }
            if priors.static_class(&sig) == Some(RiskClass::Suspicious) {
                prop_assert!(seed.contains_signature(&sig), "static suspicious not seeded: {}", sig);
            }
            if seed.contains_signature(&sig) {
                prop_assert!(
                    priors.contains(&sig)
                        || priors.static_class(&sig) == Some(RiskClass::Suspicious),
                    "seed pinned a context with no supporting evidence: {}",
                    sig
                );
            }
        }
    }

    /// Merging two priors (the fleet's cross-run aggregation path) is
    /// worst-wins per class and never loses a trap or a verdict.
    #[test]
    fn merge_preserves_both_evidence_classes(
        left in proptest::collection::vec((0u8..4, 0usize..SIG_POOL, 1u64..50), 1..40),
        right in proptest::collection::vec((0u8..4, 0usize..SIG_POOL, 1u64..50), 1..40)
    ) {
        let a = build(&left);
        let b = build(&right);
        let mut merged = a.clone();
        merged.merge(&b);
        for i in 0..SIG_POOL {
            let sig = sig_name(i);
            prop_assert_eq!(merged.count(&sig), a.count(&sig) + b.count(&sig));
            let rank = |c: Option<RiskClass>| match c {
                None => -1i8,
                Some(RiskClass::ProvenSafe) => 0,
                Some(RiskClass::Unknown) => 1,
                Some(RiskClass::Suspicious) => 2,
            };
            prop_assert_eq!(
                rank(merged.static_class(&sig)),
                rank(a.static_class(&sig)).max(rank(b.static_class(&sig))),
                "merged static class is not worst-wins for {}",
                sig
            );
            if a.contains(&sig) || b.contains(&sig) {
                prop_assert_eq!(merged.effective_class(&sig), Some(RiskClass::Suspicious));
            }
        }
    }

    /// WAL + checkpoint + recovery reproduce the exact same effective
    /// class and trap count for every context, for any op sequence and
    /// any checkpoint placement (`checkpoint_at >= ops.len()` means no
    /// checkpoint, so recovery replays pure WAL).
    #[test]
    fn journal_round_trips_both_evidence_classes(
        ops in proptest::collection::vec((0u8..4, 0usize..SIG_POOL, 1u64..50), 1..40),
        checkpoint_at in 0usize..48
    ) {
        let dir = std::env::temp_dir().join(format!(
            "csod-prop-journal-{}-{}-{}",
            std::process::id(),
            ops.len(),
            checkpoint_at
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = PriorsStore::open(&dir).unwrap();
        for (i, &(kind, sig, magnitude)) in ops.iter().enumerate() {
            match decode(kind, sig, magnitude) {
                Op::Trap { sig, count } => store.observe(&sig_name(sig), count),
                Op::Static { sig, class } => store.observe_static(&sig_name(sig), class),
            }
            if checkpoint_at == i {
                store.checkpoint().unwrap();
            }
        }
        let expected = store.priors().clone();
        drop(store);

        let recovered = PriorsStore::open(&dir).unwrap();
        for i in 0..SIG_POOL {
            let sig = sig_name(i);
            prop_assert_eq!(
                recovered.priors().count(&sig),
                expected.count(&sig),
                "trap count diverged after recovery for {}",
                sig
            );
            prop_assert_eq!(
                recovered.priors().effective_class(&sig),
                expected.effective_class(&sig),
                "effective class diverged after recovery for {}",
                sig
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
