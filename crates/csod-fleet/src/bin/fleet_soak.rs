//! Fleet soak driver for CI.
//!
//! Runs a csod-fleet aggregation loop against the chaos workload and
//! prints the fleet summary plus the health-counter metrics. Two modes
//! beyond the default soak support the kill-and-recover CI leg:
//!
//! - `--dir <path>` roots the journal somewhere durable so a later
//!   invocation can recover it (default: a fresh temp dir, removed on
//!   success).
//! - `--verify` skips the soak and only recovers the store under
//!   `--dir`, failing if recovery comes back empty or inconsistent —
//!   this is what CI runs after `kill -9`ing a soak mid-flight.
//!
//! Scale knobs (also honoured by the nightly-chaos CI job):
//! `CSOD_FLEET_RUNS` multiplies workers and generations,
//! `CSOD_FLEET_CRASH_PPM` overrides the injected crash rate.

use csod_fleet::{FleetConfig, FleetController, PriorsStore};
use csod_rng::PPM_SCALE;
use std::path::PathBuf;
use std::process::ExitCode;

fn env_scale(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_args() -> (Option<PathBuf>, bool) {
    let mut dir = None;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = args.next().map(PathBuf::from),
            "--verify" => verify = true,
            other => {
                eprintln!("unknown argument: {other} (expected --dir <path> or --verify)");
                std::process::exit(2);
            }
        }
    }
    (dir, verify)
}

fn main() -> ExitCode {
    let (dir_arg, verify) = parse_args();
    let dir = dir_arg.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("csod-fleet-soak-{}", std::process::id()))
    });

    if verify {
        return match PriorsStore::open(&dir) {
            Ok(store) => {
                let stats = store.stats();
                println!(
                    "recovered: {} context(s), epoch {}, {} WAL record(s) replayed, {} tail frame(s) rejected, {} checkpoint fallback(s)",
                    store.priors().len(),
                    store.epoch(),
                    stats.wal_records_recovered,
                    stats.wal_tail_rejected,
                    stats.checkpoint_fallbacks
                );
                if store.priors().is_empty() {
                    eprintln!("FAIL: recovery produced an empty aggregate");
                    ExitCode::FAILURE
                } else {
                    println!("kill-and-recover: OK");
                    ExitCode::SUCCESS
                }
            }
            Err(err) => {
                eprintln!("FAIL: could not recover the priors store: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let scale = env_scale("CSOD_FLEET_RUNS", 1).max(1);
    let mut cfg = FleetConfig::new(&dir);
    cfg.workers = (4 * scale as usize).min(32);
    cfg.generations = 2 + scale;
    cfg.threads = 4;
    cfg.crash_ppm = env_scale("CSOD_FLEET_CRASH_PPM", 200_000) as u32; // 20 % of runs
    cfg.corrupt_line_ppm = PPM_SCALE / 4;
    cfg.duplicate_line_ppm = PPM_SCALE / 4;

    let mut fleet = match FleetController::new(cfg) {
        Ok(fleet) => fleet,
        Err(err) => {
            eprintln!("FAIL: could not open the fleet directory {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let outcome = fleet.run();
    println!("{outcome}");
    println!("{}", outcome.metrics_registry().to_json());

    if !outcome.leak_free {
        eprintln!("FAIL: a completed worker leaked runtime state");
        return ExitCode::FAILURE;
    }
    if !outcome.detected {
        eprintln!("FAIL: no worker detected a planted overflow");
        return ExitCode::FAILURE;
    }
    if outcome.confirmed_contexts == 0 {
        eprintln!("FAIL: nothing reached the durable aggregate");
        return ExitCode::FAILURE;
    }
    if dir_arg.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("fleet soak: OK");
    ExitCode::SUCCESS
}
