//! Fleet-wide aggregated overflow evidence, keyed by context signature.
//!
//! Workers report overflows as [`TrapReport`](csod_core::TrapReport)
//! JSONL records; what survives aggregation is the allocation calling
//! context's *signature* — the frames joined by `|`, innermost first,
//! exactly the [`EvidenceStore`](csod_core::EvidenceStore) on-disk
//! format — plus a confirmation count. Signatures are the only portable
//! identity across processes: a [`ContextKey`](csod_ctx::ContextKey)
//! bakes in a process-local frame id and cannot be reconstructed from a
//! string, so re-seeding works by matching signatures against the sites
//! a new process registers, or by handing the whole set to the evidence
//! path which pins matching contexts at 100 %.

use csod_core::{AnalysisPriors, EvidenceStore, RiskClass};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Aggregated overflow evidence for a fleet: confirmed context
/// signatures and how many unique reports confirmed each.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetPriors {
    contexts: BTreeMap<String, u64>,
}

impl FleetPriors {
    /// An empty aggregate.
    pub fn new() -> FleetPriors {
        FleetPriors::default()
    }

    /// Records `count` more unique reports for `signature`. Returns
    /// `true` when the signature was new to the aggregate.
    pub fn observe(&mut self, signature: &str, count: u64) -> bool {
        let sig = signature.trim();
        if sig.is_empty() {
            return false;
        }
        let entry = self.contexts.entry(sig.to_owned()).or_insert(0);
        let was_new = *entry == 0;
        *entry += count.max(1);
        was_new
    }

    /// Number of unique reports recorded for `signature` (0 if unseen).
    pub fn count(&self, signature: &str) -> u64 {
        self.contexts.get(signature).copied().unwrap_or(0)
    }

    /// Whether `signature` has any confirmation.
    pub fn contains(&self, signature: &str) -> bool {
        self.contexts.contains_key(signature)
    }

    /// Confirmed signatures in sorted order, with their counts.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.contexts.iter().map(|(s, &c)| (s.as_str(), c))
    }

    /// Number of confirmed contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// `true` when nothing was confirmed yet.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// Merges another aggregate into this one (counts add).
    pub fn merge(&mut self, other: &FleetPriors) {
        for (sig, count) in &other.contexts {
            *self.contexts.entry(sig.clone()).or_insert(0) += count;
        }
    }

    /// The aggregate as an [`EvidenceStore`]: the seed each new process
    /// loads through `CsodConfig::evidence_path`, pinning any matching
    /// context at 100 % from its first allocation — the §V-A2
    /// second-execution guarantee.
    pub fn to_evidence_store(&self) -> EvidenceStore {
        let mut store = EvidenceStore::new();
        for sig in self.contexts.keys() {
            store.insert_signature(sig);
        }
        store
    }

    /// Writes the aggregate as an evidence file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_evidence_file(&self, path: &Path) -> io::Result<()> {
        self.to_evidence_store().save(path)
    }

    /// Builds [`AnalysisPriors`] for a new process: every site whose
    /// full context signature is confirmed here is classed
    /// [`RiskClass::Suspicious`], so the sampler starts it boosted even
    /// before the evidence path pins it outright.
    pub fn analysis_priors<'a>(
        &self,
        sites: impl IntoIterator<Item = (ContextKey, &'a CallingContext)>,
        frames: &FrameTable,
    ) -> AnalysisPriors {
        AnalysisPriors::from_classes(sites.into_iter().filter_map(|(key, ctx)| {
            let sig = EvidenceStore::signature(ctx, frames);
            self.contains(&sig).then_some((key, RiskClass::Suspicious))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_and_dedupes_identity() {
        let mut p = FleetPriors::new();
        assert!(p.observe("a.c:1|main.c:1", 1));
        assert!(!p.observe("a.c:1|main.c:1", 2), "second sighting not new");
        assert!(!p.observe("", 1), "blank signatures are ignored");
        assert_eq!(p.count("a.c:1|main.c:1"), 3);
        assert_eq!(p.len(), 1);
        assert!(p.contains("a.c:1|main.c:1"));
        assert!(!p.contains("b.c:2"));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FleetPriors::new();
        a.observe("x", 2);
        let mut b = FleetPriors::new();
        b.observe("x", 1);
        b.observe("y", 1);
        a.merge(&b);
        assert_eq!(a.count("x"), 3);
        assert_eq!(a.count("y"), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn evidence_round_trip_reaches_a_new_runtime() {
        let frames = FrameTable::new();
        let ctx = CallingContext::from_locations(&frames, ["mem.c:312", "main.c:1"]);
        let mut p = FleetPriors::new();
        p.observe(&EvidenceStore::signature(&ctx, &frames), 1);
        let store = p.to_evidence_store();
        assert!(store.contains(&ctx, &frames));
    }

    #[test]
    fn analysis_priors_match_by_signature() {
        let frames = FrameTable::new();
        let hot = CallingContext::from_locations(&frames, ["hot.c:1", "main.c:1"]);
        let cold = CallingContext::from_locations(&frames, ["cold.c:2", "main.c:1"]);
        let hot_key = ContextKey::new(frames.intern("hot.c:1"), 0x40);
        let cold_key = ContextKey::new(frames.intern("cold.c:2"), 0x40);
        let mut p = FleetPriors::new();
        p.observe(&EvidenceStore::signature(&hot, &frames), 1);
        let priors = p.analysis_priors([(hot_key, &hot), (cold_key, &cold)], &frames);
        assert_eq!(priors.class_of(hot_key), Some(RiskClass::Suspicious));
        assert_eq!(priors.class_of(cold_key), None);
    }
}
