//! Fleet-wide aggregated overflow evidence, keyed by context signature.
//!
//! Workers report overflows as [`TrapReport`](csod_core::TrapReport)
//! JSONL records; what survives aggregation is the allocation calling
//! context's *signature* — the frames joined by `|`, innermost first,
//! exactly the [`EvidenceStore`](csod_core::EvidenceStore) on-disk
//! format — plus a confirmation count. Signatures are the only portable
//! identity across processes: a [`ContextKey`](csod_ctx::ContextKey)
//! bakes in a process-local frame id and cannot be reconstructed from a
//! string, so re-seeding works by matching signatures against the sites
//! a new process registers, or by handing the whole set to the evidence
//! path which pins matching contexts at 100 %.

use csod_core::{AnalysisPriors, EvidenceStore, RiskClass};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Aggregated overflow evidence for a fleet: trap-confirmed context
/// signatures with their report counts, plus static analyzer verdicts
/// ingested as a second, weaker evidence class.
///
/// The two classes compose under one soundness rule: **runtime trap
/// evidence always wins**. A context with any confirmed report is
/// suspicious no matter what the analyzer proved (the proof was for a
/// version or an input distribution the fleet has since falsified), and
/// a static `proven-safe` verdict can therefore never suppress a pinned
/// context. Static `suspicious` verdicts only ever add boost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetPriors {
    contexts: BTreeMap<String, u64>,
    static_classes: BTreeMap<String, RiskClass>,
}

/// Severity order for worst-wins merging of static verdicts.
fn rank(class: RiskClass) -> u8 {
    match class {
        RiskClass::ProvenSafe => 0,
        RiskClass::Unknown => 1,
        RiskClass::Suspicious => 2,
    }
}

impl FleetPriors {
    /// An empty aggregate.
    pub fn new() -> FleetPriors {
        FleetPriors::default()
    }

    /// Records `count` more unique reports for `signature`. Returns
    /// `true` when the signature was new to the aggregate.
    pub fn observe(&mut self, signature: &str, count: u64) -> bool {
        let sig = signature.trim();
        if sig.is_empty() {
            return false;
        }
        let entry = self.contexts.entry(sig.to_owned()).or_insert(0);
        let was_new = *entry == 0;
        *entry += count.max(1);
        was_new
    }

    /// Number of unique reports recorded for `signature` (0 if unseen).
    pub fn count(&self, signature: &str) -> u64 {
        self.contexts.get(signature).copied().unwrap_or(0)
    }

    /// Whether `signature` has any confirmation.
    pub fn contains(&self, signature: &str) -> bool {
        self.contexts.contains_key(signature)
    }

    /// Confirmed signatures in sorted order, with their counts.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.contexts.iter().map(|(s, &c)| (s.as_str(), c))
    }

    /// Number of confirmed contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// `true` when nothing was confirmed yet.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// Records a static analyzer verdict for `signature`. Conflicting
    /// verdicts for one signature merge worst-wins (re-analysis may only
    /// move a context toward suspicious). Returns `true` when the
    /// signature was new to the static class.
    pub fn record_static(&mut self, signature: &str, class: RiskClass) -> bool {
        let sig = signature.trim();
        if sig.is_empty() {
            return false;
        }
        match self.static_classes.entry(sig.to_owned()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(class);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if rank(class) > rank(*e.get()) {
                    e.insert(class);
                }
                false
            }
        }
    }

    /// The recorded static verdict for `signature`, ignoring trap
    /// evidence.
    pub fn static_class(&self, signature: &str) -> Option<RiskClass> {
        self.static_classes.get(signature).copied()
    }

    /// The *effective* class of `signature` with the soundness rule
    /// applied: any trap evidence makes the context suspicious,
    /// regardless of static verdicts; otherwise the static verdict (if
    /// any) stands.
    pub fn effective_class(&self, signature: &str) -> Option<RiskClass> {
        if self.contains(signature) {
            return Some(RiskClass::Suspicious);
        }
        self.static_class(signature)
    }

    /// Number of contexts carrying a static verdict.
    pub fn static_len(&self) -> usize {
        self.static_classes.len()
    }

    /// Static verdicts in sorted order.
    pub fn static_iter(&self) -> impl Iterator<Item = (&str, RiskClass)> {
        self.static_classes.iter().map(|(s, &c)| (s.as_str(), c))
    }

    /// Merges another aggregate into this one (trap counts add, static
    /// verdicts merge worst-wins).
    pub fn merge(&mut self, other: &FleetPriors) {
        for (sig, count) in &other.contexts {
            *self.contexts.entry(sig.clone()).or_insert(0) += count;
        }
        for (sig, &class) in &other.static_classes {
            self.record_static(sig, class);
        }
    }

    /// The aggregate as an [`EvidenceStore`]: the seed each new process
    /// loads through `CsodConfig::evidence_path`, pinning any matching
    /// context at 100 % from its first allocation — the §V-A2
    /// second-execution guarantee.
    pub fn to_evidence_store(&self) -> EvidenceStore {
        let mut store = EvidenceStore::new();
        for sig in self.contexts.keys() {
            store.insert_signature(sig);
        }
        store
    }

    /// The *seed* evidence for a new worker: every trap-confirmed
    /// context plus every statically suspicious one. Static-suspicious
    /// contexts are thereby boosted on a worker's **first** generation,
    /// before any trap has ever fired; static-proven-safe verdicts never
    /// remove a trap-confirmed context from the seed.
    pub fn seed_evidence_store(&self) -> EvidenceStore {
        let mut store = self.to_evidence_store();
        for (sig, class) in &self.static_classes {
            if *class == RiskClass::Suspicious {
                store.insert_signature(sig);
            }
        }
        store
    }

    /// Writes the seed evidence (trap-confirmed ∪ static-suspicious) as
    /// an evidence file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_evidence_file(&self, path: &Path) -> io::Result<()> {
        self.seed_evidence_store().save(path)
    }

    /// Builds [`AnalysisPriors`] for a new process from the effective
    /// classes: trap-confirmed contexts are [`RiskClass::Suspicious`]
    /// (boosted before the evidence path even pins them), and contexts
    /// carrying only a static verdict inherit it — which means
    /// [`RiskClass::ProvenSafe`] starts at the probability floor *only*
    /// when zero trap evidence exists for the signature.
    pub fn analysis_priors<'a>(
        &self,
        sites: impl IntoIterator<Item = (ContextKey, &'a CallingContext)>,
        frames: &FrameTable,
    ) -> AnalysisPriors {
        AnalysisPriors::from_classes(sites.into_iter().filter_map(|(key, ctx)| {
            let sig = EvidenceStore::signature(ctx, frames);
            self.effective_class(&sig).map(|class| (key, class))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_and_dedupes_identity() {
        let mut p = FleetPriors::new();
        assert!(p.observe("a.c:1|main.c:1", 1));
        assert!(!p.observe("a.c:1|main.c:1", 2), "second sighting not new");
        assert!(!p.observe("", 1), "blank signatures are ignored");
        assert_eq!(p.count("a.c:1|main.c:1"), 3);
        assert_eq!(p.len(), 1);
        assert!(p.contains("a.c:1|main.c:1"));
        assert!(!p.contains("b.c:2"));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FleetPriors::new();
        a.observe("x", 2);
        let mut b = FleetPriors::new();
        b.observe("x", 1);
        b.observe("y", 1);
        a.merge(&b);
        assert_eq!(a.count("x"), 3);
        assert_eq!(a.count("y"), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn evidence_round_trip_reaches_a_new_runtime() {
        let frames = FrameTable::new();
        let ctx = CallingContext::from_locations(&frames, ["mem.c:312", "main.c:1"]);
        let mut p = FleetPriors::new();
        p.observe(&EvidenceStore::signature(&ctx, &frames), 1);
        let store = p.to_evidence_store();
        assert!(store.contains(&ctx, &frames));
    }

    #[test]
    fn trap_evidence_always_beats_static_proven_safe() {
        let mut p = FleetPriors::new();
        p.record_static("hot.c:1|main.c:1", RiskClass::ProvenSafe);
        assert_eq!(
            p.effective_class("hot.c:1|main.c:1"),
            Some(RiskClass::ProvenSafe)
        );
        p.observe("hot.c:1|main.c:1", 1);
        assert_eq!(
            p.effective_class("hot.c:1|main.c:1"),
            Some(RiskClass::Suspicious),
            "a confirmed trap falsifies the static proof"
        );
        // Recording the static verdict again cannot undo it.
        p.record_static("hot.c:1|main.c:1", RiskClass::ProvenSafe);
        assert_eq!(
            p.effective_class("hot.c:1|main.c:1"),
            Some(RiskClass::Suspicious)
        );
    }

    #[test]
    fn static_verdicts_merge_worst_wins() {
        let mut p = FleetPriors::new();
        assert!(p.record_static("a.c:1", RiskClass::ProvenSafe));
        assert!(!p.record_static("a.c:1", RiskClass::Suspicious));
        assert_eq!(p.static_class("a.c:1"), Some(RiskClass::Suspicious));
        // ...and never back down.
        p.record_static("a.c:1", RiskClass::ProvenSafe);
        assert_eq!(p.static_class("a.c:1"), Some(RiskClass::Suspicious));
        assert!(!p.record_static("  ", RiskClass::Suspicious));
        assert_eq!(p.static_len(), 1);

        let mut q = FleetPriors::new();
        q.record_static("a.c:1", RiskClass::Unknown);
        q.record_static("b.c:2", RiskClass::ProvenSafe);
        p.merge(&q);
        assert_eq!(p.static_class("a.c:1"), Some(RiskClass::Suspicious));
        assert_eq!(p.static_class("b.c:2"), Some(RiskClass::ProvenSafe));
    }

    #[test]
    fn seed_evidence_carries_static_suspicious_contexts() {
        let frames = FrameTable::new();
        let trapped = CallingContext::from_locations(&frames, ["trap.c:1", "main.c:1"]);
        let flagged = CallingContext::from_locations(&frames, ["flag.c:2", "main.c:1"]);
        let proven = CallingContext::from_locations(&frames, ["safe.c:3", "main.c:1"]);
        let mut p = FleetPriors::new();
        p.observe(&EvidenceStore::signature(&trapped, &frames), 1);
        p.record_static(&EvidenceStore::signature(&flagged, &frames), RiskClass::Suspicious);
        p.record_static(&EvidenceStore::signature(&proven, &frames), RiskClass::ProvenSafe);
        let seed = p.seed_evidence_store();
        assert!(seed.contains(&trapped, &frames));
        assert!(seed.contains(&flagged, &frames), "pre-boosted before any trap");
        assert!(!seed.contains(&proven, &frames));
        // The trap-only store is unchanged by static verdicts.
        assert!(!p.to_evidence_store().contains(&flagged, &frames));
    }

    #[test]
    fn analysis_priors_match_by_signature() {
        let frames = FrameTable::new();
        let hot = CallingContext::from_locations(&frames, ["hot.c:1", "main.c:1"]);
        let cold = CallingContext::from_locations(&frames, ["cold.c:2", "main.c:1"]);
        let hot_key = ContextKey::new(frames.intern("hot.c:1"), 0x40);
        let cold_key = ContextKey::new(frames.intern("cold.c:2"), 0x40);
        let mut p = FleetPriors::new();
        p.observe(&EvidenceStore::signature(&hot, &frames), 1);
        let priors = p.analysis_priors([(hot_key, &hot), (cold_key, &cold)], &frames);
        assert_eq!(priors.class_of(hot_key), Some(RiskClass::Suspicious));
        assert_eq!(priors.class_of(cold_key), None);
    }
}
