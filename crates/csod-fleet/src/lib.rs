//! Crash-safe fleet aggregation for CSOD.
//!
//! The paper's deployment model (§V-A2) runs the detector across a
//! fleet of production processes and promises that a context confirmed
//! to overflow is watched with probability 1.0 on its next execution.
//! This crate closes that detect → persist → reseed loop and makes it
//! survive the failures a real fleet produces:
//!
//! - [`ingest`] — a corruption-tolerant consumer of the TrapReport
//!   JSONL streams workers emit: truncated tails, malformed lines,
//!   interleaved partial writes and duplicates are skipped and counted,
//!   never panicked on; reports dedupe by context signature.
//! - [`journal`] — the durable priors store: a CRC-framed write-ahead
//!   journal plus atomic-rename checkpoints. A `kill -9` at any byte
//!   offset recovers to a consistent snapshot.
//! - [`priors`] — the in-memory aggregate and its bridges back into
//!   the runtime: evidence files that pin confirmed contexts, and
//!   [`AnalysisPriors`](csod_core::AnalysisPriors) seeding.
//! - [`supervisor`] — bounded exponential-backoff restarts, health
//!   probes, poison-worker quarantine, graceful drain.
//! - [`budget`] — the global sampling-budget coordinator that sheds
//!   per-process sampling smoothly when the fleet's report volume
//!   exceeds aggregation capacity.
//! - [`fleet`] — the controller wiring it all to the chaos-soak
//!   workload driver.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::missing_panics_doc)]
#![warn(clippy::perf)]

pub mod budget;
pub mod crc;
pub mod fleet;
pub mod ingest;
pub mod journal;
pub mod priors;
pub mod supervisor;

pub use budget::{BudgetCoordinator, BudgetPolicy};
pub use crc::crc32;
pub use fleet::{FleetConfig, FleetController, FleetOutcome};
pub use ingest::{IngestStats, Ingestor, StreamSummary};
pub use journal::{wal_path, FsMedia, JournalMedia, PriorsStore, StoreStats, MAX_IO_RETRIES};
pub use priors::FleetPriors;
pub use supervisor::{Supervisor, SupervisorPolicy, WorkerHealth, WorkerState};
