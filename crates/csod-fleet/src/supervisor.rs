//! Deterministic supervision of fleet workers.
//!
//! The fleet runs in generations; supervision is therefore counted in
//! generations rather than wall-clock seconds, which keeps every
//! decision reproducible from the run's configuration alone. A worker
//! that crashes backs off exponentially (skipping 1, 2, 4… generations,
//! bounded), a worker that keeps crashing is quarantined — isolated for
//! good, its streams no longer trusted — and a graceful drain stops
//! scheduling new work while the already-collected streams are still
//! ingested.
//!
//! Health probing is part of the same state machine: a worker whose
//! stream comes back without the pipeline's terminator record did not
//! finish its run, and that counts against it exactly like a crash.

/// Supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Consecutive failures after which a worker is quarantined.
    pub max_consecutive_failures: u32,
    /// Generations skipped after the first failure (doubles per
    /// consecutive failure).
    pub base_backoff: u64,
    /// Upper bound on the backoff, in generations.
    pub max_backoff: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_consecutive_failures: 3,
            base_backoff: 1,
            max_backoff: 8,
        }
    }
}

/// Where a worker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Runs every generation.
    Healthy,
    /// Sits out until the named generation (exclusive).
    BackingOff {
        /// First generation the worker may run again.
        until_generation: u64,
    },
    /// Permanently isolated; never scheduled again.
    Quarantined,
}

/// Per-worker supervision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// Current health.
    pub health: WorkerHealth,
    /// Consecutive failures (crashes or failed probes).
    pub consecutive_failures: u32,
    /// Total crashes observed.
    pub crashes: u64,
    /// Total failed health probes (unterminated streams).
    pub probe_failures: u64,
    /// Generations this worker actually ran.
    pub runs: u64,
    /// Times the worker came back from a backoff.
    pub restarts: u64,
}

impl WorkerState {
    fn new() -> WorkerState {
        WorkerState {
            health: WorkerHealth::Healthy,
            consecutive_failures: 0,
            crashes: 0,
            probe_failures: 0,
            runs: 0,
            restarts: 0,
        }
    }
}

/// The fleet supervisor.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    workers: Vec<WorkerState>,
    draining: bool,
}

impl Supervisor {
    /// A supervisor over `workers` healthy workers.
    pub fn new(policy: SupervisorPolicy, workers: usize) -> Supervisor {
        Supervisor {
            policy,
            workers: vec![WorkerState::new(); workers],
            draining: false,
        }
    }

    /// Per-worker state snapshots.
    pub fn workers(&self) -> &[WorkerState] {
        &self.workers
    }

    /// Whether `worker` should be scheduled for `generation`.
    pub fn should_run(&self, worker: usize, generation: u64) -> bool {
        if self.draining {
            return false;
        }
        match self.workers[worker].health {
            WorkerHealth::Healthy => true,
            WorkerHealth::BackingOff { until_generation } => generation >= until_generation,
            WorkerHealth::Quarantined => false,
        }
    }

    /// Marks `worker` as actually running this generation; a worker
    /// returning from backoff counts a restart.
    pub fn begin_run(&mut self, worker: usize) {
        let w = &mut self.workers[worker];
        if matches!(w.health, WorkerHealth::BackingOff { .. }) {
            w.restarts += 1;
            w.health = WorkerHealth::Healthy;
        }
        w.runs += 1;
    }

    /// A clean run: the failure streak resets.
    pub fn record_success(&mut self, worker: usize) {
        let w = &mut self.workers[worker];
        w.consecutive_failures = 0;
        if !matches!(w.health, WorkerHealth::Quarantined) {
            w.health = WorkerHealth::Healthy;
        }
    }

    /// A crash during `generation`. Returns the resulting health.
    pub fn record_crash(&mut self, worker: usize, generation: u64) -> WorkerHealth {
        self.workers[worker].crashes += 1;
        self.escalate(worker, generation)
    }

    /// A failed health probe (the worker's stream never terminated):
    /// escalates exactly like a crash.
    pub fn record_probe_failure(&mut self, worker: usize, generation: u64) -> WorkerHealth {
        self.workers[worker].probe_failures += 1;
        self.escalate(worker, generation)
    }

    fn escalate(&mut self, worker: usize, generation: u64) -> WorkerHealth {
        let policy = self.policy;
        let w = &mut self.workers[worker];
        w.consecutive_failures += 1;
        w.health = if w.consecutive_failures >= policy.max_consecutive_failures {
            WorkerHealth::Quarantined
        } else {
            let exp = w.consecutive_failures.saturating_sub(1).min(63);
            let skip = policy
                .base_backoff
                .saturating_mul(1u64 << exp)
                .min(policy.max_backoff)
                .max(1);
            WorkerHealth::BackingOff {
                until_generation: generation + 1 + skip,
            }
        };
        w.health
    }

    /// Begins a graceful drain: no worker is scheduled from now on.
    /// Returns how many workers were still schedulable.
    pub fn drain(&mut self) -> usize {
        let alive = self
            .workers
            .iter()
            .filter(|w| !matches!(w.health, WorkerHealth::Quarantined))
            .count();
        self.draining = true;
        alive
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Workers currently quarantined.
    pub fn quarantined(&self) -> u64 {
        self.workers
            .iter()
            .filter(|w| matches!(w.health, WorkerHealth::Quarantined))
            .count() as u64
    }

    /// Total restarts across the fleet.
    pub fn restarts(&self) -> u64 {
        self.workers.iter().map(|w| w.restarts).sum()
    }

    /// Total crashes across the fleet.
    pub fn crashes(&self) -> u64 {
        self.workers.iter().map(|w| w.crashes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let mut s = Supervisor::new(
            SupervisorPolicy {
                max_consecutive_failures: 10,
                base_backoff: 1,
                max_backoff: 4,
            },
            1,
        );
        assert_eq!(
            s.record_crash(0, 0),
            WorkerHealth::BackingOff { until_generation: 2 }
        );
        assert!(!s.should_run(0, 1));
        assert!(s.should_run(0, 2));
        s.begin_run(0);
        assert_eq!(s.workers()[0].restarts, 1);
        assert_eq!(
            s.record_crash(0, 2),
            WorkerHealth::BackingOff { until_generation: 5 }
        );
        assert_eq!(
            s.record_crash(0, 5),
            WorkerHealth::BackingOff { until_generation: 10 },
            "2^2 = 4 capped at 4"
        );
        assert_eq!(
            s.record_crash(0, 10),
            WorkerHealth::BackingOff { until_generation: 15 },
            "cap holds"
        );
    }

    #[test]
    fn quarantine_after_n_consecutive_failures() {
        let mut s = Supervisor::new(SupervisorPolicy::default(), 2);
        s.record_crash(0, 0);
        s.record_probe_failure(0, 1);
        assert_eq!(s.record_crash(0, 2), WorkerHealth::Quarantined);
        assert!(!s.should_run(0, 100));
        assert_eq!(s.quarantined(), 1);
        // The healthy sibling is unaffected.
        assert!(s.should_run(1, 100));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut s = Supervisor::new(SupervisorPolicy::default(), 1);
        s.record_crash(0, 0);
        s.record_crash(0, 3);
        s.record_success(0);
        assert_eq!(s.workers()[0].consecutive_failures, 0);
        // Two more failures are again below the threshold of three.
        s.record_crash(0, 5);
        assert_ne!(s.record_crash(0, 8), WorkerHealth::Quarantined);
    }

    #[test]
    fn drain_stops_scheduling_everyone() {
        let mut s = Supervisor::new(SupervisorPolicy::default(), 3);
        s.record_crash(2, 0);
        s.record_crash(2, 2);
        s.record_crash(2, 4);
        assert_eq!(s.drain(), 2, "two workers were still schedulable");
        assert!(s.is_draining());
        for w in 0..3 {
            assert!(!s.should_run(w, 10));
        }
    }
}
