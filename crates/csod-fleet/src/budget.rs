//! The global sampling-budget coordinator.
//!
//! Aggregation capacity is finite: a fleet-wide burst of trap reports
//! must not translate into dropped reports at the ingest side. Instead,
//! the coordinator degrades the *source* smoothly — it maintains one
//! scale factor (in ppm) applied to every worker's initial watch
//! probability through [`SamplingParams::scaled`](csod_core::SamplingParams::scaled).
//! When a generation's report volume exceeds the budget, the scale
//! moves part-way toward the ideal multiplicative target
//! (`scale × budget ⁄ volume`); calm generations recover additively.
//! Evidence-pinned contexts bypass the initial probability entirely, so
//! shedding lowers the *volume* of redundant confirmations while
//! per-unique-bug detection probability stays high.

use csod_rng::PPM_SCALE;

/// Budget-shedding knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPolicy {
    /// Unique reports per generation the fleet is provisioned for.
    pub max_reports_per_generation: u64,
    /// Floor for the sampling scale, in ppm — shedding never silences a
    /// worker completely.
    pub min_scale_ppm: u32,
    /// Additive recovery per calm generation, in ppm.
    pub recover_step_ppm: u32,
    /// How far toward the multiplicative target one overloaded
    /// generation moves the scale, in ppm (1_000_000 jumps straight to
    /// the target; smaller values smooth the descent).
    pub smoothing_ppm: u32,
    /// Ceiling on the sampling relief granted for statically
    /// proven-safe contexts, in ppm: even a fully-proven application
    /// keeps at least `PPM_SCALE - max_static_relief_ppm` of its nominal
    /// sampling (the proof held for the analyzed version, not forever).
    pub max_static_relief_ppm: u32,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            max_reports_per_generation: 1_024,
            min_scale_ppm: PPM_SCALE / 100, // never below 1 % of nominal
            recover_step_ppm: PPM_SCALE / 10,
            smoothing_ppm: PPM_SCALE / 2,
            max_static_relief_ppm: 3 * (PPM_SCALE / 10), // shed at most 30 %
        }
    }
}

/// The coordinator: one per fleet controller.
#[derive(Debug)]
pub struct BudgetCoordinator {
    policy: BudgetPolicy,
    scale_ppm: u32,
    static_relief_ppm: u32,
    sheds: u64,
    observed: u64,
}

impl BudgetCoordinator {
    /// A coordinator at full scale.
    pub fn new(policy: BudgetPolicy) -> BudgetCoordinator {
        BudgetCoordinator {
            policy,
            scale_ppm: PPM_SCALE,
            static_relief_ppm: 0,
            sheds: 0,
            observed: 0,
        }
    }

    /// The current per-worker sampling scale, in ppm of nominal,
    /// *before* static relief — the load-feedback component alone.
    pub fn scale_ppm(&self) -> u32 {
        self.scale_ppm
    }

    /// Grants sampling relief for static analysis coverage: `safe` of
    /// `total` contexts were proven safe, so that fraction of the
    /// nominal watch traffic is provably redundant. Relief is linear in
    /// the proven fraction, capped at the policy ceiling, and never
    /// compounds — re-applying replaces the previous grant (a
    /// re-analysis that proves *less* gives relief back).
    pub fn apply_static_priors(&mut self, safe: usize, total: usize) {
        if total == 0 {
            self.static_relief_ppm = 0;
            return;
        }
        let fraction =
            (u64::from(PPM_SCALE) * safe.min(total) as u64 / total as u64).min(u64::from(PPM_SCALE));
        let capped = fraction * u64::from(self.policy.max_static_relief_ppm) / u64::from(PPM_SCALE);
        self.static_relief_ppm =
            u32::try_from(capped).unwrap_or(self.policy.max_static_relief_ppm);
    }

    /// The static relief currently granted, in ppm.
    pub fn static_relief_ppm(&self) -> u32 {
        self.static_relief_ppm
    }

    /// The scale workers actually run at: load feedback with static
    /// relief applied on top, still floored at `min_scale_ppm`.
    pub fn worker_scale_ppm(&self) -> u32 {
        let relieved = u64::from(self.scale_ppm)
            * u64::from(PPM_SCALE - self.static_relief_ppm.min(PPM_SCALE))
            / u64::from(PPM_SCALE);
        u32::try_from(relieved)
            .unwrap_or(self.scale_ppm)
            .max(self.policy.min_scale_ppm)
    }

    /// Times the scale was shed because a generation blew the budget.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Total reports observed across all generations.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Feeds one generation's report volume; returns the scale the
    /// *next* generation should run at.
    pub fn observe_generation(&mut self, reports: u64) -> u32 {
        self.observed += reports;
        let budget = self.policy.max_reports_per_generation.max(1);
        if reports > budget {
            // Ideal multiplicative target, then smoothed part-way there.
            // `budget < reports` here, so the target is below scale_ppm
            // and fits comfortably in 64 (and 32) bits.
            let target = u64::try_from(
                u128::from(self.scale_ppm) * u128::from(budget) / u128::from(reports),
            )
            .unwrap_or(u64::from(PPM_SCALE));
            let gap = u64::from(self.scale_ppm).saturating_sub(target);
            let step = gap * u64::from(self.policy.smoothing_ppm) / u64::from(PPM_SCALE);
            let next = u64::from(self.scale_ppm).saturating_sub(step.max(1));
            self.scale_ppm =
                u32::try_from(next).unwrap_or(PPM_SCALE).max(self.policy.min_scale_ppm);
            self.sheds += 1;
        } else {
            self.scale_ppm = self
                .scale_ppm
                .saturating_add(self.policy.recover_step_ppm)
                .min(PPM_SCALE);
        }
        self.scale_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(budget: u64) -> BudgetPolicy {
        BudgetPolicy {
            max_reports_per_generation: budget,
            ..BudgetPolicy::default()
        }
    }

    #[test]
    fn overload_sheds_smoothly_toward_the_target() {
        let mut b = BudgetCoordinator::new(policy(100));
        // 4x over budget: ideal target is 250_000; half-way smoothing
        // lands at 625_000.
        assert_eq!(b.observe_generation(400), 625_000);
        assert_eq!(b.sheds(), 1);
        // Still over: keeps descending, never below the floor.
        for _ in 0..50 {
            b.observe_generation(400);
        }
        assert_eq!(b.scale_ppm(), BudgetPolicy::default().min_scale_ppm);
    }

    #[test]
    fn calm_generations_recover_additively_to_full() {
        let mut b = BudgetCoordinator::new(policy(100));
        b.observe_generation(1_000);
        let shed_to = b.scale_ppm();
        assert!(shed_to < PPM_SCALE);
        for _ in 0..20 {
            b.observe_generation(10);
        }
        assert_eq!(b.scale_ppm(), PPM_SCALE, "fully recovered");
        assert_eq!(b.sheds(), 1);
    }

    #[test]
    fn static_relief_scales_with_the_proven_fraction_and_is_capped() {
        let mut b = BudgetCoordinator::new(BudgetPolicy::default());
        assert_eq!(b.worker_scale_ppm(), PPM_SCALE, "no verdicts, no relief");
        b.apply_static_priors(512, 1024);
        assert_eq!(b.static_relief_ppm(), 150_000, "half proven → half the 30% cap");
        assert_eq!(b.worker_scale_ppm(), 850_000);
        b.apply_static_priors(1024, 1024);
        assert_eq!(b.static_relief_ppm(), 300_000, "fully proven → the cap, no further");
        assert_eq!(b.worker_scale_ppm(), 700_000);
        // Re-applying with less coverage hands relief back.
        b.apply_static_priors(0, 1024);
        assert_eq!(b.worker_scale_ppm(), PPM_SCALE);
        b.apply_static_priors(5, 0);
        assert_eq!(b.static_relief_ppm(), 0, "no contexts, no relief");
        // The load-feedback scale is untouched by relief.
        assert_eq!(b.scale_ppm(), PPM_SCALE);
    }

    #[test]
    fn static_relief_composes_with_shedding_above_the_floor() {
        let mut b = BudgetCoordinator::new(policy(100));
        b.apply_static_priors(1024, 1024);
        b.observe_generation(400);
        assert_eq!(b.scale_ppm(), 625_000, "shedding math unchanged by relief");
        assert_eq!(b.worker_scale_ppm(), 437_500, "relief applies on top");
        for _ in 0..50 {
            b.observe_generation(400);
        }
        assert_eq!(
            b.worker_scale_ppm(),
            BudgetPolicy::default().min_scale_ppm,
            "relief never pushes workers below the floor"
        );
    }

    #[test]
    fn within_budget_never_sheds() {
        let mut b = BudgetCoordinator::new(policy(100));
        for _ in 0..10 {
            b.observe_generation(100);
        }
        assert_eq!(b.sheds(), 0);
        assert_eq!(b.scale_ppm(), PPM_SCALE);
        assert_eq!(b.observed(), 1_000);
    }
}
