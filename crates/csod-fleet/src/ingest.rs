//! Corruption-tolerant ingestion of TrapReport JSONL streams.
//!
//! Fleet workers die mid-write, file systems truncate tails, log
//! shippers interleave partial lines and re-deliver duplicates. The
//! ingestor's contract is therefore *skip-and-count, never panic*: every
//! line either yields a report or increments a corruption counter, and
//! reports are deduplicated by their content identity (method, time,
//! object, context signature) so a re-shipped stream cannot inflate the
//! aggregate.
//!
//! A healthy stream ends with the pipeline's terminator record
//! (`{"csod_stream_end":true,"records":N}`); a stream without one marks
//! a writer that vanished, and a count mismatch quantifies how many
//! records the truncation ate.

use crate::priors::FleetPriors;
use std::collections::HashSet;
use std::path::Path;

/// Counters the ingestor maintains across every stream it consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Non-blank lines examined.
    pub lines_seen: u64,
    /// Unique reports accepted into the aggregate.
    pub records_ingested: u64,
    /// Lines rejected as corrupt (truncated, malformed, interleaved).
    pub records_skipped_corrupt: u64,
    /// Well-formed reports dropped as duplicates of already-ingested
    /// ones.
    pub records_deduped: u64,
    /// Stream terminator records seen.
    pub terminators_seen: u64,
    /// Streams consumed.
    pub streams_ingested: u64,
    /// Streams that ended without a terminator — the writer died.
    pub streams_unterminated: u64,
    /// Records the terminators claim were written but never parsed —
    /// lost to truncation or corruption.
    pub records_lost: u64,
}

/// What one stream contributed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Unique new reports per context signature, aggregated over the
    /// stream (signature, count).
    pub observations: Vec<(String, u64)>,
    /// Whether the stream carried a terminator record.
    pub terminated: bool,
    /// Well-formed data records parsed (including duplicates).
    pub parsed: u64,
    /// Corrupt lines skipped in this stream alone.
    pub corrupt: u64,
}

/// A streaming, deduplicating TrapReport JSONL consumer.
#[derive(Debug, Default)]
pub struct Ingestor {
    stats: IngestStats,
    seen: HashSet<String>,
}

impl Ingestor {
    /// A fresh ingestor with empty dedupe state.
    pub fn new() -> Ingestor {
        Ingestor::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Consumes one stream's text, feeding unique reports into
    /// `priors`. Tolerates any byte garbage; never panics.
    pub fn ingest_str(&mut self, text: &str, priors: &mut FleetPriors) -> StreamSummary {
        let mut summary = StreamSummary::default();
        let mut declared: Option<u64> = None;
        for line in text.split('\n') {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            self.stats.lines_seen += 1;
            if let Some(records) = parse_terminator(line) {
                self.stats.terminators_seen += 1;
                summary.terminated = true;
                declared = Some(records);
                continue;
            }
            match parse_report_line(line) {
                Some(report) => {
                    summary.parsed += 1;
                    if self.seen.insert(report.dedupe_key()) {
                        self.stats.records_ingested += 1;
                        priors.observe(&report.signature, 1);
                        match summary
                            .observations
                            .iter_mut()
                            .find(|(sig, _)| *sig == report.signature)
                        {
                            Some((_, n)) => *n += 1,
                            None => summary.observations.push((report.signature, 1)),
                        }
                    } else {
                        self.stats.records_deduped += 1;
                    }
                }
                None => {
                    self.stats.records_skipped_corrupt += 1;
                    summary.corrupt += 1;
                }
            }
        }
        self.stats.streams_ingested += 1;
        if summary.terminated {
            if let Some(declared) = declared {
                self.stats.records_lost += declared.saturating_sub(summary.parsed);
            }
        } else {
            self.stats.streams_unterminated += 1;
        }
        summary
    }

    /// Consumes the stream file at `path`. A missing or unreadable file
    /// counts as one unterminated empty stream — the worker never got as
    /// far as opening its sink.
    pub fn ingest_file(&mut self, path: &Path, priors: &mut FleetPriors) -> StreamSummary {
        match std::fs::read(path) {
            Ok(bytes) => {
                // Invalid UTF-8 from a torn write must not abort the
                // stream: lossy decoding turns it into lines the parser
                // will reject one by one.
                let text = String::from_utf8_lossy(&bytes);
                self.ingest_str(&text, priors)
            }
            Err(_) => {
                self.stats.streams_ingested += 1;
                self.stats.streams_unterminated += 1;
                StreamSummary::default()
            }
        }
    }
}

/// One parsed report, reduced to the fields aggregation cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ParsedReport {
    method: String,
    signature: String,
    at_ns: u64,
    object_start: String,
}

impl ParsedReport {
    /// The dedupe identity: a re-delivered copy of the same detection
    /// collapses, while distinct detections of the same context do not.
    fn dedupe_key(&self) -> String {
        format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{}",
            self.method, self.at_ns, self.object_start, self.signature
        )
    }
}

/// Recognizes the pipeline's stream-end record and returns its declared
/// record count.
fn parse_terminator(line: &str) -> Option<u64> {
    if !line.starts_with("{\"csod_stream_end\"") || !is_single_object(line) {
        return None;
    }
    extract_u64(line, "records")
}

/// Parses one TrapReport JSON line; `None` on anything malformed.
fn parse_report_line(line: &str) -> Option<ParsedReport> {
    if !is_single_object(line) {
        return None;
    }
    let method = extract_string(line, "method")?;
    if !matches!(method.as_str(), "watchpoint" | "canary_free" | "canary_exit") {
        return None;
    }
    let frames = extract_string_array(line, "alloc_context")?;
    if frames.is_empty() {
        return None;
    }
    Some(ParsedReport {
        method,
        signature: frames.join("|"),
        at_ns: extract_u64(line, "at_ns")?,
        object_start: extract_string(line, "object_start")?,
    })
}

/// `true` when `line` is exactly one balanced JSON object — this is
/// what rejects interleaved partial writes like `{"a":1}{"meth…` or a
/// tail chopped mid-record.
fn is_single_object(line: &str) -> bool {
    let bytes = line.as_bytes();
    if bytes.first() != Some(&b'{') {
        return false;
    }
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    // Balanced — but only a *single* object qualifies.
                    return i == bytes.len() - 1;
                }
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    false
}

/// Extracts `"key":"value"` (a JSON string), unescaping it.
fn extract_string(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj.get(start..)?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    if code.len() != 4 {
                        return None;
                    }
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts `"key":123` (an unsigned JSON number).
fn extract_u64(obj: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj.get(start..)?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts `"key":["a","b",…]` (an array of JSON strings), unescaped.
fn extract_string_array(obj: &str, key: &str) -> Option<Vec<String>> {
    let needle = format!("\"{key}\":[");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj.get(start..)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let tail = rest.get(pos..)?.trim_start();
        pos = rest.len() - tail.len();
        match tail.chars().next()? {
            ']' => return Some(out),
            ',' => {
                pos += 1;
                continue;
            }
            '"' => {
                // Reuse the string extractor by scanning to the closing
                // quote with escape awareness.
                let body = &tail[1..];
                let mut escaped = false;
                let mut end = None;
                for (i, c) in body.char_indices() {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    }
                }
                let end = end?;
                let fake = format!("\"k\":\"{}\"", &body[..end]);
                out.push(extract_string(&fake, "k")?);
                pos += 1 + end + 1;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_line(at_ns: u64, frames: &[&str]) -> String {
        let ctx: Vec<String> = frames.iter().map(|f| format!("\"{f}\"")).collect();
        format!(
            "{{\"method\":\"canary_free\",\"kind\":\"write\",\"thread\":0,\"ctx_id\":3,\
             \"object_start\":\"0x1000\",\"access_addr\":\"0x1040\",\"requested_size\":64,\
             \"offset_past_end\":0,\"object_age_ns\":12,\"at_ns\":{at_ns},\
             \"alloc_context\":[{}],\"overflow_site\":[]}}",
            ctx.join(",")
        )
    }

    #[test]
    fn well_formed_stream_is_fully_ingested() {
        let mut text = String::new();
        text.push_str(&sample_line(1, &["a.c:1", "main.c:1"]));
        text.push('\n');
        text.push_str(&sample_line(2, &["b.c:2", "main.c:1"]));
        text.push('\n');
        text.push_str("{\"csod_stream_end\":true,\"records\":2}\n");
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        let s = ing.ingest_str(&text, &mut priors);
        assert!(s.terminated);
        assert_eq!(s.parsed, 2);
        assert_eq!(s.corrupt, 0);
        assert_eq!(priors.len(), 2);
        assert!(priors.contains("a.c:1|main.c:1"));
        let stats = ing.stats();
        assert_eq!(stats.records_ingested, 2);
        assert_eq!(stats.records_lost, 0);
        assert_eq!(stats.streams_unterminated, 0);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_counted_never_panicking() {
        let good = sample_line(5, &["x.c:9", "main.c:1"]);
        let cases = [
            "not json at all",
            "{\"method\":\"canary_free\"",            // truncated tail
            "{}{}",                                    // interleaved objects
            &format!("{good}{good}"),                  // interleaved reports
            "{\"method\":\"bogus\",\"at_ns\":1,\"object_start\":\"0x1\",\"alloc_context\":[\"a\"]}",
            "{\"method\":\"canary_free\",\"at_ns\":1,\"object_start\":\"0x1\",\"alloc_context\":[]}",
            "{\"at_ns\":1}",
            "\u{0}\u{1}garbage\u{2}",
            "[1,2,3]",
        ];
        let mut text = String::new();
        for c in &cases {
            text.push_str(c);
            text.push('\n');
        }
        text.push_str(&good);
        text.push('\n');
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        let s = ing.ingest_str(&text, &mut priors);
        assert_eq!(s.corrupt, cases.len() as u64);
        assert_eq!(s.parsed, 1);
        assert_eq!(priors.len(), 1);
        assert!(!s.terminated);
        assert_eq!(ing.stats().streams_unterminated, 1);
    }

    #[test]
    fn duplicates_dedupe_by_content_identity() {
        let line = sample_line(7, &["d.c:4", "main.c:1"]);
        let text = format!("{line}\n{line}\n{}\n", sample_line(8, &["d.c:4", "main.c:1"]));
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        let s = ing.ingest_str(&text, &mut priors);
        assert_eq!(s.parsed, 3);
        assert_eq!(ing.stats().records_deduped, 1, "exact copy collapsed");
        assert_eq!(
            priors.count("d.c:4|main.c:1"),
            2,
            "distinct detections of the same context both count"
        );
        // Re-shipping the whole stream adds nothing.
        let mut priors2 = priors.clone();
        ing.ingest_str(&text, &mut priors2);
        assert_eq!(priors2, priors);
    }

    #[test]
    fn truncated_terminator_count_reveals_lost_records() {
        let mut text = String::new();
        text.push_str(&sample_line(1, &["a.c:1"]));
        text.push('\n');
        text.push_str("{\"csod_stream_end\":true,\"records\":4}\n");
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        let s = ing.ingest_str(&text, &mut priors);
        assert!(s.terminated);
        assert_eq!(ing.stats().records_lost, 3);
    }

    #[test]
    fn escaped_frames_round_trip() {
        let line = sample_line(3, &["weird\\\"file.c:1", "main.c:1"]);
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        ing.ingest_str(&line, &mut priors);
        assert!(priors.contains("weird\"file.c:1|main.c:1"));
    }

    #[test]
    fn missing_file_counts_as_vanished_writer() {
        let mut ing = Ingestor::new();
        let mut priors = FleetPriors::new();
        let s = ing.ingest_file(Path::new("/definitely/not/here.jsonl"), &mut priors);
        assert_eq!(s, StreamSummary::default());
        assert_eq!(ing.stats().streams_unterminated, 1);
    }

    #[test]
    fn single_object_scanner_rejects_partials() {
        assert!(is_single_object("{\"a\":1}"));
        assert!(is_single_object("{\"a\":{\"b\":\"}\"}}"));
        assert!(!is_single_object("{\"a\":1}{"));
        assert!(!is_single_object("{\"a\":1"));
        assert!(!is_single_object("\"a\":1}"));
        assert!(!is_single_object("{\"a\":\"unterminated}"));
        assert!(!is_single_object(""));
    }
}
