//! The durable cross-run priors store: a CRC-framed write-ahead journal
//! with atomic-rename checkpoints.
//!
//! # On-disk layout (inside the store directory)
//!
//! * `priors.ckpt` — the current checkpoint: a full snapshot of the
//!   aggregate, CRC-framed line by line, carrying an epoch number and an
//!   `end` frame so truncation is detectable.
//! * `priors.ckpt.prev` — the previous checkpoint, kept as the fallback
//!   when the current one is unreadable.
//! * `priors.ckpt.tmp` — the in-flight checkpoint; becomes `priors.ckpt`
//!   via atomic rename, so readers only ever see a complete file (a
//!   *valid* orphaned tmp is adopted on recovery: it means the crash
//!   landed between the write and the rename).
//! * `wal-<epoch>.log` — appended observations since the checkpoint of
//!   that epoch. Replayed on top of the checkpoint at recovery; replay
//!   stops at the first frame whose CRC or length fails, which is how a
//!   `kill -9` at any byte offset still yields a consistent snapshot.
//!
//! # Frame format
//!
//! Every journal line is `J1 <crc32:08x> <len:06x> <payload>` where the
//! CRC and length cover the payload bytes. WAL payloads are
//! `+<count:x>\t<signature>` for trap observations and
//! `=<class>\t<signature>` for static analyzer verdicts; checkpoint
//! payloads are the header `ckpt <epoch:x> <entries:x>`, one
//! `<count:x>\t<signature>` (trap) or `=<class>\t<signature>` (static)
//! body line per context, and the footer `end <entries:x>`. Checkpoints
//! written before the static evidence class existed simply have no `=`
//! lines and parse unchanged.
//!
//! # Fault handling
//!
//! All file I/O goes through a [`JournalMedia`], so tests inject
//! `EINTR`, short writes and `ENOSPC`. Interrupted calls are retried a
//! bounded number of times; short writes are continued; a full disk
//! degrades the store to buffering observations in memory — nothing
//! already durable is ever lost, and the next successful checkpoint
//! folds the buffered tail back in.

use crate::crc::crc32;
use crate::priors::FleetPriors;
use csod_core::RiskClass;
use std::str::FromStr as _;
use std::fmt::Debug;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Bounded retries for interrupted or short media operations before the
/// store gives up on an append and degrades.
pub const MAX_IO_RETRIES: u32 = 8;

/// The file I/O surface the store uses, pluggable so fault-tolerance
/// tests can script `EINTR`, short writes and `ENOSPC`.
pub trait JournalMedia: Debug + Send {
    /// Appends `bytes` to the file at `path`, creating it if missing.
    /// May write fewer bytes than asked (a short write); returns how
    /// many were written.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<usize>;

    /// Writes `bytes` as the complete content of `path` (truncating).
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes the file at `path`.
    fn remove(&mut self, path: &Path) -> io::Result<()>;

    /// Durably syncs the file at `path`; best-effort.
    fn sync(&mut self, path: &Path) -> io::Result<()>;
}

/// The real-filesystem media.
#[derive(Debug, Default)]
pub struct FsMedia;

impl JournalMedia for FsMedia {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<usize> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)?;
        Ok(bytes.len())
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        OpenOptions::new().read(true).open(path)?.sync_all()
    }
}

/// Observable health of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints successfully written by this process.
    pub journal_checkpoints: u64,
    /// WAL records appended durably by this process.
    pub wal_records_appended: u64,
    /// WAL records replayed at recovery.
    pub wal_records_recovered: u64,
    /// Trailing WAL bytes rejected at recovery (truncation/corruption).
    pub wal_tail_rejected: u64,
    /// Recoveries that had to fall back past an unreadable current
    /// checkpoint (to the orphaned tmp or the previous checkpoint).
    pub checkpoint_fallbacks: u64,
    /// Media calls retried after `EINTR`.
    pub io_retries: u64,
    /// Short writes continued.
    pub short_writes: u64,
    /// Observations buffered in memory because the WAL is unusable
    /// (e.g. `ENOSPC`); durable again after the next checkpoint.
    pub buffered_observations: u64,
}

/// The durable priors store.
#[derive(Debug)]
pub struct PriorsStore {
    dir: PathBuf,
    media: Box<dyn JournalMedia>,
    priors: FleetPriors,
    epoch: u64,
    degraded: bool,
    stats: StoreStats,
}

impl PriorsStore {
    /// Opens (and if necessary recovers) the store in `dir` on the real
    /// filesystem, creating the directory when missing.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures; recovery itself absorbs
    /// corruption rather than failing.
    pub fn open(dir: &Path) -> io::Result<PriorsStore> {
        std::fs::create_dir_all(dir)?;
        Ok(Self::open_with_media(dir, Box::new(FsMedia)))
    }

    /// Opens the store with a custom [`JournalMedia`] (fault-injection
    /// tests). The directory must already exist for real media.
    pub fn open_with_media(dir: &Path, media: Box<dyn JournalMedia>) -> PriorsStore {
        let mut store = PriorsStore {
            dir: dir.to_owned(),
            media,
            priors: FleetPriors::new(),
            epoch: 0,
            degraded: false,
            stats: StoreStats::default(),
        };
        store.recover();
        store
    }

    /// The recovered / live aggregate.
    pub fn priors(&self) -> &FleetPriors {
        &self.priors
    }

    /// Health counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` while observations are only buffered in memory because
    /// the WAL is unusable.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Records `count` unique reports for `signature`: updates the
    /// in-memory aggregate and appends a WAL frame. WAL failures never
    /// lose the observation — it stays buffered until a checkpoint
    /// succeeds.
    pub fn observe(&mut self, signature: &str, count: u64) {
        let sig = signature.trim();
        if sig.is_empty() {
            return;
        }
        self.priors.observe(sig, count);
        if self.degraded {
            self.stats.buffered_observations += 1;
            return;
        }
        let frame = frame(&format!("+{count:x}\t{sig}"));
        let wal = wal_path(&self.dir, self.epoch);
        match self.append_fully(&wal, frame.as_bytes()) {
            Ok(()) => self.stats.wal_records_appended += 1,
            Err(_) => {
                // ENOSPC or a persistently failing disk: degrade to
                // in-memory buffering; the aggregate already holds the
                // observation and the next checkpoint makes it durable.
                self.degraded = true;
                self.stats.buffered_observations += 1;
            }
        }
    }

    /// Records a static analyzer verdict for `signature`: updates the
    /// in-memory aggregate (worst-wins per signature, trap evidence
    /// always stronger) and appends a `=` WAL frame with the same
    /// degradation behaviour as [`observe`](PriorsStore::observe).
    pub fn observe_static(&mut self, signature: &str, class: RiskClass) {
        let sig = signature.trim();
        if sig.is_empty() {
            return;
        }
        self.priors.record_static(sig, class);
        if self.degraded {
            self.stats.buffered_observations += 1;
            return;
        }
        let frame = frame(&format!("={class}\t{sig}"));
        let wal = wal_path(&self.dir, self.epoch);
        match self.append_fully(&wal, frame.as_bytes()) {
            Ok(()) => self.stats.wal_records_appended += 1,
            Err(_) => {
                self.degraded = true;
                self.stats.buffered_observations += 1;
            }
        }
    }

    /// Writes a full snapshot as the new checkpoint (atomic rename),
    /// starts a fresh WAL epoch, and clears any degraded buffering.
    ///
    /// # Errors
    ///
    /// On failure the previous checkpoint and WAL remain authoritative —
    /// the caller can retry; nothing durable was touched.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let next_epoch = self.epoch + 1;
        let body = render_checkpoint(next_epoch, &self.priors);
        let tmp = self.dir.join("priors.ckpt.tmp");
        let ckpt = self.dir.join("priors.ckpt");
        let prev = self.dir.join("priors.ckpt.prev");

        self.with_retries(|media| media.write_file(&tmp, body.as_bytes()))?;
        let _ = self.with_retries(|media| media.sync(&tmp));
        // Keep the old checkpoint as the fallback generation. A missing
        // current checkpoint (first ever run) is fine.
        let had_current = self.media.read(&ckpt).is_ok();
        if had_current {
            self.with_retries(|media| media.rename(&ckpt, &prev))?;
        }
        self.with_retries(|media| media.rename(&tmp, &ckpt))?;

        // The new epoch starts with an empty WAL; the old epoch's WAL is
        // superseded and removed (best-effort — recovery ignores stale
        // epochs anyway).
        let old_wal = wal_path(&self.dir, self.epoch);
        let _ = self.media.remove(&old_wal);
        self.epoch = next_epoch;
        self.degraded = false;
        self.stats.buffered_observations = 0;
        self.stats.journal_checkpoints += 1;
        Ok(())
    }

    // ----- recovery -------------------------------------------------------------------

    fn recover(&mut self) {
        let ckpt = self.dir.join("priors.ckpt");
        let tmp = self.dir.join("priors.ckpt.tmp");
        let prev = self.dir.join("priors.ckpt.prev");
        let current_exists = self.media.read(&ckpt).is_ok();
        let mut adopted: Option<(u64, FleetPriors)> = None;
        for (i, candidate) in [&ckpt, &tmp, &prev].into_iter().enumerate() {
            if let Ok(bytes) = self.media.read(candidate) {
                if let Some(parsed) = parse_checkpoint(&bytes) {
                    if i > 0 && current_exists {
                        // The current checkpoint existed but failed to
                        // parse: a genuine fallback, not a fresh store.
                        self.stats.checkpoint_fallbacks += 1;
                    }
                    adopted = Some(parsed);
                    break;
                }
            }
        }
        let (epoch, entries) = adopted.unwrap_or((0, FleetPriors::new()));
        self.epoch = epoch;
        self.priors.merge(&entries);
        // Replay the adopted epoch's WAL up to the first bad frame.
        if let Ok(bytes) = self.media.read(&wal_path(&self.dir, epoch)) {
            let (payloads, rejected) = parse_frames(&bytes);
            for payload in payloads {
                if let Some((count, sig)) = parse_wal_payload(&payload) {
                    self.priors.observe(&sig, count);
                    self.stats.wal_records_recovered += 1;
                } else if let Some((class, sig)) = parse_static_payload(&payload) {
                    self.priors.record_static(&sig, class);
                    self.stats.wal_records_recovered += 1;
                } else {
                    self.stats.wal_tail_rejected += 1;
                }
            }
            self.stats.wal_tail_rejected += rejected;
        }
    }

    // ----- media plumbing -------------------------------------------------------------

    /// Appends all of `bytes`, continuing short writes and retrying
    /// `EINTR` a bounded number of times.
    fn append_fully(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut written = 0usize;
        let mut attempts = 0u32;
        while written < bytes.len() {
            match self.media.append(path, &bytes[written..]) {
                Ok(0) => {
                    attempts += 1;
                    if attempts > MAX_IO_RETRIES {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "media refuses to make progress",
                        ));
                    }
                }
                Ok(n) => {
                    if written + n < bytes.len() {
                        self.stats.short_writes += 1;
                        attempts += 1;
                        if attempts > MAX_IO_RETRIES {
                            return Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                "short-write retry budget exhausted",
                            ));
                        }
                    }
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.stats.io_retries += 1;
                    attempts += 1;
                    if attempts > MAX_IO_RETRIES {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Retries an interruptible media call a bounded number of times.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Box<dyn JournalMedia>) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempts = 0u32;
        loop {
            match op(&mut self.media) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted && attempts < MAX_IO_RETRIES => {
                    self.stats.io_retries += 1;
                    attempts += 1;
                }
                other => return other,
            }
        }
    }
}

/// The WAL file for `epoch` inside `dir`.
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch:x}.log"))
}

/// Frames one payload line: `J1 <crc:08x> <len:06x> <payload>\n`.
fn frame(payload: &str) -> String {
    format!(
        "J1 {:08x} {:06x} {payload}\n",
        crc32(payload.as_bytes()),
        payload.len()
    )
}

/// Parses framed lines from raw bytes. Returns the payloads of every
/// valid frame up to the first invalid one, plus how many subsequent
/// lines (including the invalid one) were rejected.
fn parse_frames(bytes: &[u8]) -> (Vec<String>, u64) {
    let text = String::from_utf8_lossy(bytes);
    let mut payloads = Vec::new();
    let mut lines = text.split('\n').peekable();
    let mut rejected = 0u64;
    while let Some(line) = lines.next() {
        if line.is_empty() && lines.peek().is_none() {
            break; // clean trailing newline
        }
        match parse_frame(line) {
            Some(payload) => payloads.push(payload),
            None => {
                // First bad frame: everything from here on is suspect.
                rejected = 1 + lines.filter(|l| !l.is_empty()).count() as u64;
                break;
            }
        }
    }
    (payloads, rejected)
}

/// Parses one `J1 <crc> <len> <payload>` line.
fn parse_frame(line: &str) -> Option<String> {
    let rest = line.strip_prefix("J1 ")?;
    let crc_hex = rest.get(..8)?;
    let rest = rest.get(8..)?.strip_prefix(' ')?;
    let len_hex = rest.get(..6)?;
    let payload = rest.get(6..)?.strip_prefix(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload.to_owned())
}

/// Renders a full checkpoint body for `epoch`.
fn render_checkpoint(epoch: u64, priors: &FleetPriors) -> String {
    let entries = priors.len() + priors.static_len();
    let mut out = String::new();
    out.push_str(&frame(&format!("ckpt {epoch:x} {entries:x}")));
    for (sig, count) in priors.iter() {
        out.push_str(&frame(&format!("{count:x}\t{sig}")));
    }
    for (sig, class) in priors.static_iter() {
        out.push_str(&frame(&format!("={class}\t{sig}")));
    }
    out.push_str(&frame(&format!("end {entries:x}")));
    out
}

/// Parses a checkpoint body; `None` unless every frame is valid, the
/// header and footer agree, and the entry count matches.
fn parse_checkpoint(bytes: &[u8]) -> Option<(u64, FleetPriors)> {
    let (payloads, rejected) = parse_frames(bytes);
    if rejected > 0 || payloads.len() < 2 {
        return None;
    }
    let header = payloads.first()?;
    let mut head = header.strip_prefix("ckpt ")?.split(' ');
    let epoch = u64::from_str_radix(head.next()?, 16).ok()?;
    let declared = usize::from_str_radix(head.next()?, 16).ok()?;
    let footer = payloads.last()?;
    let foot_count = usize::from_str_radix(footer.strip_prefix("end ")?, 16).ok()?;
    let body = &payloads[1..payloads.len() - 1];
    if declared != foot_count || body.len() != declared {
        return None;
    }
    let mut entries = FleetPriors::new();
    for line in body {
        if let Some((class, sig)) = parse_static_payload(line) {
            entries.record_static(&sig, class);
            continue;
        }
        let (count_hex, sig) = line.split_once('\t')?;
        let count = u64::from_str_radix(count_hex, 16).ok()?;
        entries.observe(sig, count);
    }
    Some((epoch, entries))
}

/// Parses a static-verdict payload `=<class>\t<sig>` (WAL or
/// checkpoint body).
fn parse_static_payload(payload: &str) -> Option<(RiskClass, String)> {
    let rest = payload.strip_prefix('=')?;
    let (class, sig) = rest.split_once('\t')?;
    let class = RiskClass::from_str(class).ok()?;
    if sig.is_empty() {
        return None;
    }
    Some((class, sig.to_owned()))
}

/// Parses a WAL payload `+<count:x>\t<sig>`.
fn parse_wal_payload(payload: &str) -> Option<(u64, String)> {
    let rest = payload.strip_prefix('+')?;
    let (count_hex, sig) = rest.split_once('\t')?;
    let count = u64::from_str_radix(count_hex, 16).ok()?;
    if sig.is_empty() {
        return None;
    }
    Some((count, sig.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csod-fleet-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn observations_survive_reopen_via_wal() {
        let dir = tmpdir("wal");
        {
            let mut store = PriorsStore::open(&dir).unwrap();
            store.observe("a.c:1|main.c:1", 1);
            store.observe("b.c:2|main.c:1", 2);
            assert_eq!(store.stats().wal_records_appended, 2);
            // No checkpoint: the WAL alone must carry them.
        }
        let store = PriorsStore::open(&dir).unwrap();
        assert_eq!(store.priors().count("a.c:1|main.c:1"), 1);
        assert_eq!(store.priors().count("b.c:2|main.c:1"), 2);
        assert_eq!(store.stats().wal_records_recovered, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_supersedes_the_wal_and_rolls_the_epoch() {
        let dir = tmpdir("ckpt");
        {
            let mut store = PriorsStore::open(&dir).unwrap();
            store.observe("x.c:1", 3);
            store.checkpoint().unwrap();
            assert_eq!(store.epoch(), 1);
            store.observe("y.c:2", 1);
        }
        let store = PriorsStore::open(&dir).unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.priors().count("x.c:1"), 3, "from the checkpoint");
        assert_eq!(store.priors().count("y.c:2"), 1, "from the epoch-1 WAL");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn static_verdicts_survive_wal_and_checkpoint() {
        let dir = tmpdir("static");
        {
            let mut store = PriorsStore::open(&dir).unwrap();
            store.observe_static("safe.c:1|main.c:1", RiskClass::ProvenSafe);
            store.observe_static("sus.c:2|main.c:1", RiskClass::Suspicious);
            store.observe("trap.c:3|main.c:1", 1);
            // No checkpoint: the WAL alone must carry all three.
        }
        {
            let store = PriorsStore::open(&dir).unwrap();
            assert_eq!(
                store.priors().static_class("safe.c:1|main.c:1"),
                Some(RiskClass::ProvenSafe)
            );
            assert_eq!(
                store.priors().static_class("sus.c:2|main.c:1"),
                Some(RiskClass::Suspicious)
            );
            assert_eq!(store.priors().count("trap.c:3|main.c:1"), 1);
            assert_eq!(store.stats().wal_records_recovered, 3);
        }
        {
            // Through a checkpoint, then a trap that falsifies the proof.
            let mut store = PriorsStore::open(&dir).unwrap();
            store.checkpoint().unwrap();
            store.observe("safe.c:1|main.c:1", 1);
        }
        let store = PriorsStore::open(&dir).unwrap();
        assert_eq!(
            store.priors().static_class("safe.c:1|main.c:1"),
            Some(RiskClass::ProvenSafe),
            "the static verdict itself is preserved"
        );
        assert_eq!(
            store.priors().effective_class("safe.c:1|main.c:1"),
            Some(RiskClass::Suspicious),
            "but trap evidence wins after recovery too"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_truncation_at_any_offset_recovers_consistently() {
        let dir = tmpdir("trunc");
        {
            let mut store = PriorsStore::open(&dir).unwrap();
            store.observe("keep.c:1", 1);
            store.checkpoint().unwrap();
            for i in 0..10 {
                store.observe(&format!("tail.c:{i}"), 1);
            }
        }
        let wal = wal_path(&dir, 1);
        let full = std::fs::read(&wal).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&wal, &full[..cut]).unwrap();
            let store = PriorsStore::open(&dir).unwrap();
            // The checkpointed context always survives; the replayed
            // tail is a prefix of what was appended.
            assert_eq!(store.priors().count("keep.c:1"), 1, "cut at {cut}");
            let replayed = store.stats().wal_records_recovered;
            assert!(replayed <= 10);
            for i in 0..replayed {
                assert!(store.priors().contains(&format!("tail.c:{i}")));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_checkpoint_falls_back_to_prev() {
        let dir = tmpdir("fallback");
        {
            let mut store = PriorsStore::open(&dir).unwrap();
            store.observe("old.c:1", 1);
            store.checkpoint().unwrap();
            store.observe("new.c:2", 1);
            store.checkpoint().unwrap();
        }
        // Smash the current checkpoint; prev still holds epoch 1.
        let ckpt = dir.join("priors.ckpt");
        std::fs::write(&ckpt, b"J1 deadbeef 000004 ruin").unwrap();
        let store = PriorsStore::open(&dir).unwrap();
        assert_eq!(store.stats().checkpoint_fallbacks, 1);
        assert!(store.priors().contains("old.c:1"), "prev checkpoint adopted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_valid_tmp_checkpoint_is_adopted() {
        let dir = tmpdir("tmp-adopt");
        let mut priors = FleetPriors::new();
        priors.observe("tmp.c:9", 4);
        std::fs::write(dir.join("priors.ckpt.tmp"), render_checkpoint(5, &priors)).unwrap();
        let store = PriorsStore::open(&dir).unwrap();
        assert_eq!(store.epoch(), 5);
        assert_eq!(store.priors().count("tmp.c:9"), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_opens_empty() {
        let dir = tmpdir("empty");
        let store = PriorsStore::open(&dir).unwrap();
        assert!(store.priors().is_empty());
        assert_eq!(store.epoch(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_reject_bitflips() {
        let line = frame("+1\tsig.c:1|main.c:1");
        let line = line.trim_end();
        assert!(parse_frame(line).is_some());
        let flipped = line.replace("sig.c:1", "sig.c:2");
        assert!(parse_frame(&flipped).is_none(), "CRC catches the flip");
        assert!(parse_frame("J1 zz").is_none());
        assert!(parse_frame("").is_none());
    }
}
