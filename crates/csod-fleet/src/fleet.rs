//! The fleet controller: detect → persist → reseed, crash-safely.
//!
//! One controller drives a fleet of chaos-soak workers for a number of
//! generations. Each generation it (1) seeds every runnable worker with
//! the aggregate's evidence file so previously-confirmed contexts start
//! pinned at 100 % — the paper's §V-A2 second-execution guarantee,
//! now fleet-wide and crash-durable; (2) fans the workers across OS
//! threads; (3) ingests their TrapReport JSONL streams through the
//! corruption-tolerant [`Ingestor`]; (4) journals every new confirmation
//! in the [`PriorsStore`] and checkpoints; and (5) feeds the generation's
//! report volume to the [`BudgetCoordinator`], which scales the next
//! generation's sampling when the fleet runs hot.
//!
//! Worker failure is part of the model, not an exception path: panics
//! are caught, injected crashes truncate the worker's stream at an
//! arbitrary byte offset (what a `kill -9` leaves behind), the
//! [`Supervisor`] backs crashing workers off and quarantines repeat
//! offenders, and a graceful drain closes the run.

use crate::budget::{BudgetCoordinator, BudgetPolicy};
use crate::ingest::Ingestor;
use crate::journal::PriorsStore;
use crate::supervisor::{Supervisor, SupervisorPolicy, WorkerHealth};
use csod_core::RiskClass;
use csod_rng::{Arc4Random, PPM_SCALE};
use csod_trace::MetricsRegistry;
use std::fmt;
use std::io;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use workloads::{run_parallel, ChaosConfig, ChaosOutcome};

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Directory holding the journal, checkpoints, evidence seeds and
    /// worker streams.
    pub dir: PathBuf,
    /// Workers per generation.
    pub workers: usize,
    /// Generations to run.
    pub generations: u64,
    /// OS threads the workers fan across.
    pub threads: usize,
    /// Template soak every worker derives its config from (per-worker
    /// seed, sampling scale, evidence and stream paths are overridden).
    pub base: ChaosConfig,
    /// Worker supervision policy.
    pub supervisor: SupervisorPolicy,
    /// Budget-shedding policy.
    pub budget: BudgetPolicy,
    /// Chance per worker-generation of an injected crash (stream
    /// truncated at a random offset, outcome lost), in ppm.
    pub crash_ppm: u32,
    /// Chance per stream of an injected corrupt (partial) line, in ppm.
    pub corrupt_line_ppm: u32,
    /// Chance per stream of a duplicated record, in ppm.
    pub duplicate_line_ppm: u32,
    /// Seed for every injection decision.
    pub seed: u64,
    /// Static analyzer verdicts to ingest before the first generation,
    /// as `(context signature, class)` pairs — typically the verdicts
    /// of a `csod-analyze` [`RiskReport`] keyed by the same signatures
    /// the journal uses. Proven-safe contexts shed sampling budget;
    /// suspicious ones are pre-boosted in every worker's seed evidence
    /// from generation 0, before any trap has fired.
    pub static_verdicts: Vec<(String, RiskClass)>,
}

impl FleetConfig {
    /// A small-soak fleet rooted at `dir`: four workers, two
    /// generations, no injected failures.
    pub fn new(dir: &Path) -> FleetConfig {
        FleetConfig {
            dir: dir.to_owned(),
            workers: 4,
            generations: 2,
            threads: 4,
            base: ChaosConfig {
                allocations: 4_000,
                sites: 8,
                ring: 16,
                thread_churn: 1,
                planted_overflows: 2,
                ..ChaosConfig::default()
            },
            supervisor: SupervisorPolicy::default(),
            budget: BudgetPolicy::default(),
            crash_ppm: 0,
            corrupt_line_ppm: 0,
            duplicate_line_ppm: 0,
            seed: 0xF1EE7,
            static_verdicts: Vec::new(),
        }
    }
}

/// What a fleet run observed, aggregated across workers and
/// generations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Generations completed.
    pub generations: u64,
    /// Worker executions started.
    pub worker_runs: u64,
    /// Worker crashes (injected or caught panics).
    pub worker_crashes: u64,
    /// Workers quarantined by the supervisor.
    pub workers_quarantined: u64,
    /// Workers restarted after a backoff.
    pub worker_restarts: u64,
    /// Unique reports ingested into the aggregate.
    pub records_ingested: u64,
    /// Corrupt lines skipped by the ingestor.
    pub records_skipped_corrupt: u64,
    /// Duplicate reports collapsed by the ingestor.
    pub records_deduped: u64,
    /// Streams that came back without a terminator record.
    pub streams_unterminated: u64,
    /// Streams of quarantined workers set aside unread.
    pub streams_quarantined: u64,
    /// Checkpoints the journal wrote.
    pub journal_checkpoints: u64,
    /// Checkpoint attempts that failed (journal kept its old state).
    pub checkpoint_failures: u64,
    /// Times the budget coordinator shed the sampling scale.
    pub budget_sheds: u64,
    /// Sampling scale at the end of the run, in ppm of nominal.
    pub final_scale_ppm: u32,
    /// Confirmed overflowing contexts in the durable aggregate.
    pub confirmed_contexts: usize,
    /// Contexts carrying a static verdict in the durable aggregate.
    pub static_contexts: usize,
    /// Statically proven-safe contexts whose proof still stands (no
    /// trap evidence contradicts them).
    pub static_safe_contexts: usize,
    /// Sampling relief granted for static coverage, in ppm.
    pub static_relief_ppm: u32,
    /// Whether every completed worker run was leak-free.
    pub leak_free: bool,
    /// Whether any worker detected an overflow.
    pub detected: bool,
}

impl FleetOutcome {
    /// The fleet-health counters as a metrics snapshot, servable as
    /// JSON or Prometheus text next to the runtime's own registry.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("csod_fleet_generations", self.generations);
        reg.set_counter("csod_fleet_worker_runs", self.worker_runs);
        reg.set_counter("csod_fleet_worker_crashes", self.worker_crashes);
        reg.set_counter("csod_fleet_workers_quarantined", self.workers_quarantined);
        reg.set_counter("csod_fleet_worker_restarts", self.worker_restarts);
        reg.set_counter("csod_fleet_records_ingested", self.records_ingested);
        reg.set_counter(
            "csod_fleet_records_skipped_corrupt",
            self.records_skipped_corrupt,
        );
        reg.set_counter("csod_fleet_records_deduped", self.records_deduped);
        reg.set_counter("csod_fleet_streams_unterminated", self.streams_unterminated);
        reg.set_counter("csod_fleet_streams_quarantined", self.streams_quarantined);
        reg.set_counter("csod_fleet_journal_checkpoints", self.journal_checkpoints);
        reg.set_counter("csod_fleet_checkpoint_failures", self.checkpoint_failures);
        reg.set_counter("csod_fleet_budget_sheds", self.budget_sheds);
        reg.set_gauge("csod_fleet_sampling_scale_ppm", f64::from(self.final_scale_ppm));
        reg.set_gauge(
            "csod_fleet_confirmed_contexts",
            self.confirmed_contexts as f64,
        );
        reg.set_gauge("csod_fleet_static_contexts", self.static_contexts as f64);
        reg.set_gauge(
            "csod_fleet_static_safe_contexts",
            self.static_safe_contexts as f64,
        );
        reg.set_gauge(
            "csod_fleet_static_relief_ppm",
            f64::from(self.static_relief_ppm),
        );
        reg
    }
}

impl fmt::Display for FleetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== CSOD fleet summary ====")?;
        writeln!(
            f,
            "generations: {}, worker runs: {} ({} crash(es), {} restart(s), {} quarantined)",
            self.generations,
            self.worker_runs,
            self.worker_crashes,
            self.worker_restarts,
            self.workers_quarantined
        )?;
        writeln!(
            f,
            "ingest: {} record(s), {} corrupt skipped, {} deduped, {} unterminated stream(s), {} quarantined stream(s)",
            self.records_ingested,
            self.records_skipped_corrupt,
            self.records_deduped,
            self.streams_unterminated,
            self.streams_quarantined
        )?;
        writeln!(
            f,
            "journal: {} checkpoint(s) ({} failed), {} confirmed context(s)",
            self.journal_checkpoints, self.checkpoint_failures, self.confirmed_contexts
        )?;
        writeln!(
            f,
            "static: {} verdict(s), {} proven-safe standing, {} ppm sampling relief",
            self.static_contexts, self.static_safe_contexts, self.static_relief_ppm
        )?;
        write!(
            f,
            "budget: {} shed(s), final scale {} ppm; leak-free: {}, detected: {}",
            self.budget_sheds, self.final_scale_ppm, self.leak_free, self.detected
        )
    }
}

/// One worker's assignment for a generation.
#[derive(Debug, Clone)]
struct WorkerJob {
    worker: usize,
    cfg: ChaosConfig,
    stream: PathBuf,
    /// Injected crash: truncate the stream to this many ppm of its
    /// length, discard the outcome.
    crash_cut_ppm: Option<u32>,
}

/// Result of one worker execution.
#[derive(Debug)]
enum WorkerRun {
    Completed(Box<ChaosOutcome>),
    Crashed,
}

/// The fleet controller.
#[derive(Debug)]
pub struct FleetController {
    cfg: FleetConfig,
    store: PriorsStore,
    ingestor: Ingestor,
    supervisor: Supervisor,
    budget: BudgetCoordinator,
    rng: Arc4Random,
    streams_quarantined: u64,
    checkpoint_failures: u64,
    worker_crashes: u64,
}

impl FleetController {
    /// Opens (recovering if necessary) the durable store under
    /// `cfg.dir` and prepares a fleet.
    ///
    /// # Errors
    ///
    /// Propagates failure to create the fleet directory.
    pub fn new(cfg: FleetConfig) -> io::Result<FleetController> {
        let mut store = PriorsStore::open(&cfg.dir)?;
        let supervisor = Supervisor::new(cfg.supervisor, cfg.workers.max(1));
        let mut budget = BudgetCoordinator::new(cfg.budget);
        // Ingest the static verdicts before generation 0: suspicious
        // contexts enter every worker's seed evidence immediately, and
        // standing proven-safe coverage sheds sampling. Trap evidence
        // already in the durable store wins over any proof (the store
        // merges worst-wins and `effective_class` enforces it).
        for (sig, class) in &cfg.static_verdicts {
            store.observe_static(sig, *class);
        }
        let (safe, total) = static_coverage(store.priors());
        budget.apply_static_priors(safe, total);
        let rng = Arc4Random::from_seed(cfg.seed, 0xF1EE);
        Ok(FleetController {
            cfg,
            store,
            ingestor: Ingestor::new(),
            supervisor,
            budget,
            rng,
            streams_quarantined: 0,
            checkpoint_failures: 0,
            worker_crashes: 0,
        })
    }

    /// The durable priors store (recovered state before `run`, final
    /// state after).
    pub fn store(&self) -> &PriorsStore {
        &self.store
    }

    /// Runs every generation, then drains. Never panics on worker
    /// failure; returns the aggregated outcome.
    pub fn run(&mut self) -> FleetOutcome {
        let mut leak_free = true;
        let mut detected = false;
        let mut worker_runs = 0u64;
        for generation in 0..self.cfg.generations {
            let jobs = self.schedule(generation);
            worker_runs += jobs.len() as u64;
            let results = run_parallel(&jobs, self.cfg.threads.max(1), |job| {
                let soak =
                    std::panic::catch_unwind(AssertUnwindSafe(|| workloads::run_chaos_soak(&job.cfg)));
                match soak {
                    Ok(out) => match job.crash_cut_ppm {
                        // An injected crash loses the in-process outcome
                        // and leaves a stream chopped mid-byte — exactly
                        // the `kill -9` residue the ingestor must absorb.
                        Some(cut) => {
                            truncate_file(&job.stream, cut);
                            WorkerRun::Crashed
                        }
                        None => WorkerRun::Completed(Box::new(out)),
                    },
                    Err(_) => WorkerRun::Crashed,
                }
            });

            let ingested_before = self.ingestor.stats().records_ingested;
            for (job, result) in jobs.iter().zip(&results) {
                match result {
                    WorkerRun::Crashed => {
                        self.worker_crashes += 1;
                        let health = self.supervisor.record_crash(job.worker, generation);
                        if matches!(health, WorkerHealth::Quarantined) {
                            // Poison worker: set its stream aside unread.
                            self.quarantine_stream(&job.stream);
                        } else {
                            // A partial stream is still data — the
                            // tolerant ingestor takes what parses.
                            self.corrupt_and_ingest(&job.stream);
                        }
                    }
                    WorkerRun::Completed(out) => {
                        leak_free &= out.leak_free();
                        detected |= out.detected;
                        let summary = self.corrupt_and_ingest(&job.stream);
                        if summary {
                            self.supervisor.record_success(job.worker);
                        } else {
                            // Health probe failed: the stream never
                            // terminated although the worker "returned".
                            self.supervisor.record_probe_failure(job.worker, generation);
                        }
                    }
                }
            }
            if self.store.checkpoint().is_err() {
                self.checkpoint_failures += 1;
            }
            let produced = self.ingestor.stats().records_ingested - ingested_before;
            self.budget.observe_generation(produced);
        }
        self.supervisor.drain();

        let istats = self.ingestor.stats();
        let sstats = self.store.stats();
        FleetOutcome {
            generations: self.cfg.generations,
            worker_runs,
            worker_crashes: self.worker_crashes,
            workers_quarantined: self.supervisor.quarantined(),
            worker_restarts: self.supervisor.restarts(),
            records_ingested: istats.records_ingested,
            records_skipped_corrupt: istats.records_skipped_corrupt,
            records_deduped: istats.records_deduped,
            streams_unterminated: istats.streams_unterminated,
            streams_quarantined: self.streams_quarantined,
            journal_checkpoints: sstats.journal_checkpoints,
            checkpoint_failures: self.checkpoint_failures,
            budget_sheds: self.budget.sheds(),
            final_scale_ppm: self.budget.worker_scale_ppm(),
            confirmed_contexts: self.store.priors().len(),
            static_contexts: self.store.priors().static_len(),
            static_safe_contexts: static_coverage(self.store.priors()).0,
            static_relief_ppm: self.budget.static_relief_ppm(),
            leak_free,
            detected,
        }
    }

    /// Builds the runnable jobs for `generation`: evidence seed files,
    /// per-worker stream paths, budget-scaled sampling, injected-crash
    /// draws.
    fn schedule(&mut self, generation: u64) -> Vec<WorkerJob> {
        let scale = self.budget.worker_scale_ppm();
        let mut jobs = Vec::new();
        for worker in 0..self.cfg.workers.max(1) {
            if !self.supervisor.should_run(worker, generation) {
                continue;
            }
            self.supervisor.begin_run(worker);
            let seed_path = self
                .cfg
                .dir
                .join(format!("evidence-g{generation}-w{worker}.evi"));
            // Seeding is best-effort: a full disk degrades re-watching,
            // not the run.
            let _ = self.store.priors().write_evidence_file(&seed_path);
            let stream = self
                .cfg
                .dir
                .join(format!("stream-g{generation}-w{worker}.jsonl"));
            let _ = std::fs::remove_file(&stream);
            let mut cfg = self.cfg.base.clone();
            cfg.seed = self
                .cfg
                .base
                .seed
                .wrapping_add((generation * 1_000 + worker as u64 + 1).wrapping_mul(0x9E37_79B9));
            cfg.csod.sampling = self.cfg.base.csod.sampling.scaled(scale);
            cfg.csod.evidence_path = Some(seed_path);
            cfg.csod.trace.trap_report_path = Some(stream.clone());
            let crash_cut_ppm = self
                .rng
                .chance_ppm(self.cfg.crash_ppm)
                .then(|| self.rng.uniform(PPM_SCALE));
            jobs.push(WorkerJob {
                worker,
                cfg,
                stream,
                crash_cut_ppm,
            });
        }
        jobs
    }

    /// Applies the configured stream corruption, ingests the stream,
    /// journals its observations. Returns whether the stream carried a
    /// terminator.
    fn corrupt_and_ingest(&mut self, stream: &Path) -> bool {
        // Duplicate before corrupting: the torn fragment carries no
        // trailing newline (that's what makes it torn), so anything
        // appended after it would fuse into the same garbage line.
        if self.rng.chance_ppm(self.cfg.duplicate_line_ppm) {
            duplicate_first_line(stream);
        }
        if self.rng.chance_ppm(self.cfg.corrupt_line_ppm) {
            append_partial_line(stream);
        }
        let mut scratch = crate::priors::FleetPriors::new();
        let summary = self.ingestor.ingest_file(stream, &mut scratch);
        for (sig, count) in &summary.observations {
            self.store.observe(sig, *count);
        }
        summary.terminated
    }

    fn quarantine_stream(&mut self, stream: &Path) {
        let mut target = stream.as_os_str().to_owned();
        target.push(".quarantined");
        let _ = std::fs::rename(stream, PathBuf::from(target));
        self.streams_quarantined += 1;
    }
}

/// Counts `(standing proven-safe, total)` static verdicts in the
/// aggregate: a proven-safe verdict stands only while no trap evidence
/// contradicts it.
fn static_coverage(priors: &crate::priors::FleetPriors) -> (usize, usize) {
    let total = priors.static_len();
    let safe = priors
        .static_iter()
        .filter(|(sig, class)| {
            *class == RiskClass::ProvenSafe
                && priors.effective_class(sig) == Some(RiskClass::ProvenSafe)
        })
        .count();
    (safe, total)
}

/// Chops the file at `path` to `cut_ppm` millionths of its length —
/// mid-line, mid-record, wherever that lands.
fn truncate_file(path: &Path, cut_ppm: u32) {
    let Ok(bytes) = std::fs::read(path) else {
        return;
    };
    let scaled = bytes.len() as u64 * u64::from(cut_ppm) / u64::from(PPM_SCALE);
    let keep = usize::try_from(scaled).unwrap_or(usize::MAX);
    let _ = std::fs::write(path, &bytes[..keep.min(bytes.len())]);
}

/// Appends a torn, unterminated record fragment — an interleaved
/// partial write.
fn append_partial_line(path: &Path) {
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(b"{\"method\":\"watchpoint\",\"kind\":\"wr");
    }
}

/// Re-appends the first record of the stream — a log shipper delivering
/// a duplicate.
fn duplicate_first_line(path: &Path) {
    use std::io::Write as _;
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Some(first) = text.lines().next().map(str::to_owned) else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(path) {
        let _ = writeln!(f, "{first}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csod-fleet-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_fleet(dir: &Path) -> FleetConfig {
        let mut cfg = FleetConfig::new(dir);
        cfg.workers = 2;
        cfg.threads = 2;
        cfg.base.allocations = 2_000;
        cfg
    }

    #[test]
    fn clean_fleet_confirms_contexts_and_checkpoints() {
        let dir = fleet_dir("clean");
        let mut fleet = FleetController::new(small_fleet(&dir)).unwrap();
        let out = fleet.run();
        assert!(out.leak_free);
        assert!(out.detected, "planted overflows reach the aggregate");
        assert!(out.confirmed_contexts > 0);
        assert_eq!(out.worker_crashes, 0);
        assert_eq!(out.journal_checkpoints, out.generations);
        assert_eq!(out.records_skipped_corrupt, 0);
        assert_eq!(out.streams_unterminated, 0);
        // The durable store agrees with the outcome.
        assert_eq!(fleet.store().priors().len(), out.confirmed_contexts);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_metrics_expose_the_health_counters() {
        let dir = fleet_dir("metrics");
        let mut fleet = FleetController::new(small_fleet(&dir)).unwrap();
        let out = fleet.run();
        let reg = out.metrics_registry();
        let json = reg.to_json();
        for key in [
            "csod_fleet_records_skipped_corrupt",
            "csod_fleet_workers_quarantined",
            "csod_fleet_journal_checkpoints",
            "csod_fleet_budget_sheds",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
            assert!(reg.to_prometheus().contains(key));
        }
        let text = out.to_string();
        assert!(text.contains("CSOD fleet summary"));
        assert!(text.contains("checkpoint(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_generation_reseeds_from_the_first() {
        let dir = fleet_dir("reseed");
        let mut cfg = small_fleet(&dir);
        cfg.generations = 2;
        let mut fleet = FleetController::new(cfg).unwrap();
        fleet.run();
        // The generation-1 evidence seeds exist and are non-trivial.
        let seed = std::fs::read_to_string(dir.join("evidence-g1-w0.evi")).unwrap();
        assert!(
            seed.lines().any(|l| !l.is_empty() && !l.starts_with('#')),
            "generation 1 was seeded with confirmed contexts: {seed}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn static_verdicts_preboost_generation_zero_and_shed_budget() {
        let dir = fleet_dir("static");
        let mut cfg = small_fleet(&dir);
        cfg.generations = 1;
        cfg.static_verdicts = vec![
            ("flagged.c:7|driver.c:3|main.c:1".to_owned(), RiskClass::Suspicious),
            ("proved_a.c:1|main.c:1".to_owned(), RiskClass::ProvenSafe),
            ("proved_b.c:2|main.c:1".to_owned(), RiskClass::ProvenSafe),
        ];
        let mut fleet = FleetController::new(cfg).unwrap();
        let out = fleet.run();
        assert_eq!(out.static_contexts, 3);
        assert_eq!(out.static_safe_contexts, 2);
        assert!(out.static_relief_ppm > 0, "proven coverage sheds sampling");
        assert!(out.final_scale_ppm < PPM_SCALE);
        // The statically suspicious context is in the *generation-0*
        // seed evidence — boosted before any trap has ever fired.
        let seed = std::fs::read_to_string(dir.join("evidence-g0-w0.evi")).unwrap();
        assert!(
            seed.contains("flagged.c:7|driver.c:3|main.c:1"),
            "static-suspicious context missing from the first seed: {seed}"
        );
        assert!(
            !seed.contains("proved_a.c:1"),
            "proven-safe contexts must not be pinned"
        );
        // The verdicts are durable: a reopened fleet still has them.
        let reopened = FleetController::new(small_fleet(&dir)).unwrap();
        assert_eq!(reopened.store().priors().static_len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashing_workers_back_off_and_quarantine() {
        let dir = fleet_dir("crash");
        let mut cfg = small_fleet(&dir);
        cfg.crash_ppm = PPM_SCALE; // every run crashes
        cfg.generations = 12;
        cfg.supervisor = SupervisorPolicy {
            max_consecutive_failures: 2,
            base_backoff: 1,
            max_backoff: 4,
        };
        let mut fleet = FleetController::new(cfg).unwrap();
        let out = fleet.run();
        assert!(out.worker_crashes > 0);
        assert_eq!(out.workers_quarantined, 2, "both workers end quarantined");
        assert!(out.streams_quarantined > 0);
        // Quarantine bounds the damage: far fewer runs than 2 x 12.
        assert!(out.worker_runs < 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_counted_not_fatal() {
        let dir = fleet_dir("corrupt");
        let mut cfg = small_fleet(&dir);
        cfg.corrupt_line_ppm = PPM_SCALE;
        cfg.duplicate_line_ppm = PPM_SCALE;
        let mut fleet = FleetController::new(cfg).unwrap();
        let out = fleet.run();
        assert!(out.records_skipped_corrupt > 0, "every stream got a torn line");
        assert!(out.leak_free);
        assert!(out.confirmed_contexts > 0, "corruption didn't block ingestion");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overloaded_fleet_sheds_sampling_smoothly() {
        let dir = fleet_dir("budget");
        let mut cfg = small_fleet(&dir);
        cfg.budget.max_reports_per_generation = 1; // everything is overload
        cfg.generations = 3;
        let mut fleet = FleetController::new(cfg).unwrap();
        let out = fleet.run();
        assert!(out.budget_sheds > 0);
        assert!(out.final_scale_ppm < PPM_SCALE);
        assert!(
            out.final_scale_ppm >= BudgetPolicy::default().min_scale_ppm,
            "shedding respects the floor"
        );
        // Detection still works: pinned contexts bypass the scale.
        assert!(out.detected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
