//! CRC32 (IEEE 802.3 polynomial) for framing journal records.
//!
//! The journal needs a checksum that is cheap, dependency-free and
//! stable across platforms — corruption detection, not cryptography. A
//! truncated or bit-flipped frame fails its CRC and recovery stops at
//! the last good record, which is exactly the "consistent snapshot after
//! `kill -9` at any byte offset" contract.

/// Reflected CRC32 lookup table for the IEEE polynomial `0xEDB88320`,
/// built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    // Parallel counters sidestep any cast: `i` indexes, `seed` is the
    // byte value the entry is built from.
    let mut i: usize = 0;
    let mut seed: u32 = 0;
    while i < 256 {
        let mut crc = seed;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
        seed += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE, reflected, init and final XOR `!0`): the
/// same value `cksum`-style tools call "crc32".
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn corruption_changes_the_crc() {
        let good = crc32(b"mem.c:312|main.c:1");
        let bad = crc32(b"mem.c:313|main.c:1");
        assert_ne!(good, bad);
    }
}
