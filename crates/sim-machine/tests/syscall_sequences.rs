//! Fidelity tests: the exact syscall sequences of the paper's Figures 3
//! and 4, observed through the flight recorder.

use sim_machine::{
    FcntlCmd, IoctlCmd, LogEvent, Machine, PerfEventAttr, Signal, ThreadId, VirtAddr,
};

fn syscall_names(machine: &Machine) -> Vec<&'static str> {
    machine
        .recorder()
        .expect("recorder enabled")
        .events()
        .filter_map(|(_, e)| match e {
            LogEvent::Syscall { name } => Some(*name),
            _ => None,
        })
        .collect()
}

#[test]
fn figure3_install_sequence() {
    let mut m = Machine::new();
    m.recorder_enable(64);
    let addr = VirtAddr::new(0x10_0000);
    m.map_region(addr, 4096, "heap").unwrap();

    // Figure 3: perf_event_open, fcntl(F_GETFL), fcntl(F_SETFL|O_ASYNC),
    // fcntl(F_SETSIG, SIGTRAP), fcntl(F_SETOWN, tid), ioctl(ENABLE).
    let fd = m
        .sys_perf_event_open(PerfEventAttr::rw_word(addr), ThreadId::MAIN)
        .unwrap();
    let flags = m.sys_fcntl(fd, FcntlCmd::GetFl).unwrap();
    assert_eq!(flags & 0x2000, 0, "O_ASYNC not yet set");
    m.sys_fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
    assert_eq!(m.sys_fcntl(fd, FcntlCmd::GetFl).unwrap() & 0x2000, 0x2000);
    m.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap)).unwrap();
    m.sys_fcntl(fd, FcntlCmd::SetOwn(ThreadId::MAIN)).unwrap();
    m.sys_ioctl(fd, IoctlCmd::Enable).unwrap();

    assert_eq!(
        syscall_names(&m),
        vec![
            "perf_event_open",
            "fcntl",
            "fcntl",
            "fcntl",
            "fcntl",
            "fcntl",
            "ioctl"
        ]
    );
}

#[test]
fn figure4_remove_sequence() {
    let mut m = Machine::new();
    let addr = VirtAddr::new(0x10_0000);
    m.map_region(addr, 4096, "heap").unwrap();
    let fd = m
        .sys_perf_event_open(PerfEventAttr::rw_word(addr), ThreadId::MAIN)
        .unwrap();
    m.sys_ioctl(fd, IoctlCmd::Enable).unwrap();

    m.recorder_enable(16);
    // Figure 4: ioctl(PERF_EVENT_IOC_DISABLE) then close(fd).
    m.sys_ioctl(fd, IoctlCmd::Disable).unwrap();
    m.sys_close(fd).unwrap();
    assert_eq!(syscall_names(&m), vec!["ioctl", "close"]);
    assert_eq!(m.open_events(), 0);
}

#[test]
fn backend_sequences_differ_as_documented() {
    // ptrace route: one logical ptrace entry (attach/poke/detach are
    // costed individually but it is one named facility).
    let mut m = Machine::new();
    let addr = VirtAddr::new(0x10_0000);
    m.map_region(addr, 4096, "heap").unwrap();
    m.recorder_enable(16);
    let fd = m
        .sys_ptrace_watch(PerfEventAttr::rw_word(addr), ThreadId::MAIN)
        .unwrap();
    m.sys_ptrace_unwatch(fd).unwrap();
    assert_eq!(syscall_names(&m), vec!["ptrace", "ptrace"]);

    // Combined syscall: exactly one kernel entry per direction.
    let mut m = Machine::new();
    m.map_region(addr, 4096, "heap").unwrap();
    let worker = m.spawn_thread();
    let _ = worker;
    m.recorder_enable(16);
    let fds = m
        .sys_watch_all_threads(PerfEventAttr::rw_word(addr))
        .unwrap();
    let raw: Vec<_> = fds.iter().map(|&(_, fd)| fd).collect();
    m.sys_unwatch_all(&raw);
    assert_eq!(
        syscall_names(&m),
        vec!["watch_all_threads", "unwatch_all_threads"]
    );
}

#[test]
fn per_thread_install_cost_scales_with_threads() {
    // "eight system calls are used to install and remove a watchpoint
    // for each thread" (Section V-B) — our sequence is 6 + 2 = 8 per
    // thread via the perf route.
    let mut m = Machine::new();
    let addr = VirtAddr::new(0x10_0000);
    m.map_region(addr, 4096, "heap").unwrap();
    let worker = m.spawn_thread();
    for tid in [ThreadId::MAIN, worker] {
        let fd = m.sys_perf_event_open(PerfEventAttr::rw_word(addr), tid).unwrap();
        m.sys_fcntl(fd, FcntlCmd::GetFl).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap)).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetOwn(tid)).unwrap();
        m.sys_ioctl(fd, IoctlCmd::Enable).unwrap();
        m.sys_ioctl(fd, IoctlCmd::Disable).unwrap();
        m.sys_close(fd).unwrap();
    }
    assert_eq!(m.counter().syscalls(), 16, "8 per thread x 2 threads");
}
