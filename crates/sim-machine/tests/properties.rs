//! Property-based tests of the machine substrate.

use proptest::prelude::*;
use sim_machine::{
    AccessKind, AddrRange, AddressSpace, Machine, PerfEventAttr, PerfSubsystem, ThreadId,
    VirtAddr, NUM_WATCHPOINT_REGISTERS,
};

proptest! {
    /// The address space behaves like a byte map over its mapped region.
    #[test]
    fn address_space_matches_byte_model(
        writes in proptest::collection::vec((0u64..4000, any::<u8>(), 1u64..64), 1..60),
    ) {
        let mut mem = AddressSpace::new();
        let base = VirtAddr::new(0x10_0000);
        mem.map_region(base, 4096, "heap").unwrap();
        let mut model = vec![0u8; 4096];
        for (off, byte, len) in writes {
            let len = len.min(4096 - off);
            if len == 0 { continue; }
            let data = vec![byte; len as usize];
            mem.write_bytes(base + off, &data).unwrap();
            model[off as usize..(off + len) as usize].fill(byte);
        }
        let mut out = vec![0u8; 4096];
        mem.read_bytes(base, &mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    /// Any access fully outside mapped regions errors; any inside works.
    #[test]
    fn mapped_accesses_succeed_unmapped_fail(off in 0u64..10_000, len in 1u64..128) {
        let mut mem = AddressSpace::new();
        let base = VirtAddr::new(0x10_0000);
        mem.map_region(base, 4096, "r").unwrap();
        let inside = off + len <= 4096;
        let result = mem.write_bytes(base + off, &vec![1u8; len as usize]);
        prop_assert_eq!(result.is_ok(), inside);
    }

    /// Under arbitrary open/close interleavings, a thread never holds
    /// more than four events and every close balances an open.
    #[test]
    fn debug_registers_never_exceed_four(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut perf = PerfSubsystem::new();
        let mut open = Vec::new();
        let mut addr = 0x1000u64;
        for do_open in ops {
            if do_open {
                addr += 8;
                match perf.open(PerfEventAttr::rw_word(VirtAddr::new(addr)), ThreadId::MAIN) {
                    Ok(fd) => open.push(fd),
                    Err(_) => prop_assert_eq!(open.len(), NUM_WATCHPOINT_REGISTERS),
                }
            } else if let Some(fd) = open.pop() {
                perf.close(fd).unwrap();
            }
            prop_assert!(open.len() <= NUM_WATCHPOINT_REGISTERS);
            prop_assert_eq!(perf.free_registers(ThreadId::MAIN), 4 - open.len());
            prop_assert_eq!(perf.open_events(), open.len());
        }
    }

    /// Watchpoint firing is exactly range-overlap on enabled events of
    /// the accessing thread.
    #[test]
    fn trap_iff_overlap(watch_off in 0u64..512, acc_off in 0u64..512, len in 1u64..16) {
        let mut m = Machine::new();
        let base = VirtAddr::new(0x20_0000);
        m.map_region(base, 4096, "heap").unwrap();
        let watch = base + watch_off * 8;
        let fd = m.sys_perf_event_open(PerfEventAttr::rw_word(watch), ThreadId::MAIN).unwrap();
        m.sys_fcntl(fd, sim_machine::FcntlCmd::SetFlAsync).unwrap();
        m.sys_fcntl(fd, sim_machine::FcntlCmd::SetSig(sim_machine::Signal::Trap)).unwrap();
        m.sys_ioctl(fd, sim_machine::IoctlCmd::Enable).unwrap();
        let acc = base + acc_off;
        if m.app_access(ThreadId::MAIN, acc, len, AccessKind::Read).is_ok() {
            let expect = AddrRange::new(watch, 8).overlaps(&AddrRange::new(acc, len));
            let fired = !m.take_signals().is_empty();
            prop_assert_eq!(fired, expect);
        }
    }

    /// Bulk accesses charge exactly like the same number of singles.
    #[test]
    fn bulk_equals_singles_in_cost(count in 1u64..500) {
        let base = VirtAddr::new(0x30_0000);
        let mut bulk = Machine::new();
        bulk.map_region(base, 4096, "h").unwrap();
        bulk.app_access_bulk(ThreadId::MAIN, base, 8, AccessKind::Write, count).unwrap();

        let mut singles = Machine::new();
        singles.map_region(base, 4096, "h").unwrap();
        for _ in 0..count {
            singles.app_write(ThreadId::MAIN, base, 8).unwrap();
        }
        prop_assert_eq!(bulk.counter().app_ns(), singles.counter().app_ns());
        prop_assert_eq!(bulk.counter().accesses(), singles.counter().accesses());
    }

    /// PMU sampling density is 1/period over any access pattern mix of
    /// bulk and single accesses (sample points, not queued entries).
    #[test]
    fn pmu_cost_matches_density(period in 1u64..64, batches in proptest::collection::vec(1u64..100, 1..20)) {
        let base = VirtAddr::new(0x40_0000);
        let mut m = Machine::new();
        m.map_region(base, 4096, "h").unwrap();
        m.pmu_enable(period);
        let mut total = 0u64;
        for b in batches {
            m.app_access_bulk(ThreadId::MAIN, base, 8, AccessKind::Read, b).unwrap();
            total += b;
        }
        let expected_samples = total / period;
        prop_assert_eq!(
            m.counter().tool_ns(),
            expected_samples * m.costs().pmu_sample
        );
    }
}
