//! The `perf_event_open` breakpoint subsystem.
//!
//! This module models the exact kernel interface the paper uses to drive
//! hardware watchpoints without `ptrace` (Section II-A and Figure 3):
//!
//! ```text
//! fd = perf_event_open(&pe, tid, -1, -1, 0);      // claim a debug register
//! fcntl(fd, F_SETFL, flags | O_ASYNC);            // asynchronous notification
//! fcntl(fd, F_SETSIG, SIGTRAP);                   // raise SIGTRAP
//! fcntl(fd, F_SETOWN, tid);                       // ...on the accessing thread
//! ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);            // arm it
//! ...
//! ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);           // disarm (Figure 4)
//! close(fd);                                      // release the register
//! ```
//!
//! Each event is pinned to one thread; watching an address on every alive
//! thread therefore takes one event (and one debug register) per thread,
//! which is why installing and removing a watchpoint costs about eight
//! system calls *per thread* (Section V-B).

use crate::addr::AddrRange;
use crate::debug::DebugRegisterFile;
use crate::signal::Signal;
use crate::thread::ThreadId;
use std::collections::HashMap;
use std::fmt;

/// A perf-event file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(u64);

impl Fd {
    /// Builds a descriptor from its raw number (tests and displays).
    pub const fn from_raw(raw: u64) -> Self {
        Fd(raw)
    }

    /// The raw descriptor number.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Breakpoint trigger condition (`attr.bp_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BpType {
    /// Fire on loads only (`HW_BREAKPOINT_R`).
    Read,
    /// Fire on stores only (`HW_BREAKPOINT_W`).
    Write,
    /// Fire on loads and stores (`HW_BREAKPOINT_RW`) — what CSOD uses, so
    /// both over-reads and over-writes are caught.
    ReadWrite,
}

impl BpType {
    /// Whether the breakpoint fires for the given access kind.
    pub fn matches(self, kind: crate::AccessKind) -> bool {
        matches!(
            (self, kind),
            (BpType::ReadWrite, _)
                | (BpType::Read, crate::AccessKind::Read)
                | (BpType::Write, crate::AccessKind::Write)
        )
    }
}

/// The subset of `struct perf_event_attr` the breakpoint path consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfEventAttr {
    /// Trigger condition.
    pub bp_type: BpType,
    /// Watched linear address.
    pub bp_addr: crate::VirtAddr,
    /// Watched length in bytes; hardware supports 1, 2, 4 or 8.
    pub bp_len: u64,
}

impl PerfEventAttr {
    /// A read-write breakpoint over the 8-byte word at `addr` — the
    /// configuration CSOD installs on object boundaries.
    pub fn rw_word(addr: crate::VirtAddr) -> Self {
        PerfEventAttr {
            bp_type: BpType::ReadWrite,
            bp_addr: addr,
            bp_len: 8,
        }
    }

    /// The watched byte range.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.bp_addr, self.bp_len)
    }
}

/// `fcntl` commands understood by perf-event descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcntlCmd {
    /// `F_GETFL`: read the status flags.
    GetFl,
    /// `F_SETFL` with `O_ASYNC`: enable asynchronous signal notification.
    SetFlAsync,
    /// `F_SETSIG`: choose the signal delivered on overflow of the event.
    SetSig(Signal),
    /// `F_SETOWN`: choose the thread that receives the signal.
    SetOwn(ThreadId),
}

/// `ioctl` commands understood by perf-event descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoctlCmd {
    /// `PERF_EVENT_IOC_ENABLE`.
    Enable,
    /// `PERF_EVENT_IOC_DISABLE`.
    Disable,
}

/// Errors returned by the perf subsystem (errno equivalents noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfError {
    /// All four debug registers of the target thread are busy (`EBUSY`).
    NoFreeRegister(ThreadId),
    /// The descriptor is not open (`EBADF`).
    BadFd(Fd),
    /// The target thread does not exist (`ESRCH`).
    NoSuchThread(ThreadId),
    /// Unsupported watch length (`EINVAL`); hardware allows 1, 2, 4, 8.
    InvalidLength(u64),
    /// The debug hardware is held by another agent — a co-resident
    /// debugger or profiler (`EBUSY`). Unlike [`PerfError::NoFreeRegister`]
    /// this is transient and not caused by the tool's own events.
    DeviceBusy(ThreadId),
    /// The kernel refused to allocate event state (`ENOSPC`).
    NoSpace,
    /// The call was interrupted (`EINTR`). For `close`, the descriptor is
    /// still released — as on Linux, retrying the close would be the bug.
    Interrupted,
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NoFreeRegister(t) => {
                write!(f, "no free debug register on {t} (EBUSY)")
            }
            PerfError::BadFd(fd) => write!(f, "bad file descriptor {fd} (EBADF)"),
            PerfError::NoSuchThread(t) => write!(f, "no such thread {t} (ESRCH)"),
            PerfError::InvalidLength(l) => {
                write!(f, "invalid breakpoint length {l} (EINVAL)")
            }
            PerfError::DeviceBusy(t) => {
                write!(f, "debug hardware on {t} held by another agent (EBUSY)")
            }
            PerfError::NoSpace => write!(f, "no kernel space for perf event (ENOSPC)"),
            PerfError::Interrupted => write!(f, "interrupted system call (EINTR)"),
        }
    }
}

impl std::error::Error for PerfError {}

/// One open breakpoint event.
#[derive(Debug, Clone)]
struct PerfEvent {
    attr: PerfEventAttr,
    /// Thread whose debug register this event occupies.
    tid: ThreadId,
    enabled: bool,
    async_notify: bool,
    sig: Signal,
    owner: ThreadId,
}

/// A watchpoint hit produced by [`PerfSubsystem::check_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredWatchpoint {
    /// The descriptor whose watch range was touched.
    pub fd: Fd,
    /// The watched range.
    pub watched: AddrRange,
    /// Signal configured with `F_SETSIG`.
    pub sig: Signal,
    /// Thread configured with `F_SETOWN`.
    pub owner: ThreadId,
}

/// The kernel-side state: open events plus each thread's debug registers.
#[derive(Debug)]
pub struct PerfSubsystem {
    events: HashMap<u64, PerfEvent>,
    /// Register files indexed by dense thread id (ids are sequential and
    /// never reused); `None` for threads that never armed a watch or
    /// have exited. The access-check hot path indexes straight in.
    registers: Vec<Option<DebugRegisterFile>>,
    registers_per_thread: usize,
    next_fd: u64,
    /// Total breakpoint events ever opened (for Table IV's "watched
    /// times" style accounting at machine level).
    opened_total: u64,
}

impl Default for PerfSubsystem {
    fn default() -> Self {
        PerfSubsystem::new()
    }
}

impl PerfSubsystem {
    /// Creates an empty subsystem with the four x86-64 registers.
    pub fn new() -> Self {
        PerfSubsystem::with_registers(crate::NUM_WATCHPOINT_REGISTERS)
    }

    /// Creates an empty subsystem with `n` debug registers per thread
    /// (hypothetical hardware for the register-count ablation).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_registers(n: usize) -> Self {
        assert!(n > 0, "at least one debug register");
        PerfSubsystem {
            events: HashMap::new(),
            registers: Vec::new(),
            registers_per_thread: n,
            // fd 0..2 are stdio on a real process; start above them.
            next_fd: 3,
            opened_total: 0,
        }
    }

    /// Debug registers available per thread.
    pub fn registers_per_thread(&self) -> usize {
        self.registers_per_thread
    }

    /// `perf_event_open(&attr, tid, -1, -1, 0)`: opens a breakpoint event
    /// on `tid`, claiming one of its four debug registers.
    ///
    /// The register is claimed at open time, so the fifth concurrent open
    /// on one thread fails with [`PerfError::NoFreeRegister`].
    ///
    /// # Errors
    ///
    /// See [`PerfError`]. The caller (the machine) validates thread
    /// liveness before calling.
    pub fn open(&mut self, attr: PerfEventAttr, tid: ThreadId) -> Result<Fd, PerfError> {
        if !matches!(attr.bp_len, 1 | 2 | 4 | 8) {
            return Err(PerfError::InvalidLength(attr.bp_len));
        }
        let fd = Fd(self.next_fd);
        let n = self.registers_per_thread;
        let idx = tid.as_u32() as usize;
        if self.registers.len() <= idx {
            self.registers.resize_with(idx + 1, || None);
        }
        let regs = self.registers[idx]
            .get_or_insert_with(|| DebugRegisterFile::with_registers(n));
        if regs.claim(fd, attr.range()).is_none() {
            return Err(PerfError::NoFreeRegister(tid));
        }
        self.next_fd += 1;
        self.opened_total += 1;
        self.events.insert(
            fd.0,
            PerfEvent {
                attr,
                tid,
                enabled: false,
                async_notify: false,
                sig: Signal::Trap,
                owner: tid,
            },
        );
        Ok(fd)
    }

    /// `fcntl(fd, cmd)`.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for descriptors that are not open.
    pub fn fcntl(&mut self, fd: Fd, cmd: FcntlCmd) -> Result<i64, PerfError> {
        let event = self.events.get_mut(&fd.0).ok_or(PerfError::BadFd(fd))?;
        match cmd {
            FcntlCmd::GetFl => Ok(if event.async_notify { 0x2000 } else { 0 }),
            FcntlCmd::SetFlAsync => {
                event.async_notify = true;
                Ok(0)
            }
            FcntlCmd::SetSig(sig) => {
                event.sig = sig;
                Ok(0)
            }
            FcntlCmd::SetOwn(tid) => {
                event.owner = tid;
                Ok(0)
            }
        }
    }

    /// `ioctl(fd, PERF_EVENT_IOC_{ENABLE,DISABLE}, 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for descriptors that are not open.
    pub fn ioctl(&mut self, fd: Fd, cmd: IoctlCmd) -> Result<(), PerfError> {
        let event = self.events.get_mut(&fd.0).ok_or(PerfError::BadFd(fd))?;
        event.enabled = matches!(cmd, IoctlCmd::Enable);
        Ok(())
    }

    /// `close(fd)`: destroys the event and frees its debug register.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for descriptors that are not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), PerfError> {
        let event = self.events.remove(&fd.0).ok_or(PerfError::BadFd(fd))?;
        if let Some(Some(regs)) = self.registers.get_mut(event.tid.as_u32() as usize) {
            regs.release(fd);
        }
        Ok(())
    }

    /// The register file of `tid`, if the thread ever armed a watch.
    fn reg_file(&self, tid: ThreadId) -> Option<&DebugRegisterFile> {
        self.registers.get(tid.as_u32() as usize)?.as_ref()
    }

    /// Checks an access by `tid` against the thread's enabled breakpoints
    /// and returns every watchpoint that fires.
    ///
    /// Only asynchronous-notification events with a matching trigger kind
    /// fire; this is the hardware + kernel half of trap delivery. The
    /// machine turns each [`FiredWatchpoint`] into a
    /// [`SignalInfo`](crate::SignalInfo).
    pub fn check_access(
        &self,
        tid: ThreadId,
        range: AddrRange,
        kind: crate::AccessKind,
    ) -> Vec<FiredWatchpoint> {
        let Some(regs) = self.reg_file(tid) else {
            return Vec::new();
        };
        // The register file mirrors the armed ranges (as DR0-DR3 do on
        // real hardware): one bounding-range comparison rejects almost
        // every access without touching the event table.
        let Some(bounds) = regs.bounds() else {
            return Vec::new();
        };
        if !bounds.overlaps(&range) {
            return Vec::new();
        }
        regs.armed()
            .filter_map(|(fd, watched)| {
                if !watched.overlaps(&range) {
                    return None;
                }
                let event = self.events.get(&fd.0)?;
                let fires =
                    event.enabled && event.async_notify && event.attr.bp_type.matches(kind);
                fires.then_some(FiredWatchpoint {
                    fd,
                    watched,
                    sig: event.sig,
                    owner: event.owner,
                })
            })
            .collect()
    }

    /// Free debug registers on `tid` (all of them if the thread never
    /// had a watch).
    pub fn free_registers(&self, tid: ThreadId) -> usize {
        self.reg_file(tid)
            .map_or(self.registers_per_thread, DebugRegisterFile::free_count)
    }

    /// Closes all events pinned to `tid`; called when a thread exits.
    /// Returns the descriptors that were closed.
    pub fn on_thread_exit(&mut self, tid: ThreadId) -> Vec<Fd> {
        let doomed: Vec<Fd> = self
            .events
            .iter()
            .filter(|(_, e)| e.tid == tid)
            .map(|(raw, _)| Fd(*raw))
            .collect();
        for fd in &doomed {
            let _ = self.close(*fd);
        }
        if let Some(slot) = self.registers.get_mut(tid.as_u32() as usize) {
            *slot = None;
        }
        doomed
    }

    /// Number of currently open events.
    pub fn open_events(&self) -> usize {
        self.events.len()
    }

    /// Total events ever opened.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// The watched address range of an open descriptor, if any.
    pub fn watched_range(&self, fd: Fd) -> Option<AddrRange> {
        self.events.get(&fd.0).map(|e| e.attr.range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, VirtAddr};

    fn attr(addr: u64) -> PerfEventAttr {
        PerfEventAttr::rw_word(VirtAddr::new(addr))
    }

    /// Opens an event and applies the full Figure-3 configuration.
    fn open_configured(perf: &mut PerfSubsystem, addr: u64, tid: ThreadId) -> Fd {
        let fd = perf.open(attr(addr), tid).unwrap();
        perf.fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
        perf.fcntl(fd, FcntlCmd::SetSig(Signal::Trap)).unwrap();
        perf.fcntl(fd, FcntlCmd::SetOwn(tid)).unwrap();
        perf.ioctl(fd, IoctlCmd::Enable).unwrap();
        fd
    }

    #[test]
    fn fifth_open_on_same_thread_is_ebusy() {
        let mut perf = PerfSubsystem::new();
        for i in 0..4 {
            perf.open(attr(0x1000 + i * 8), ThreadId::MAIN).unwrap();
        }
        assert_eq!(
            perf.open(attr(0x2000), ThreadId::MAIN),
            Err(PerfError::NoFreeRegister(ThreadId::MAIN))
        );
    }

    #[test]
    fn registers_are_per_thread() {
        let mut perf = PerfSubsystem::new();
        let mut threads = crate::ThreadRegistry::new();
        let worker = threads.spawn();
        for i in 0..4 {
            perf.open(attr(0x1000 + i * 8), ThreadId::MAIN).unwrap();
        }
        // The worker thread still has all four registers free.
        assert_eq!(perf.free_registers(worker), 4);
        assert!(perf.open(attr(0x1000), worker).is_ok());
    }

    #[test]
    fn invalid_length_rejected() {
        let mut perf = PerfSubsystem::new();
        let bad = PerfEventAttr {
            bp_type: BpType::ReadWrite,
            bp_addr: VirtAddr::new(0x1000),
            bp_len: 3,
        };
        assert_eq!(
            perf.open(bad, ThreadId::MAIN),
            Err(PerfError::InvalidLength(3))
        );
    }

    #[test]
    fn close_frees_register() {
        let mut perf = PerfSubsystem::new();
        let fds: Vec<Fd> = (0..4)
            .map(|i| perf.open(attr(0x1000 + i * 8), ThreadId::MAIN).unwrap())
            .collect();
        perf.close(fds[1]).unwrap();
        assert_eq!(perf.free_registers(ThreadId::MAIN), 1);
        assert!(perf.open(attr(0x3000), ThreadId::MAIN).is_ok());
        assert_eq!(perf.close(fds[1]), Err(PerfError::BadFd(fds[1])));
    }

    #[test]
    fn disabled_event_does_not_fire() {
        let mut perf = PerfSubsystem::new();
        let fd = perf.open(attr(0x1000), ThreadId::MAIN).unwrap();
        perf.fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
        // Not enabled yet.
        let hits = perf.check_access(
            ThreadId::MAIN,
            AddrRange::new(VirtAddr::new(0x1000), 8),
            AccessKind::Write,
        );
        assert!(hits.is_empty());
        perf.ioctl(fd, IoctlCmd::Enable).unwrap();
        let hits = perf.check_access(
            ThreadId::MAIN,
            AddrRange::new(VirtAddr::new(0x1000), 8),
            AccessKind::Write,
        );
        assert_eq!(hits.len(), 1);
        perf.ioctl(fd, IoctlCmd::Disable).unwrap();
        let hits = perf.check_access(
            ThreadId::MAIN,
            AddrRange::new(VirtAddr::new(0x1000), 8),
            AccessKind::Write,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn event_without_async_does_not_fire() {
        let mut perf = PerfSubsystem::new();
        let fd = perf.open(attr(0x1000), ThreadId::MAIN).unwrap();
        perf.ioctl(fd, IoctlCmd::Enable).unwrap();
        let hits = perf.check_access(
            ThreadId::MAIN,
            AddrRange::new(VirtAddr::new(0x1004), 1),
            AccessKind::Read,
        );
        assert!(hits.is_empty(), "no O_ASYNC -> no signal");
    }

    #[test]
    fn fires_only_for_accessing_thread() {
        let mut perf = PerfSubsystem::new();
        let mut threads = crate::ThreadRegistry::new();
        let worker = threads.spawn();
        open_configured(&mut perf, 0x1000, ThreadId::MAIN);
        // Same address, but the access comes from a thread without an event.
        let hits = perf.check_access(
            worker,
            AddrRange::new(VirtAddr::new(0x1000), 8),
            AccessKind::Read,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn fired_watchpoint_carries_configuration() {
        let mut perf = PerfSubsystem::new();
        let fd = open_configured(&mut perf, 0x1000, ThreadId::MAIN);
        let hits = perf.check_access(
            ThreadId::MAIN,
            AddrRange::new(VirtAddr::new(0x1006), 4),
            AccessKind::Write,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].fd, fd);
        assert_eq!(hits[0].sig, Signal::Trap);
        assert_eq!(hits[0].owner, ThreadId::MAIN);
        assert_eq!(hits[0].watched, AddrRange::new(VirtAddr::new(0x1000), 8));
    }

    #[test]
    fn bp_type_filters_access_kind() {
        let mut perf = PerfSubsystem::new();
        let mut a = attr(0x1000);
        a.bp_type = BpType::Write;
        let fd = perf.open(a, ThreadId::MAIN).unwrap();
        perf.fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
        perf.ioctl(fd, IoctlCmd::Enable).unwrap();
        let range = AddrRange::new(VirtAddr::new(0x1000), 1);
        assert!(perf.check_access(ThreadId::MAIN, range, AccessKind::Read).is_empty());
        assert_eq!(
            perf.check_access(ThreadId::MAIN, range, AccessKind::Write).len(),
            1
        );
    }

    #[test]
    fn thread_exit_closes_its_events() {
        let mut perf = PerfSubsystem::new();
        let mut threads = crate::ThreadRegistry::new();
        let worker = threads.spawn();
        open_configured(&mut perf, 0x1000, ThreadId::MAIN);
        let wfd = open_configured(&mut perf, 0x1000, worker);
        let closed = perf.on_thread_exit(worker);
        assert_eq!(closed, vec![wfd]);
        assert_eq!(perf.open_events(), 1);
        assert_eq!(perf.free_registers(worker), 4);
    }

    #[test]
    fn opened_total_is_monotonic() {
        let mut perf = PerfSubsystem::new();
        let fd = open_configured(&mut perf, 0x1000, ThreadId::MAIN);
        perf.close(fd).unwrap();
        open_configured(&mut perf, 0x2000, ThreadId::MAIN);
        assert_eq!(perf.opened_total(), 2);
        assert_eq!(perf.open_events(), 1);
    }

    #[test]
    fn watched_range_lookup() {
        let mut perf = PerfSubsystem::new();
        let fd = perf.open(attr(0xaaa8), ThreadId::MAIN).unwrap();
        assert_eq!(
            perf.watched_range(fd),
            Some(AddrRange::new(VirtAddr::new(0xaaa8), 8))
        );
        assert_eq!(perf.watched_range(Fd::from_raw(999)), None);
    }
}
