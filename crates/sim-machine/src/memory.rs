//! The sparse virtual address space.
//!
//! Memory is organized as a set of non-overlapping mapped *regions*
//! (analogous to `mmap`ed areas). All loads and stores must fall entirely
//! within one mapped region; anything else is a fault, which the
//! [`Machine`](crate::Machine) turns into a SIGSEGV-style signal exactly
//! like an out-of-range pointer dereference on a real machine.
//!
//! Region backing is demand-paged in 64 KiB chunks: mapping a 256 MiB
//! heap costs nothing until pages are touched, exactly like anonymous
//! `mmap` memory. Untouched chunks read as zeroes.

use crate::addr::{AddrRange, VirtAddr};
use std::collections::BTreeMap;
use std::fmt;

/// Size of one lazily-allocated backing chunk.
const CHUNK: u64 = 64 * 1024;

/// Errors produced by address-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The access touched at least one unmapped byte.
    Unmapped {
        /// The first faulting address.
        addr: VirtAddr,
        /// How many bytes the access covered.
        len: u64,
    },
    /// A new mapping collided with an existing region.
    MappingOverlap {
        /// The requested range.
        requested: AddrRange,
        /// The name of the region it collided with.
        existing: String,
    },
    /// A mapping request was degenerate (zero length or address wrap).
    InvalidMapping {
        /// The requested range start.
        addr: VirtAddr,
        /// The requested length.
        len: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Unmapped { addr, len } => {
                write!(f, "access to unmapped memory at {addr} (len {len})")
            }
            MemoryError::MappingOverlap { requested, existing } => {
                write!(f, "mapping {requested} overlaps existing region `{existing}`")
            }
            MemoryError::InvalidMapping { addr, len } => {
                write!(f, "invalid mapping request at {addr} (len {len})")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// One mapped region of memory, demand-paged in [`CHUNK`]-byte pieces.
#[derive(Debug, Clone)]
struct Region {
    range: AddrRange,
    name: String,
    /// Backing chunks, indexed by chunk number within the region; `None`
    /// chunks are all-zero. The index vector itself is tiny (one word
    /// per 64 KiB of virtual size).
    chunks: Vec<Option<Box<[u8]>>>,
    resident: u64,
}

impl Region {
    fn new(range: AddrRange, name: &str) -> Self {
        let n_chunks = range.len().div_ceil(CHUNK) as usize;
        Region {
            range,
            name: name.to_owned(),
            chunks: vec![None; n_chunks],
            resident: 0,
        }
    }

    /// Runs `f` over the chunk-relative pieces of `[offset, offset+len)`.
    fn for_pieces(
        offset: u64,
        len: u64,
        mut f: impl FnMut(u64 /*chunk*/, usize /*start in chunk*/, usize /*len*/, usize /*progress*/),
    ) {
        let mut done = 0u64;
        while done < len {
            let pos = offset + done;
            let chunk = pos / CHUNK;
            let start = (pos % CHUNK) as usize;
            let take = ((CHUNK as usize) - start).min((len - done) as usize);
            f(chunk, start, take, done as usize);
            done += take as u64;
        }
    }

    fn read(&self, offset: u64, buf: &mut [u8]) {
        Region::for_pieces(offset, buf.len() as u64, |chunk, start, take, progress| {
            match &self.chunks[chunk as usize] {
                Some(bytes) => buf[progress..progress + take]
                    .copy_from_slice(&bytes[start..start + take]),
                None => buf[progress..progress + take].fill(0),
            }
        });
    }

    #[inline]
    fn chunk_mut<'a>(
        chunks: &'a mut [Option<Box<[u8]>>],
        resident: &mut u64,
        chunk: u64,
    ) -> &'a mut [u8] {
        let slot = &mut chunks[chunk as usize];
        if slot.is_none() {
            *slot = Some(vec![0u8; CHUNK as usize].into_boxed_slice());
            *resident += CHUNK;
        }
        slot.as_deref_mut().expect("just allocated")
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        let chunks = &mut self.chunks;
        let resident = &mut self.resident;
        Region::for_pieces(offset, data.len() as u64, |chunk, start, take, progress| {
            Region::chunk_mut(chunks, resident, chunk)[start..start + take]
                .copy_from_slice(&data[progress..progress + take]);
        });
    }

    fn fill(&mut self, offset: u64, len: u64, byte: u8) {
        let chunks = &mut self.chunks;
        let resident = &mut self.resident;
        Region::for_pieces(offset, len, |chunk, start, take, _| {
            if byte == 0 && chunks[chunk as usize].is_none() {
                return; // untouched chunks are already zero
            }
            Region::chunk_mut(chunks, resident, chunk)[start..start + take].fill(byte);
        });
    }

    /// Bytes actually backed by allocated chunks (the RSS analogue).
    fn resident_bytes(&self) -> u64 {
        self.resident
    }
}

/// A sparse 64-bit address space built from non-overlapping regions.
///
/// # Examples
///
/// ```
/// use sim_machine::{AddressSpace, VirtAddr};
///
/// # fn main() -> Result<(), sim_machine::MemoryError> {
/// let mut mem = AddressSpace::new();
/// let base = VirtAddr::new(0x10_0000);
/// mem.map_region(base, 4096, "heap")?;
/// mem.store_u64(base, 0xdead_beef)?;
/// assert_eq!(mem.load_u64(base)?, 0xdead_beef);
/// assert!(mem.load_u64(VirtAddr::new(0x20_0000)).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct AddressSpace {
    /// Regions keyed by their base address.
    regions: BTreeMap<u64, Region>,
}

impl AddressSpace {
    /// Creates an empty address space with no mappings.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Maps `len` zeroed bytes at `base`. Backing memory is allocated
    /// lazily, so mapping a huge region is O(1).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::InvalidMapping`] for zero-length or wrapping
    /// requests and [`MemoryError::MappingOverlap`] if the range intersects
    /// an existing region.
    pub fn map_region(
        &mut self,
        base: VirtAddr,
        len: u64,
        name: &str,
    ) -> Result<(), MemoryError> {
        if len == 0 || base.checked_add(len).is_none() || base.is_null() {
            return Err(MemoryError::InvalidMapping { addr: base, len });
        }
        let range = AddrRange::new(base, len);
        if let Some(existing) = self.find_overlap(&range) {
            return Err(MemoryError::MappingOverlap {
                requested: range,
                existing: existing.name.clone(),
            });
        }
        self.regions.insert(base.as_u64(), Region::new(range, name));
        Ok(())
    }

    /// Removes the region based exactly at `base`, returning whether a
    /// region was removed.
    pub fn unmap_region(&mut self, base: VirtAddr) -> bool {
        self.regions.remove(&base.as_u64()).is_some()
    }

    /// Returns `true` if every byte of `[addr, addr + len)` is mapped.
    #[inline]
    pub fn is_mapped(&self, addr: VirtAddr, len: u64) -> bool {
        self.region_containing(addr, len).is_some()
    }

    /// Total mapped bytes across all regions (virtual size).
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.values().map(|r| r.range.len()).sum()
    }

    /// Total bytes actually backed by touched chunks (resident size).
    pub fn resident_bytes(&self) -> u64 {
        self.regions.values().map(Region::resident_bytes).sum()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the access is not fully inside
    /// one mapped region.
    #[inline]
    pub fn read_bytes(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemoryError> {
        let region = self.region_or_fault(addr, buf.len() as u64)?;
        region.read(addr - region.range.start(), buf);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the access is not fully inside
    /// one mapped region.
    #[inline]
    pub fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<(), MemoryError> {
        let len = data.len() as u64;
        let region = self
            .region_containing_mut(addr, len)
            .ok_or(MemoryError::Unmapped { addr, len })?;
        region.write(addr - region.range.start(), data);
        Ok(())
    }

    /// Fills `[addr, addr + len)` with `byte`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the range is not fully mapped.
    pub fn fill(&mut self, addr: VirtAddr, len: u64, byte: u8) -> Result<(), MemoryError> {
        let region = self
            .region_containing_mut(addr, len)
            .ok_or(MemoryError::Unmapped { addr, len })?;
        region.fill(addr - region.range.start(), len, byte);
        Ok(())
    }

    /// Loads a little-endian `u64` from `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the eight bytes are not mapped.
    #[inline]
    pub fn load_u64(&self, addr: VirtAddr) -> Result<u64, MemoryError> {
        let region = self.region_or_fault(addr, 8)?;
        let offset = addr - region.range.start();
        let start = (offset % CHUNK) as usize;
        if start <= CHUNK as usize - 8 {
            // Word lies inside one chunk — the overwhelmingly common case
            // (allocator headers and canaries are 8-byte aligned).
            return Ok(match &region.chunks[(offset / CHUNK) as usize] {
                Some(bytes) => {
                    u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
                }
                None => 0,
            });
        }
        let mut buf = [0u8; 8];
        region.read(offset, &mut buf);
        Ok(u64::from_le_bytes(buf))
    }

    /// Stores a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] if the eight bytes are not mapped.
    #[inline]
    pub fn store_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), MemoryError> {
        let region = self
            .region_containing_mut(addr, 8)
            .ok_or(MemoryError::Unmapped { addr, len: 8 })?;
        let offset = addr - region.range.start();
        let start = (offset % CHUNK) as usize;
        if start <= CHUNK as usize - 8 {
            let chunk = Region::chunk_mut(&mut region.chunks, &mut region.resident, offset / CHUNK);
            chunk[start..start + 8].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        region.write(offset, &value.to_le_bytes());
        Ok(())
    }

    fn find_overlap(&self, range: &AddrRange) -> Option<&Region> {
        self.regions
            .range(..=range.end().as_u64())
            .map(|(_, r)| r)
            .find(|r| r.range.overlaps(range))
    }

    #[inline]
    fn region_containing(&self, addr: VirtAddr, len: u64) -> Option<&Region> {
        let end = addr.checked_add(len)?;
        let (_, region) = self.regions.range(..=addr.as_u64()).next_back()?;
        if region.range.contains(addr) && end <= region.range.end() && len > 0 {
            Some(region)
        } else {
            None
        }
    }

    #[inline]
    fn region_containing_mut(&mut self, addr: VirtAddr, len: u64) -> Option<&mut Region> {
        let end = addr.checked_add(len)?;
        let (_, region) = self.regions.range_mut(..=addr.as_u64()).next_back()?;
        if region.range.contains(addr) && end <= region.range.end() && len > 0 {
            Some(region)
        } else {
            None
        }
    }

    #[inline]
    fn region_or_fault(&self, addr: VirtAddr, len: u64) -> Result<&Region, MemoryError> {
        self.region_containing(addr, len)
            .ok_or(MemoryError::Unmapped { addr, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_heap() -> (AddressSpace, VirtAddr) {
        let mut mem = AddressSpace::new();
        let base = VirtAddr::new(0x10_0000);
        mem.map_region(base, 4096, "heap").unwrap();
        (mem, base)
    }

    #[test]
    fn round_trip_bytes() {
        let (mut mem, base) = space_with_heap();
        mem.write_bytes(base + 10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        mem.read_bytes(base + 10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn round_trip_u64() {
        let (mut mem, base) = space_with_heap();
        mem.store_u64(base + 8, u64::MAX - 1).unwrap();
        assert_eq!(mem.load_u64(base + 8).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn fill_overwrites_range() {
        let (mut mem, base) = space_with_heap();
        mem.fill(base, 16, 0xAA).unwrap();
        let mut buf = [0u8; 16];
        mem.read_bytes(base, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn new_mapping_is_zeroed() {
        let (mem, base) = space_with_heap();
        assert_eq!(mem.load_u64(base).unwrap(), 0);
    }

    #[test]
    fn mapping_is_lazy_until_touched() {
        let mut mem = AddressSpace::new();
        let base = VirtAddr::new(0x10_0000);
        mem.map_region(base, 1 << 30, "huge").unwrap(); // 1 GiB
        assert_eq!(mem.resident_bytes(), 0, "no chunk allocated yet");
        mem.store_u64(base + (512 << 20), 7).unwrap();
        assert_eq!(mem.resident_bytes(), CHUNK, "one chunk after one touch");
        // Filling with zero over untouched chunks stays lazy.
        mem.fill(base, 1 << 20, 0).unwrap();
        assert_eq!(mem.resident_bytes(), CHUNK);
    }

    #[test]
    fn accesses_spanning_chunk_boundaries() {
        let mut mem = AddressSpace::new();
        let base = VirtAddr::new(0x10_0000);
        mem.map_region(base, 4 * CHUNK, "heap").unwrap();
        // A write straddling the first chunk boundary.
        let at = base + CHUNK - 4;
        mem.write_bytes(at, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut buf = [0u8; 8];
        mem.read_bytes(at, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        // A fill spanning three chunks.
        mem.fill(base + CHUNK - 10, 2 * CHUNK + 20, 0x5A).unwrap();
        let mut probe = [0u8; 1];
        for offset in [CHUNK - 10, CHUNK, 2 * CHUNK, 3 * CHUNK + 9] {
            mem.read_bytes(base + offset, &mut probe).unwrap();
            assert_eq!(probe[0], 0x5A, "offset {offset}");
        }
        mem.read_bytes(base + 3 * CHUNK + 10, &mut probe).unwrap();
        assert_eq!(probe[0], 0, "one past the fill");
    }

    #[test]
    fn unmapped_access_faults() {
        let (mem, base) = space_with_heap();
        let err = mem.load_u64(base + 4096).unwrap_err();
        assert!(matches!(err, MemoryError::Unmapped { .. }));
    }

    #[test]
    fn access_straddling_region_end_faults() {
        let (mut mem, base) = space_with_heap();
        // Last 4 bytes are mapped; the next 4 are not.
        let addr = base + 4092;
        assert!(mem.store_u64(addr, 1).is_err());
        // But a 4-byte write at the same spot succeeds.
        assert!(mem.write_bytes(addr, &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn zero_length_mapping_rejected() {
        let mut mem = AddressSpace::new();
        let err = mem.map_region(VirtAddr::new(0x1000), 0, "bad").unwrap_err();
        assert!(matches!(err, MemoryError::InvalidMapping { .. }));
    }

    #[test]
    fn null_mapping_rejected() {
        let mut mem = AddressSpace::new();
        let err = mem.map_region(VirtAddr::NULL, 4096, "bad").unwrap_err();
        assert!(matches!(err, MemoryError::InvalidMapping { .. }));
    }

    #[test]
    fn wrapping_mapping_rejected() {
        let mut mem = AddressSpace::new();
        let err = mem
            .map_region(VirtAddr::new(u64::MAX - 10), 100, "bad")
            .unwrap_err();
        assert!(matches!(err, MemoryError::InvalidMapping { .. }));
    }

    #[test]
    fn overlapping_mapping_rejected() {
        let (mut mem, base) = space_with_heap();
        let err = mem.map_region(base + 100, 10, "overlay").unwrap_err();
        match err {
            MemoryError::MappingOverlap { existing, .. } => assert_eq!(existing, "heap"),
            other => panic!("unexpected error {other:?}"),
        }
        // Overlap reaching into the region from below is also rejected.
        assert!(mem.map_region(base - 10, 20, "below").is_err());
        // Adjacent mapping is fine.
        assert!(mem.map_region(base + 4096, 4096, "heap2").is_ok());
    }

    #[test]
    fn unmap_then_remap() {
        let (mut mem, base) = space_with_heap();
        assert!(mem.unmap_region(base));
        assert!(!mem.unmap_region(base));
        assert!(!mem.is_mapped(base, 1));
        mem.map_region(base, 64, "heap-again").unwrap();
        assert!(mem.is_mapped(base, 64));
    }

    #[test]
    fn mapped_bytes_sums_regions() {
        let (mut mem, base) = space_with_heap();
        mem.map_region(base + 0x10_0000, 100, "aux").unwrap();
        assert_eq!(mem.mapped_bytes(), 4196);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = MemoryError::Unmapped {
            addr: VirtAddr::new(0x42),
            len: 8,
        };
        assert!(err.to_string().contains("0x42"));
    }
}
