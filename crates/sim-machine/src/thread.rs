//! Simulated threads.
//!
//! CSOD installs every watchpoint on *all* alive threads, "since there is
//! no way to know which thread will cause an overflow later" (paper
//! Section III-C1), and therefore intercepts `pthread_create` to keep a
//! global list of alive threads. The simulated machine keeps the same
//! list; tools can subscribe to spawn/exit events through the
//! [`Machine`](crate::Machine) API to mirror that interception.

use std::fmt;

/// Identifier of a simulated thread.
///
/// The main thread is always [`ThreadId::MAIN`]; further ids are assigned
/// sequentially by [`ThreadRegistry::spawn`], mirroring Linux TIDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The initial thread of every machine.
    pub const MAIN: ThreadId = ThreadId(0);

    /// The raw numeric id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Errors from thread-registry operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadError {
    /// The referenced thread is not alive.
    NoSuchThread(ThreadId),
    /// The main thread cannot exit while the machine runs.
    MainThreadExit,
}

impl fmt::Display for ThreadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadError::NoSuchThread(t) => write!(f, "no such thread {t}"),
            ThreadError::MainThreadExit => f.write_str("main thread cannot exit"),
        }
    }
}

impl std::error::Error for ThreadError {}

/// The global list of alive threads (the paper's `aliveThreads`).
///
/// # Examples
///
/// ```
/// use sim_machine::{ThreadId, ThreadRegistry};
///
/// let mut threads = ThreadRegistry::new();
/// let worker = threads.spawn();
/// assert!(threads.is_alive(worker));
/// assert_eq!(threads.alive().count(), 2); // main + worker
/// threads.exit(worker)?;
/// assert!(!threads.is_alive(worker));
/// # Ok::<(), sim_machine::ThreadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThreadRegistry {
    /// Alive thread ids, in spawn order. The main thread is entry 0.
    alive: Vec<ThreadId>,
    next_id: u32,
    peak_alive: usize,
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        ThreadRegistry {
            alive: vec![ThreadId::MAIN],
            next_id: 1,
            peak_alive: 1,
        }
    }
}

impl ThreadRegistry {
    /// Creates a registry containing only the main thread.
    pub fn new() -> Self {
        ThreadRegistry::default()
    }

    /// Spawns a new thread and returns its id.
    pub fn spawn(&mut self) -> ThreadId {
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.alive.push(id);
        self.peak_alive = self.peak_alive.max(self.alive.len());
        id
    }

    /// Marks `tid` as exited.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadError::MainThreadExit`] for the main thread and
    /// [`ThreadError::NoSuchThread`] if `tid` is not alive.
    pub fn exit(&mut self, tid: ThreadId) -> Result<(), ThreadError> {
        if tid == ThreadId::MAIN {
            return Err(ThreadError::MainThreadExit);
        }
        match self.alive.iter().position(|&t| t == tid) {
            Some(pos) => {
                self.alive.remove(pos);
                Ok(())
            }
            None => Err(ThreadError::NoSuchThread(tid)),
        }
    }

    /// Returns `true` if `tid` is currently alive.
    pub fn is_alive(&self, tid: ThreadId) -> bool {
        self.alive.contains(&tid)
    }

    /// Iterates over all alive threads in spawn order.
    pub fn alive(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.alive.iter().copied()
    }

    /// Number of currently alive threads.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }

    /// The largest number of simultaneously alive threads observed.
    pub fn peak_alive(&self) -> usize {
        self.peak_alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_main_thread() {
        let t = ThreadRegistry::new();
        assert!(t.is_alive(ThreadId::MAIN));
        assert_eq!(t.alive_count(), 1);
    }

    #[test]
    fn spawn_assigns_sequential_ids() {
        let mut t = ThreadRegistry::new();
        let a = t.spawn();
        let b = t.spawn();
        assert_eq!(a.as_u32(), 1);
        assert_eq!(b.as_u32(), 2);
        assert_eq!(t.alive().collect::<Vec<_>>(), vec![ThreadId::MAIN, a, b]);
    }

    #[test]
    fn exit_removes_thread() {
        let mut t = ThreadRegistry::new();
        let a = t.spawn();
        let b = t.spawn();
        t.exit(a).unwrap();
        assert!(!t.is_alive(a));
        assert!(t.is_alive(b));
        assert_eq!(t.exit(a), Err(ThreadError::NoSuchThread(a)));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = ThreadRegistry::new();
        let a = t.spawn();
        t.exit(a).unwrap();
        let b = t.spawn();
        assert_ne!(a, b);
    }

    #[test]
    fn main_thread_cannot_exit() {
        let mut t = ThreadRegistry::new();
        assert_eq!(t.exit(ThreadId::MAIN), Err(ThreadError::MainThreadExit));
    }

    #[test]
    fn peak_alive_tracks_high_water_mark() {
        let mut t = ThreadRegistry::new();
        let a = t.spawn();
        let _b = t.spawn();
        t.exit(a).unwrap();
        assert_eq!(t.alive_count(), 2);
        assert_eq!(t.peak_alive(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId::MAIN.to_string(), "tid0");
        assert!(ThreadError::NoSuchThread(ThreadId(7))
            .to_string()
            .contains("tid7"));
    }
}
