//! The per-thread hardware debug-register file.
//!
//! Intel x86-64 exposes six debug registers of which only four (DR0–DR3)
//! can hold watchpoint addresses (paper Section II-A); the other two
//! control debugging features. The simulator models exactly that limit:
//! each thread owns a [`DebugRegisterFile`] with
//! [`NUM_WATCHPOINT_REGISTERS`] slots, and requesting a fifth concurrent
//! watchpoint fails just like `perf_event_open` returning `EBUSY` on real
//! hardware.
//!
//! Like the real DR0–DR3, each occupied slot holds the *watched address
//! range* alongside the owning descriptor, and the file keeps a bounding
//! range over all armed slots. The access-check hot path reads addresses
//! straight from this "hardware" — one bounds comparison rejects the
//! overwhelming majority of accesses without consulting any event state.

use crate::addr::AddrRange;
use crate::perf::Fd;
use std::fmt;

/// Number of address-bearing debug registers on real x86-64 (DR0–DR3).
pub const NUM_WATCHPOINT_REGISTERS: usize = 4;

/// One thread's debug registers. Each slot holds the perf-event
/// descriptor that claimed it plus the range it watches, or `None` when
/// free.
///
/// Real hardware has exactly [`NUM_WATCHPOINT_REGISTERS`]; the simulator
/// allows other counts so the `ablation_registers` harness can ask the
/// what-if question behind the paper's central constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugRegisterFile {
    slots: Vec<Option<(Fd, AddrRange)>>,
    /// Bounding range over every occupied slot; `None` when all free.
    /// An access outside it cannot touch any watched range.
    bounds: Option<AddrRange>,
}

impl Default for DebugRegisterFile {
    fn default() -> Self {
        DebugRegisterFile::new()
    }
}

impl DebugRegisterFile {
    /// A register file with the four x86-64 slots, all free.
    pub fn new() -> Self {
        DebugRegisterFile::with_registers(NUM_WATCHPOINT_REGISTERS)
    }

    /// A register file with `n` slots (hypothetical hardware).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_registers(n: usize) -> Self {
        assert!(n > 0, "at least one debug register");
        DebugRegisterFile {
            slots: vec![None; n],
            bounds: None,
        }
    }

    /// Number of slots this file has.
    pub fn register_count(&self) -> usize {
        self.slots.len()
    }

    /// Claims a free register for `fd` watching `range`, returning its
    /// index, or `None` when all four are busy.
    pub fn claim(&mut self, fd: Fd, range: AddrRange) -> Option<usize> {
        let index = self.slots.iter().position(Option::is_none)?;
        self.slots[index] = Some((fd, range));
        self.bounds = Some(match self.bounds {
            None => range,
            Some(b) => hull(b, range),
        });
        Some(index)
    }

    /// Releases the register held by `fd`, returning whether one was held.
    pub fn release(&mut self, fd: Fd) -> bool {
        for slot in &mut self.slots {
            if slot.is_some_and(|(held, _)| held == fd) {
                *slot = None;
                self.bounds = self
                    .slots
                    .iter()
                    .flatten()
                    .map(|&(_, r)| r)
                    .reduce(hull);
                return true;
            }
        }
        false
    }

    /// Number of free registers.
    pub fn free_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Iterates over the descriptors currently holding registers.
    pub fn occupants(&self) -> impl Iterator<Item = Fd> + '_ {
        self.slots.iter().filter_map(|s| s.map(|(fd, _)| fd))
    }

    /// Iterates over the occupied slots with the ranges they watch.
    pub fn armed(&self) -> impl Iterator<Item = (Fd, AddrRange)> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// The bounding range over every occupied slot, or `None` when the
    /// file is empty. A conservative summary: an access that does not
    /// overlap it cannot hit any register.
    pub fn bounds(&self) -> Option<AddrRange> {
        self.bounds
    }

    /// Returns `true` if `fd` holds one of the registers.
    pub fn holds(&self, fd: Fd) -> bool {
        self.slots.iter().any(|s| s.is_some_and(|(held, _)| held == fd))
    }
}

/// The smallest range covering both inputs.
fn hull(a: AddrRange, b: AddrRange) -> AddrRange {
    let start = a.start().min(b.start());
    let end = a.end().max(b.end());
    AddrRange::new(start, end - start)
}

impl fmt::Display for DebugRegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DR[")?;
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match slot {
                Some((fd, _)) => write!(f, "{fd}")?,
                None => f.write_str("-")?,
            }
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtAddr;

    fn range(addr: u64) -> AddrRange {
        AddrRange::new(VirtAddr::new(addr), 8)
    }

    #[test]
    fn claims_up_to_four_registers() {
        let mut regs = DebugRegisterFile::new();
        for i in 0..NUM_WATCHPOINT_REGISTERS {
            let idx = regs
                .claim(Fd::from_raw(i as u64), range(0x1000 + i as u64 * 8))
                .expect("slot free");
            assert_eq!(idx, i);
        }
        assert_eq!(regs.free_count(), 0);
        assert!(
            regs.claim(Fd::from_raw(99), range(0x2000)).is_none(),
            "fifth claim must fail"
        );
    }

    #[test]
    fn release_frees_slot_for_reuse() {
        let mut regs = DebugRegisterFile::new();
        let a = Fd::from_raw(1);
        let b = Fd::from_raw(2);
        regs.claim(a, range(0x1000)).unwrap();
        regs.claim(b, range(0x2000)).unwrap();
        assert!(regs.release(a));
        assert!(!regs.release(a), "double release reports false");
        assert_eq!(regs.free_count(), 3);
        // The freed slot (index 0) is reused first.
        assert_eq!(regs.claim(Fd::from_raw(3), range(0x3000)), Some(0));
    }

    #[test]
    fn holds_and_occupants() {
        let mut regs = DebugRegisterFile::new();
        let fd = Fd::from_raw(7);
        assert!(!regs.holds(fd));
        regs.claim(fd, range(0xF00)).unwrap();
        assert!(regs.holds(fd));
        assert_eq!(regs.occupants().collect::<Vec<_>>(), vec![fd]);
        assert_eq!(regs.armed().collect::<Vec<_>>(), vec![(fd, range(0xF00))]);
    }

    #[test]
    fn bounds_track_armed_ranges() {
        let mut regs = DebugRegisterFile::new();
        assert_eq!(regs.bounds(), None);
        let lo = Fd::from_raw(1);
        let hi = Fd::from_raw(2);
        regs.claim(lo, range(0x1000)).unwrap();
        assert_eq!(regs.bounds(), Some(range(0x1000)));
        regs.claim(hi, range(0x8000)).unwrap();
        let b = regs.bounds().expect("two armed");
        assert_eq!(b.start(), VirtAddr::new(0x1000));
        assert_eq!(b.end(), VirtAddr::new(0x8008));
        // Releasing the high register tightens the hull again.
        assert!(regs.release(hi));
        assert_eq!(regs.bounds(), Some(range(0x1000)));
        assert!(regs.release(lo));
        assert_eq!(regs.bounds(), None);
    }

    #[test]
    fn display_shows_slots() {
        let mut regs = DebugRegisterFile::new();
        regs.claim(Fd::from_raw(5), range(0x1000)).unwrap();
        assert_eq!(regs.to_string(), "DR[fd5, -, -, -]");
    }
}
