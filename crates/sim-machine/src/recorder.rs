//! The flight recorder: a bounded ring buffer of recent machine events.
//!
//! Debugging a detection tool on a simulated machine needs the same
//! thing debugging one on a real machine needs: the last few thousand
//! events before the interesting moment. The recorder is off by default
//! (zero cost); when enabled it captures accesses, syscalls, signals and
//! thread events with their virtual timestamps.

use crate::addr::{AccessKind, VirtAddr};
use crate::clock::VirtInstant;
use crate::signal::Signal;
use crate::thread::ThreadId;
use csod_trace::BoundedLog;
use std::fmt;

/// One recorded machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEvent {
    /// An application memory access (bulk accesses record once with
    /// their count).
    Access {
        /// Accessing thread.
        thread: ThreadId,
        /// Effective address.
        addr: VirtAddr,
        /// Access length in bytes.
        len: u64,
        /// Load or store.
        kind: AccessKind,
        /// Number of accesses this entry stands for.
        count: u64,
    },
    /// A system call entered (by name).
    Syscall {
        /// Static name, e.g. `"perf_event_open"`.
        name: &'static str,
    },
    /// A signal was queued for delivery.
    SignalRaised {
        /// The signal.
        signal: Signal,
        /// The destination thread.
        thread: ThreadId,
    },
    /// A thread was spawned.
    ThreadSpawn {
        /// The new thread.
        thread: ThreadId,
    },
    /// A thread exited.
    ThreadExit {
        /// The exiting thread.
        thread: ThreadId,
    },
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogEvent::Access {
                thread,
                addr,
                len,
                kind,
                count,
            } => {
                write!(f, "{thread} {kind} {addr}+{len}")?;
                if *count > 1 {
                    write!(f, " x{count}")?;
                }
                Ok(())
            }
            LogEvent::Syscall { name } => write!(f, "syscall {name}"),
            LogEvent::SignalRaised { signal, thread } => {
                write!(f, "{signal} -> {thread}")
            }
            LogEvent::ThreadSpawn { thread } => write!(f, "spawn {thread}"),
            LogEvent::ThreadExit { thread } => write!(f, "exit {thread}"),
        }
    }
}

/// A bounded ring buffer of timestamped [`LogEvent`]s, backed by the
/// shared [`BoundedLog`] from `csod-trace`.
#[derive(Debug)]
pub struct FlightRecorder {
    log: BoundedLog<(VirtInstant, LogEvent)>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        FlightRecorder {
            log: BoundedLog::new(capacity),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&mut self, at: VirtInstant, event: LogEvent) {
        self.log.push((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(VirtInstant, LogEvent)> {
        self.log.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.log.evicted()
    }

    /// Renders the retained events one per line — the post-mortem dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped() > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) dropped ...\n",
                self.dropped()
            ));
        }
        for (at, event) in self.log.iter() {
            out.push_str(&format!("{at}  {event}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(n: u64) -> LogEvent {
        LogEvent::Access {
            thread: ThreadId::MAIN,
            addr: VirtAddr::new(0x1000 + n),
            len: 8,
            kind: AccessKind::Read,
            count: 1,
        }
    }

    #[test]
    fn keeps_only_the_last_capacity_events() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(VirtInstant::BOOT, access(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.1, access(2));
    }

    #[test]
    fn dump_mentions_drops_and_events() {
        let mut r = FlightRecorder::new(2);
        for i in 0..3 {
            r.record(VirtInstant::BOOT, access(i));
        }
        let dump = r.dump();
        assert!(dump.contains("1 earlier event(s) dropped"));
        assert!(dump.contains("read"));
    }

    #[test]
    fn event_display_variants() {
        assert_eq!(
            LogEvent::Syscall { name: "ioctl" }.to_string(),
            "syscall ioctl"
        );
        assert!(LogEvent::SignalRaised {
            signal: Signal::Trap,
            thread: ThreadId::MAIN
        }
        .to_string()
        .contains("SIGTRAP"));
        let bulk = LogEvent::Access {
            thread: ThreadId::MAIN,
            addr: VirtAddr::new(0x10),
            len: 8,
            kind: AccessKind::Write,
            count: 64,
        };
        assert!(bulk.to_string().contains("x64"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        FlightRecorder::new(0);
    }
}
