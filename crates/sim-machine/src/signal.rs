//! Signals and trap information.
//!
//! When a simulated thread touches a watched address, the machine raises a
//! SIGTRAP-style signal carrying the triggering file descriptor — the same
//! information the Linux kernel passes in `siginfo_t` when a
//! `perf_event_open` breakpoint fires with `F_SETSIG`. CSOD's signal
//! handler uses the descriptor to identify *which* watchpoint fired
//! (paper Section III-D1).
//!
//! Delivery is via a machine-level queue drained by the embedding runtime
//! after each operation, which mirrors the asynchronous (`O_ASYNC`)
//! notification configured in the paper's Figure 3.

use crate::addr::{AccessKind, VirtAddr};
use crate::perf::Fd;
use crate::thread::ThreadId;
use std::fmt;

/// The signals the simulated machine can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Hardware watchpoint fired (`SIGTRAP`).
    Trap,
    /// Access to unmapped memory (`SIGSEGV`).
    Segv,
    /// Abnormal termination requested by the program (`SIGABRT`).
    Abort,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Trap => f.write_str("SIGTRAP"),
            Signal::Segv => f.write_str("SIGSEGV"),
            Signal::Abort => f.write_str("SIGABRT"),
        }
    }
}

/// Opaque identifier of the program statement performing an access.
///
/// On a real machine the SIGTRAP handler reconstructs the faulting
/// statement by walking the interrupted thread's stack with `backtrace`.
/// The simulator instead lets the workload declare "the thread is now
/// executing statement X" via
/// [`Machine::set_current_site`](crate::Machine::set_current_site); the
/// token is carried through the trap so the tool can resolve it back to a
/// full calling context, exactly as the real handler would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SiteToken(pub u64);

impl SiteToken {
    /// A token meaning "site unknown" (no statement declared).
    pub const UNKNOWN: SiteToken = SiteToken(u64::MAX);
}

impl fmt::Display for SiteToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SiteToken::UNKNOWN {
            f.write_str("site?")
        } else {
            write!(f, "site{}", self.0)
        }
    }
}

/// Everything a signal handler learns about one delivered signal —
/// the simulator's `siginfo_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalInfo {
    /// Which signal was raised.
    pub signal: Signal,
    /// The thread the signal was delivered to. For watchpoint traps this
    /// is the thread that performed the access (`F_SETOWN` per thread).
    pub thread: ThreadId,
    /// For traps: the perf-event descriptor that fired.
    pub fd: Option<Fd>,
    /// The faulting/watched address.
    pub fault_addr: VirtAddr,
    /// Whether the access was a read or a write.
    pub access: AccessKind,
    /// The statement the thread was executing (see [`SiteToken`]).
    pub site: SiteToken,
}

impl fmt::Display for SignalInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} at {} ({} by {})",
            self.signal, self.thread, self.fault_addr, self.access, self.site
        )?;
        if let Some(fd) = self.fd {
            write!(f, " [{fd}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_fields() {
        let info = SignalInfo {
            signal: Signal::Trap,
            thread: ThreadId::MAIN,
            fd: Some(Fd::from_raw(9)),
            fault_addr: VirtAddr::new(0xf00),
            access: AccessKind::Write,
            site: SiteToken(3),
        };
        let text = info.to_string();
        assert!(text.contains("SIGTRAP"));
        assert!(text.contains("0xf00"));
        assert!(text.contains("site3"));
        assert!(text.contains("fd9"));
    }

    #[test]
    fn unknown_site_token() {
        assert_eq!(SiteToken::UNKNOWN.to_string(), "site?");
        assert_ne!(SiteToken(0), SiteToken::UNKNOWN);
    }

    #[test]
    fn signal_names() {
        assert_eq!(Signal::Trap.to_string(), "SIGTRAP");
        assert_eq!(Signal::Segv.to_string(), "SIGSEGV");
        assert_eq!(Signal::Abort.to_string(), "SIGABRT");
    }
}
