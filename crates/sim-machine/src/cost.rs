//! Virtual-time cost accounting.
//!
//! The paper evaluates CSOD by its *normalized overhead*: wall-clock time
//! with the tool divided by wall-clock time of the unmodified program
//! (Figure 7). On the simulated machine, wall-clock time is virtual and is
//! accumulated in three buckets:
//!
//! * **application** time — the program's own CPU work,
//! * **tool** time — extra CPU work added by a detection tool (CSOD or the
//!   ASan model): context lookups, shadow checks, syscalls for watchpoint
//!   installation, canary bookkeeping, …
//! * **I/O** time — waits that no CPU-side tool can change (network and
//!   disk time in Aget, Pfscan, Apache, …).
//!
//! Normalized overhead is then `(app + tool + io) / (app + io)` — which is
//! exactly why the paper observes that ASan "imposes little overhead for
//! IO-bound applications": a large `io` term dilutes the tool term.
//!
//! The [`CostModel`] holds the per-operation prices; every price is a knob
//! so that the ablation harnesses can explore the sensitivity of Figure 7
//! to the cost assumptions.

use crate::clock::VirtDuration;
use std::fmt;

/// The bucket a charge is accounted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostDomain {
    /// The program's own work.
    App,
    /// Work added by a detection tool.
    Tool,
    /// I/O waits; unaffected by any tool.
    Io,
}

/// Per-operation virtual-time prices, in nanoseconds.
///
/// Defaults are calibrated to a ~3 GHz x86-64 server (the paper's Xeon
/// E5-2640 testbed): a cache-hitting memory access costs about a
/// nanosecond, a syscall several hundred.
///
/// # Examples
///
/// ```
/// use sim_machine::CostModel;
///
/// let costs = CostModel::default();
/// // Installing a watchpoint on one thread takes five syscalls
/// // (perf_event_open + three fcntl + ioctl), each far more expensive
/// // than the allocation fast path itself.
/// assert!(costs.syscall > 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One user-space memory access performed by the application.
    pub mem_access: u64,
    /// Additional application work per workload "operation" that is not a
    /// memory access (arithmetic, control flow).
    pub app_compute: u64,
    /// A generic system call (ioctl, fcntl, close).
    pub syscall: u64,
    /// `perf_event_open` — more expensive than a plain syscall because the
    /// kernel allocates the event and claims a debug register.
    pub perf_event_open: u64,
    /// Baseline cost of `malloc` in the unmodified allocator.
    pub malloc_base: u64,
    /// Baseline cost of `free` in the unmodified allocator.
    pub free_base: u64,
    /// CSOD: hash-table lookup of the (call-site, stack-offset) key.
    pub ctx_lookup: u64,
    /// CSOD: one per-thread random number.
    pub rng_draw: u64,
    /// CSOD: fetching the first-level return address and stack offset.
    pub return_address: u64,
    /// CSOD: a full `backtrace` walk, paid only the first time a context
    /// key is seen.
    pub full_backtrace: u64,
    /// CSOD evidence mode: writing the header + canary at allocation.
    pub canary_write: u64,
    /// CSOD evidence mode: verifying the canary at deallocation.
    pub canary_check: u64,
    /// ASan model: one shadow-memory check (amortized; includes the
    /// inserted instrumentation instructions).
    pub shadow_check: u64,
    /// ASan model: poisoning the redzones of a new allocation.
    pub redzone_poison: u64,
    /// ASan model: quarantining and poisoning a freed object.
    pub quarantine: u64,
    /// `ptrace` attach: creating/stopping the tracee and the scheduler
    /// round-trips of the helper process (Section II-A: "a separate
    /// process should be created for ptrace to install watchpoints,
    /// which incurs significant performance overhead due to
    /// communication between processes").
    pub ptrace_attach: u64,
    /// One `PTRACE_POKEUSER` poke of a debug register, including the
    /// helper-process round trip.
    pub ptrace_poke: u64,
    /// `ptrace` detach and tracee resume.
    pub ptrace_detach: u64,
    /// The hypothetical combined watch-all-threads syscall of Section
    /// V-B ("we could further reduce the performance overhead by
    /// combining these system calls into one custom system call"):
    /// fixed entry cost...
    pub combined_watch: u64,
    /// ...plus this much per additional thread inside the kernel.
    pub combined_watch_per_thread: u64,
    /// Fixed entry cost of a batched watchpoint teardown
    /// ([`crate::Machine::sys_teardown_batch`]): one kernel entry that
    /// runs the Figure-4 `ioctl(DISABLE)` + `close` sequence for a whole
    /// batch of descriptors, amortizing the entry over the batch...
    pub teardown_batch: u64,
    /// ...plus this much per descriptor inside the kernel — much cheaper
    /// than the two full syscalls the synchronous route pays per fd.
    pub teardown_batch_per_fd: u64,
    /// Processing one PMU (PEBS-style) memory-access sample — the cost
    /// driver of the Sampler baseline (Silvestro et al., MICRO'18),
    /// which the paper discusses as concurrent work.
    pub pmu_sample: u64,
    /// One-time start-up cost of the CSOD runtime (hash table, signal
    /// handler and generator setup) — visible only in short runs like
    /// Ferret (Section V-B).
    pub csod_init: u64,
    /// One-time start-up cost of the ASan runtime (shadow reservation).
    pub asan_init: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_access: 1,
            app_compute: 2,
            syscall: 250,
            perf_event_open: 900,
            malloc_base: 45,
            free_base: 35,
            ctx_lookup: 18,
            rng_draw: 4,
            return_address: 2,
            full_backtrace: 2_500,
            canary_write: 6,
            canary_check: 6,
            shadow_check: 1,
            redzone_poison: 25,
            quarantine: 35,
            ptrace_attach: 15_000,
            ptrace_poke: 3_000,
            ptrace_detach: 5_000,
            combined_watch: 1_000,
            combined_watch_per_thread: 150,
            teardown_batch: 400,
            teardown_batch_per_fd: 120,
            pmu_sample: 350,
            csod_init: 500_000,
            asan_init: 1_000_000,
        }
    }
}

impl CostModel {
    /// A zero-cost model; useful in unit tests that assert on behaviour
    /// rather than timing.
    pub fn free_of_charge() -> Self {
        CostModel {
            mem_access: 0,
            app_compute: 0,
            syscall: 0,
            perf_event_open: 0,
            malloc_base: 0,
            free_base: 0,
            ctx_lookup: 0,
            rng_draw: 0,
            return_address: 0,
            full_backtrace: 0,
            canary_write: 0,
            canary_check: 0,
            shadow_check: 0,
            redzone_poison: 0,
            quarantine: 0,
            ptrace_attach: 0,
            ptrace_poke: 0,
            ptrace_detach: 0,
            combined_watch: 0,
            combined_watch_per_thread: 0,
            teardown_batch: 0,
            teardown_batch_per_fd: 0,
            pmu_sample: 0,
            csod_init: 0,
            asan_init: 0,
        }
    }
}

/// Accumulated virtual time, split by [`CostDomain`], plus event counts
/// that the evaluation tables report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleCounter {
    app_ns: u64,
    tool_ns: u64,
    io_ns: u64,
    syscalls: u64,
    accesses: u64,
}

impl CycleCounter {
    /// A counter with nothing charged yet.
    pub fn new() -> Self {
        CycleCounter::default()
    }

    /// Charges `ns` nanoseconds to `domain` and returns the amount as a
    /// duration so the machine clock can advance by the same span.
    #[inline]
    pub fn charge(&mut self, domain: CostDomain, ns: u64) -> VirtDuration {
        match domain {
            CostDomain::App => self.app_ns += ns,
            CostDomain::Tool => self.tool_ns += ns,
            CostDomain::Io => self.io_ns += ns,
        }
        VirtDuration::from_nanos(ns)
    }

    /// Records one system call (the cost itself is charged separately).
    #[inline]
    pub fn count_syscall(&mut self) {
        self.syscalls += 1;
    }

    /// Records one application memory access.
    #[inline]
    pub fn count_access(&mut self) {
        self.accesses += 1;
    }

    /// Records `n` application memory accesses at once (bulk modelling).
    pub fn add_accesses(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Application CPU time charged so far.
    pub fn app_ns(&self) -> u64 {
        self.app_ns
    }

    /// Tool CPU time charged so far.
    pub fn tool_ns(&self) -> u64 {
        self.tool_ns
    }

    /// I/O wait time charged so far.
    pub fn io_ns(&self) -> u64 {
        self.io_ns
    }

    /// Number of system calls issued.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Number of application memory accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total virtual run time: application + tool + I/O.
    pub fn total_ns(&self) -> u64 {
        self.app_ns + self.tool_ns + self.io_ns
    }

    /// Virtual run time of the same execution without the tool.
    pub fn baseline_ns(&self) -> u64 {
        self.app_ns + self.io_ns
    }

    /// Normalized overhead as in Figure 7: run time with the tool divided
    /// by run time without it. `1.0` means no overhead.
    ///
    /// Returns `1.0` when nothing has been charged, so that an empty run
    /// reads as "no overhead" rather than dividing by zero.
    pub fn normalized_overhead(&self) -> f64 {
        let baseline = self.baseline_ns();
        if baseline == 0 {
            return 1.0;
        }
        self.total_ns() as f64 / baseline as f64
    }
}

impl fmt::Display for CycleCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "app {} + tool {} + io {} = {} ({:.3}x)",
            VirtDuration::from_nanos(self.app_ns),
            VirtDuration::from_nanos(self.tool_ns),
            VirtDuration::from_nanos(self.io_ns),
            VirtDuration::from_nanos(self.total_ns()),
            self.normalized_overhead()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_domain() {
        let mut c = CycleCounter::new();
        c.charge(CostDomain::App, 100);
        c.charge(CostDomain::Tool, 10);
        c.charge(CostDomain::Io, 900);
        c.charge(CostDomain::App, 50);
        assert_eq!(c.app_ns(), 150);
        assert_eq!(c.tool_ns(), 10);
        assert_eq!(c.io_ns(), 900);
        assert_eq!(c.total_ns(), 1060);
        assert_eq!(c.baseline_ns(), 1050);
    }

    #[test]
    fn overhead_of_empty_run_is_one() {
        assert_eq!(CycleCounter::new().normalized_overhead(), 1.0);
    }

    #[test]
    fn overhead_ratio() {
        let mut c = CycleCounter::new();
        c.charge(CostDomain::App, 1_000);
        c.charge(CostDomain::Tool, 67);
        let got = c.normalized_overhead();
        assert!((got - 1.067).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn io_dilutes_tool_overhead() {
        // The same absolute tool cost yields lower normalized overhead
        // when the run is dominated by I/O — the Aget/Pfscan effect.
        let mut cpu_bound = CycleCounter::new();
        cpu_bound.charge(CostDomain::App, 1_000);
        cpu_bound.charge(CostDomain::Tool, 500);

        let mut io_bound = CycleCounter::new();
        io_bound.charge(CostDomain::App, 1_000);
        io_bound.charge(CostDomain::Tool, 500);
        io_bound.charge(CostDomain::Io, 100_000);

        assert!(io_bound.normalized_overhead() < cpu_bound.normalized_overhead());
        assert!(io_bound.normalized_overhead() < 1.01);
    }

    #[test]
    fn event_counts() {
        let mut c = CycleCounter::new();
        c.count_syscall();
        c.count_syscall();
        c.count_access();
        assert_eq!(c.syscalls(), 2);
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn charge_returns_matching_duration() {
        let mut c = CycleCounter::new();
        let d = c.charge(CostDomain::App, 42);
        assert_eq!(d, VirtDuration::from_nanos(42));
    }

    #[test]
    fn default_model_is_plausible() {
        let m = CostModel::default();
        assert!(m.perf_event_open > m.syscall);
        assert!(m.syscall > m.malloc_base);
        assert!(m.full_backtrace > m.ctx_lookup);
        let zero = CostModel::free_of_charge();
        assert_eq!(zero.syscall, 0);
    }
}
