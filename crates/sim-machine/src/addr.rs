//! Virtual addresses and access descriptors.
//!
//! The simulated machine uses a 64-bit virtual address space. [`VirtAddr`] is
//! a transparent newtype over `u64` so that addresses cannot be accidentally
//! confused with sizes, counters, or file descriptors elsewhere in the
//! system.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A virtual address in the simulated machine's address space.
///
/// # Examples
///
/// ```
/// use sim_machine::VirtAddr;
///
/// let base = VirtAddr::new(0x1000);
/// let field = base + 8;
/// assert_eq!(field.as_u64(), 0x1008);
/// assert_eq!(field - base, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The null address. Dereferencing it faults, as on a real machine.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from its raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value of this address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address advanced by `offset` bytes, checking for
    /// wrap-around.
    ///
    /// Returns `None` when the addition would overflow the 64-bit address
    /// space.
    pub fn checked_add(self, offset: u64) -> Option<Self> {
        self.0.checked_add(offset).map(VirtAddr)
    }

    /// Aligns the address upwards to `align`, which must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_up(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        VirtAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align`, which must be
    /// a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(addr: VirtAddr) -> u64 {
        addr.0
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;

    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Sub<u64> for VirtAddr {
    type Output = VirtAddr;

    fn sub(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 - rhs)
    }
}

/// Whether a memory access reads or writes.
///
/// Hardware watchpoints on the simulated machine are installed in
/// read/write mode (the `HW_BREAKPOINT_RW` configuration from the paper's
/// Figure 3), so both kinds fire a trap; the kind is still recorded so
/// that bug reports can distinguish buffer over-reads from over-writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl AccessKind {
    /// Human-readable verb used by bug reports ("over-read"/"over-write").
    pub fn overflow_noun(self) -> &'static str {
        match self {
            AccessKind::Read => "over-read",
            AccessKind::Write => "over-write",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A half-open byte range `[start, end)` in the virtual address space.
///
/// # Examples
///
/// ```
/// use sim_machine::{AddrRange, VirtAddr};
///
/// let object = AddrRange::new(VirtAddr::new(0x100), 16);
/// assert!(object.contains(VirtAddr::new(0x10f)));
/// assert!(!object.contains(VirtAddr::new(0x110)));
/// let canary = AddrRange::new(VirtAddr::new(0x110), 8);
/// assert!(!object.overlaps(&canary));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    start: VirtAddr,
    len: u64,
}

impl AddrRange {
    /// Creates the range `[start, start + len)`.
    pub const fn new(start: VirtAddr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// The first address of the range.
    pub const fn start(&self) -> VirtAddr {
        self.start
    }

    /// One past the last address of the range.
    pub const fn end(&self) -> VirtAddr {
        VirtAddr::new(self.start.as_u64() + self.len)
    }

    /// The length of the range in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the range covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `addr` lies within the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.as_u64(), self.end().as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        let a = VirtAddr::new(0x1000);
        assert_eq!((a + 0x10).as_u64(), 0x1010);
        assert_eq!(a + 0x10 - a, 0x10);
        assert_eq!((a - 0x800).as_u64(), 0x800);
    }

    #[test]
    fn addr_align_up() {
        assert_eq!(VirtAddr::new(0x1001).align_up(16).as_u64(), 0x1010);
        assert_eq!(VirtAddr::new(0x1000).align_up(16).as_u64(), 0x1000);
        assert!(VirtAddr::new(0x1000).is_aligned(4096));
        assert!(!VirtAddr::new(0x1008).is_aligned(16));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_align_up_rejects_non_power_of_two() {
        let _ = VirtAddr::new(1).align_up(24);
    }

    #[test]
    fn addr_checked_add_detects_overflow() {
        assert!(VirtAddr::new(u64::MAX).checked_add(1).is_none());
        assert_eq!(
            VirtAddr::new(10).checked_add(5),
            Some(VirtAddr::new(15))
        );
    }

    #[test]
    fn null_address() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(1).is_null());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(VirtAddr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", VirtAddr::new(0xbeef)), "beef");
        assert_eq!(format!("{:X}", VirtAddr::new(0xbeef)), "BEEF");
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = AddrRange::new(VirtAddr::new(100), 10);
        assert!(r.contains(VirtAddr::new(100)));
        assert!(r.contains(VirtAddr::new(109)));
        assert!(!r.contains(VirtAddr::new(110)));
        assert!(!r.contains(VirtAddr::new(99)));
    }

    #[test]
    fn range_overlap_cases() {
        let r = AddrRange::new(VirtAddr::new(100), 10);
        // Adjacent ranges do not overlap.
        assert!(!r.overlaps(&AddrRange::new(VirtAddr::new(110), 8)));
        assert!(!r.overlaps(&AddrRange::new(VirtAddr::new(92), 8)));
        // One-byte overlap at either edge.
        assert!(r.overlaps(&AddrRange::new(VirtAddr::new(109), 8)));
        assert!(r.overlaps(&AddrRange::new(VirtAddr::new(93), 8)));
        // Containment.
        assert!(r.overlaps(&AddrRange::new(VirtAddr::new(102), 2)));
        // Empty ranges never overlap anything.
        assert!(!r.overlaps(&AddrRange::new(VirtAddr::new(105), 0)));
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.overflow_noun(), "over-write");
    }
}
