//! The machine's virtual clock.
//!
//! All time on the simulated machine is virtual: it advances only when the
//! machine executes work (CPU cycles) or when a workload explicitly models
//! an I/O wait. This makes every time-dependent mechanism in CSOD — the
//! 10-second burst-throttling window, the age-based decay of installed
//! watchpoints, and the reviving period — fully deterministic and
//! unit-testable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use sim_machine::VirtDuration;
///
/// let d = VirtDuration::from_secs(10);
/// assert_eq!(d.as_nanos(), 10_000_000_000);
/// assert_eq!(d, VirtDuration::from_millis(10_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtDuration(u64);

impl VirtDuration {
    /// A zero-length duration.
    pub const ZERO: VirtDuration = VirtDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: VirtDuration) -> VirtDuration {
        VirtDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for VirtDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for VirtDuration {
    type Output = VirtDuration;

    fn add(self, rhs: VirtDuration) -> VirtDuration {
        VirtDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtDuration {
    fn add_assign(&mut self, rhs: VirtDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtDuration {
    type Output = VirtDuration;

    fn sub(self, rhs: VirtDuration) -> VirtDuration {
        VirtDuration(self.0 - rhs.0)
    }
}

/// An instant on the machine's virtual timeline, in nanoseconds since
/// machine boot.
///
/// # Examples
///
/// ```
/// use sim_machine::{Clock, VirtDuration};
///
/// let mut clock = Clock::new();
/// let boot = clock.now();
/// clock.advance(VirtDuration::from_secs(3));
/// assert_eq!(clock.now() - boot, VirtDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtInstant(u64);

impl VirtInstant {
    /// The instant of machine boot.
    pub const BOOT: VirtInstant = VirtInstant(0);

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time is monotonic
    /// so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: VirtInstant) -> VirtDuration {
        assert!(
            earlier.0 <= self.0,
            "virtual time moved backwards: {} -> {}",
            earlier.0,
            self.0
        );
        VirtDuration(self.0 - earlier.0)
    }

    /// Like [`VirtInstant::duration_since`] but saturating to zero instead
    /// of panicking.
    pub fn saturating_duration_since(self, earlier: VirtInstant) -> VirtDuration {
        VirtDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<VirtDuration> for VirtInstant {
    type Output = VirtInstant;

    fn add(self, rhs: VirtDuration) -> VirtInstant {
        VirtInstant(self.0 + rhs.as_nanos())
    }
}

impl Sub<VirtInstant> for VirtInstant {
    type Output = VirtDuration;

    fn sub(self, rhs: VirtInstant) -> VirtDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for VirtInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", VirtDuration(self.0))
    }
}

/// The machine's monotonic virtual clock.
///
/// The clock only moves when [`Clock::advance`] is called; the
/// [`Machine`](crate::Machine) advances it automatically as cycles are
/// charged to the [cycle counter](crate::CycleCounter).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: VirtInstant,
}

impl Clock {
    /// Creates a clock at machine boot (t = 0).
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtInstant {
        self.now
    }

    /// Advances the clock by `d`.
    #[inline]
    pub fn advance(&mut self, d: VirtDuration) {
        self.now = self.now + d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(VirtDuration::from_secs(1), VirtDuration::from_millis(1000));
        assert_eq!(
            VirtDuration::from_millis(1),
            VirtDuration::from_micros(1000)
        );
        assert_eq!(VirtDuration::from_micros(1), VirtDuration::from_nanos(1000));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        assert_eq!(c.now(), VirtInstant::BOOT);
        c.advance(VirtDuration::from_nanos(5));
        c.advance(VirtDuration::from_nanos(7));
        assert_eq!(c.now().as_nanos(), 12);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = VirtInstant::BOOT;
        let t1 = t0 + VirtDuration::from_secs(2);
        assert_eq!(t1 - t0, VirtDuration::from_secs(2));
        assert_eq!(
            t0.saturating_duration_since(t1),
            VirtDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn duration_since_panics_on_backwards_time() {
        let t0 = VirtInstant::BOOT;
        let t1 = t0 + VirtDuration::from_nanos(1);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn duration_display_scales_units() {
        assert_eq!(VirtDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(VirtDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(VirtDuration::from_millis(4).to_string(), "4.000ms");
        assert_eq!(VirtDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn saturating_sub() {
        let a = VirtDuration::from_nanos(5);
        let b = VirtDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), VirtDuration::ZERO);
        assert_eq!(b.saturating_sub(a), VirtDuration::from_nanos(4));
    }
}
