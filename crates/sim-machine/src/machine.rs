//! The machine facade tying memory, threads, debug hardware, the perf
//! subsystem, signals, and cost accounting together.

use crate::addr::{AccessKind, AddrRange, VirtAddr};
use crate::clock::{Clock, VirtDuration, VirtInstant};
use crate::cost::{CostDomain, CostModel, CycleCounter};
use crate::faults::{FaultPlan, FaultStats};
use crate::memory::{AddressSpace, MemoryError};
use crate::perf::{Fd, FcntlCmd, IoctlCmd, PerfError, PerfEventAttr, PerfSubsystem};
use crate::recorder::{FlightRecorder, LogEvent};
use crate::signal::{Signal, SignalInfo, SiteToken};
use crate::thread::{ThreadError, ThreadId, ThreadRegistry};
use std::collections::{HashMap, VecDeque};

/// A deterministic simulated machine.
///
/// The machine is the single mutable root of the simulation: workloads
/// perform *application* accesses through [`Machine::app_read`] /
/// [`Machine::app_write`] (which are charged to the application time
/// bucket and checked against hardware watchpoints), while tools use the
/// `sys_*` syscalls (charged to the tool bucket) and the `raw_*` memory
/// backdoor (free, invisible to watchpoints — used for simulator
/// bookkeeping such as reading heap metadata).
///
/// # Examples
///
/// Install a watchpoint the way CSOD does and observe the trap:
///
/// ```
/// use sim_machine::{
///     FcntlCmd, IoctlCmd, Machine, PerfEventAttr, Signal, ThreadId, VirtAddr,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::new();
/// let heap = VirtAddr::new(0x10_0000);
/// m.map_region(heap, 4096, "heap")?;
///
/// // Watch the 8-byte word at heap+64 (an object boundary).
/// let fd = m.sys_perf_event_open(PerfEventAttr::rw_word(heap + 64), ThreadId::MAIN)?;
/// m.sys_fcntl(fd, FcntlCmd::SetFlAsync)?;
/// m.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap))?;
/// m.sys_fcntl(fd, FcntlCmd::SetOwn(ThreadId::MAIN))?;
/// m.sys_ioctl(fd, IoctlCmd::Enable)?;
///
/// // The application overflows: writes one word past its 64-byte object.
/// m.app_write(ThreadId::MAIN, heap + 64, 8)?;
/// let signals = m.take_signals();
/// assert_eq!(signals.len(), 1);
/// assert_eq!(signals[0].signal, Signal::Trap);
/// assert_eq!(signals[0].fd, Some(fd));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    mem: AddressSpace,
    clock: Clock,
    cost: CostModel,
    counter: CycleCounter,
    threads: ThreadRegistry,
    perf: PerfSubsystem,
    pending: VecDeque<SignalInfo>,
    current_site: HashMap<ThreadId, SiteToken>,
    traps_fired: u64,
    /// PMU access-sampling: sample every Nth application access.
    pmu_period: Option<u64>,
    pmu_countdown: u64,
    pmu_samples: VecDeque<PmuSample>,
    recorder: Option<FlightRecorder>,
    faults: Option<FaultPlan>,
    /// Signals whose delivery a fault plan postponed, with their due time.
    /// The delay is constant per plan, so pushes arrive in due order.
    delayed: VecDeque<(VirtInstant, SignalInfo)>,
}

/// One PMU (PEBS-style) memory-access sample, as consumed by the
/// Sampler baseline: the sampled address plus the execution context the
/// hardware captures with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuSample {
    /// Thread whose access was sampled.
    pub thread: ThreadId,
    /// Sampled effective address.
    pub addr: VirtAddr,
    /// Access length in bytes.
    pub len: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// The statement performing the access.
    pub site: SiteToken,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with the default [`CostModel`].
    pub fn new() -> Self {
        Machine::with_costs(CostModel::default())
    }

    /// Creates a machine with `n` hardware debug registers per thread —
    /// hypothetical hardware for the register-count ablation; real
    /// x86-64 has four.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_debug_registers(n: usize) -> Self {
        let mut machine = Machine::new();
        machine.perf = PerfSubsystem::with_registers(n);
        machine
    }

    /// Debug registers available per thread on this machine.
    pub fn debug_registers(&self) -> usize {
        self.perf.registers_per_thread()
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_costs(cost: CostModel) -> Self {
        Machine {
            mem: AddressSpace::new(),
            clock: Clock::new(),
            cost,
            counter: CycleCounter::new(),
            threads: ThreadRegistry::new(),
            perf: PerfSubsystem::new(),
            pending: VecDeque::new(),
            current_site: HashMap::new(),
            traps_fired: 0,
            pmu_period: None,
            pmu_countdown: 0,
            pmu_samples: VecDeque::new(),
            recorder: None,
            faults: None,
            delayed: VecDeque::new(),
        }
    }

    // ----- fault injection ---------------------------------------------------

    /// Installs a fault-injection plan; subsequent perf syscalls, signal
    /// deliveries and heap allocations consult it. Replaces any previous
    /// plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes the fault plan, returning it (with its counters) for
    /// inspection.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Counters of the faults injected so far, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultPlan::stats)
    }

    /// Whether the installed fault plan (if any) marks the debug
    /// registers as stolen right now. Tools use this as their cheap
    /// backend-health probe.
    pub fn registers_busy(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.registers_busy_at(self.clock.now()))
    }

    /// Fault hook for allocators: whether the next heap allocation must
    /// fail. Draws from (and counts against) the installed plan.
    pub fn fault_alloc_fails(&mut self) -> bool {
        self.faults.as_mut().is_some_and(FaultPlan::fail_alloc)
    }

    // ----- time & accounting -------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> VirtInstant {
        self.clock.now()
    }

    /// The cost model in effect.
    #[inline]
    pub fn costs(&self) -> &CostModel {
        &self.cost
    }

    /// The accumulated cycle counter.
    pub fn counter(&self) -> &CycleCounter {
        &self.counter
    }

    /// Charges `ns` nanoseconds of CPU time to `domain` and advances the
    /// clock by the same amount.
    #[inline]
    pub fn charge(&mut self, domain: CostDomain, ns: u64) {
        let d = self.counter.charge(domain, ns);
        self.clock.advance(d);
    }

    /// Models an I/O wait of duration `d` (network, disk): time passes
    /// but no CPU-side tool cost can change it.
    pub fn wait_io(&mut self, d: VirtDuration) {
        self.counter.charge(CostDomain::Io, d.as_nanos());
        self.clock.advance(d);
    }

    /// Advances the clock without charging any bucket. Used by tests that
    /// need to move time (e.g. past CSOD's 10-second windows).
    pub fn skip_time(&mut self, d: VirtDuration) {
        self.clock.advance(d);
    }

    // ----- memory mapping ----------------------------------------------------

    /// Maps `len` zeroed bytes at `base`. See [`AddressSpace::map_region`].
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError`] for invalid or overlapping mappings.
    pub fn map_region(&mut self, base: VirtAddr, len: u64, name: &str) -> Result<(), MemoryError> {
        self.mem.map_region(base, len, name)
    }

    /// Unmaps the region based at `base`.
    pub fn unmap_region(&mut self, base: VirtAddr) -> bool {
        self.mem.unmap_region(base)
    }

    /// Whether `[addr, addr+len)` is fully mapped.
    #[inline]
    pub fn is_mapped(&self, addr: VirtAddr, len: u64) -> bool {
        self.mem.is_mapped(addr, len)
    }

    /// Total mapped bytes (virtual size).
    pub fn mapped_bytes(&self) -> u64 {
        self.mem.mapped_bytes()
    }

    /// Total bytes backed by touched pages (the resident-set analogue;
    /// regions are demand-paged in 64 KiB chunks).
    pub fn resident_bytes(&self) -> u64 {
        self.mem.resident_bytes()
    }

    // ----- raw memory backdoor (no cost, no watchpoints) ----------------------

    /// Reads bytes without charging time or consulting watchpoints.
    ///
    /// This is the simulator's bookkeeping path (allocator metadata,
    /// canary verification after the watchpoint has been removed, …).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the range is not mapped.
    #[inline]
    pub fn raw_read_bytes(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemoryError> {
        self.mem.read_bytes(addr, buf)
    }

    /// Writes bytes without charging time or consulting watchpoints.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the range is not mapped.
    #[inline]
    pub fn raw_write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<(), MemoryError> {
        self.mem.write_bytes(addr, data)
    }

    /// Loads a little-endian `u64` via the backdoor.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the word is not mapped.
    #[inline]
    pub fn raw_load_u64(&self, addr: VirtAddr) -> Result<u64, MemoryError> {
        self.mem.load_u64(addr)
    }

    /// Stores a little-endian `u64` via the backdoor.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the word is not mapped.
    #[inline]
    pub fn raw_store_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), MemoryError> {
        self.mem.store_u64(addr, value)
    }

    /// Fills a range via the backdoor.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the range is not mapped.
    pub fn raw_fill(&mut self, addr: VirtAddr, len: u64, byte: u8) -> Result<(), MemoryError> {
        self.mem.fill(addr, len, byte)
    }

    // ----- application accesses ----------------------------------------------

    /// Performs an application load of `len` bytes at `addr` by `tid`.
    ///
    /// Charges application time, checks hardware watchpoints, and — on a
    /// fault — enqueues a SIGSEGV-style signal.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the access faults (the
    /// corresponding signal is queued as well).
    pub fn app_read(&mut self, tid: ThreadId, addr: VirtAddr, len: u64) -> Result<(), MemoryError> {
        self.app_access(tid, addr, len, AccessKind::Read)
    }

    /// Performs an application store of `len` bytes at `addr` by `tid`.
    ///
    /// The stored *value* is not modelled, but the bytes are overwritten
    /// with a recognizable garbage pattern so canary evidence can observe
    /// over-writes; tools that need exact contents use the `raw_*` path.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the access faults.
    pub fn app_write(&mut self, tid: ThreadId, addr: VirtAddr, len: u64) -> Result<(), MemoryError> {
        self.app_access(tid, addr, len, AccessKind::Write)
    }

    /// Performs an application access of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the access faults.
    pub fn app_access(
        &mut self,
        tid: ThreadId,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
    ) -> Result<(), MemoryError> {
        self.charge(CostDomain::App, self.cost.mem_access);
        self.counter.count_access();
        self.pmu_observe_n(tid, addr, len, kind, 1);
        self.record(LogEvent::Access {
            thread: tid,
            addr,
            len,
            kind,
            count: 1,
        });
        if !self.mem.is_mapped(addr, len) {
            let site = self.site_of(tid);
            self.record(LogEvent::SignalRaised {
                signal: Signal::Segv,
                thread: tid,
            });
            self.pending.push_back(SignalInfo {
                signal: Signal::Segv,
                thread: tid,
                fd: None,
                fault_addr: addr,
                access: kind,
                site,
            });
            return Err(MemoryError::Unmapped { addr, len });
        }
        if kind == AccessKind::Write {
            // Stores really mutate memory (with a recognizable garbage
            // pattern) so canary-based evidence detection can observe
            // over-writes after the fact.
            self.mem
                .fill(addr, len, 0xA5)
                .expect("mapped range checked above");
        }
        let range = AddrRange::new(addr, len);
        for hit in self.perf.check_access(tid, range, kind) {
            // The site lookup only matters once a trap actually fires —
            // keep it off the unwatched-access path.
            let site = self.site_of(tid);
            self.traps_fired += 1;
            // The hardware trap happened either way; a fault plan can
            // still lose or postpone the *delivery* of the signal.
            if self.faults.as_mut().is_some_and(FaultPlan::drop_signal) {
                continue;
            }
            self.record(LogEvent::SignalRaised {
                signal: hit.sig,
                thread: hit.owner,
            });
            let info = SignalInfo {
                signal: hit.sig,
                // F_SETOWN directed the signal at `hit.owner`; CSOD sets the
                // owner to the thread the event is pinned to, which is the
                // accessing thread here.
                thread: hit.owner,
                fd: Some(hit.fd),
                fault_addr: hit.watched.start(),
                access: kind,
                site,
            };
            match self.faults.as_mut().and_then(FaultPlan::delay_signal) {
                Some(delay) => self.delayed.push_back((self.clock.now() + delay, info)),
                None => self.pending.push_back(info),
            }
        }
        Ok(())
    }

    /// Performs `count` in-bounds application accesses of `len` bytes at
    /// `addr` as one bulk operation: the full application cost is
    /// charged, one representative access actually executes (so
    /// watchpoint and fault semantics still hold for the touched word).
    ///
    /// Workload models use this for access-dense phases where emitting
    /// one event per access would dominate simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Unmapped`] when the representative access
    /// faults.
    pub fn app_access_bulk(
        &mut self,
        tid: ThreadId,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        count: u64,
    ) -> Result<(), MemoryError> {
        if count == 0 {
            return Ok(());
        }
        self.charge(CostDomain::App, self.cost.mem_access * (count - 1));
        self.counter.add_accesses(count - 1);
        self.pmu_observe_n(tid, addr, len, kind, count - 1);
        if count > 1 {
            self.record(LogEvent::Access {
                thread: tid,
                addr,
                len,
                kind,
                count: count - 1,
            });
        }
        self.app_access(tid, addr, len, kind)
    }

    /// Enables the flight recorder, keeping the last `capacity` events.
    pub fn recorder_enable(&mut self, capacity: usize) {
        self.recorder = Some(FlightRecorder::new(capacity));
    }

    /// Disables the flight recorder, returning it for inspection.
    pub fn recorder_take(&mut self) -> Option<FlightRecorder> {
        self.recorder.take()
    }

    /// Read access to the flight recorder, if enabled.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    fn record(&mut self, event: LogEvent) {
        if let Some(recorder) = &mut self.recorder {
            recorder.record(self.clock.now(), event);
        }
    }

    /// Enables PMU access sampling: every `period`-th application access
    /// produces a [`PmuSample`] (and costs
    /// [`CostModel::pmu_sample`] of tool time).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn pmu_enable(&mut self, period: u64) {
        self.pmu_enable_with_phase(period, 0);
    }

    /// Like [`Machine::pmu_enable`], but with an initial phase offset —
    /// real PMUs randomize the first sampling point to avoid aliasing
    /// with periodic program behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn pmu_enable_with_phase(&mut self, period: u64, phase: u64) {
        assert!(period > 0, "PMU sampling period must be positive");
        self.pmu_period = Some(period);
        // Phase 0 = the full period before the first sample; larger
        // phases pull the first sampling point earlier.
        self.pmu_countdown = period - (phase % period);
    }

    /// Disables PMU access sampling.
    pub fn pmu_disable(&mut self) {
        self.pmu_period = None;
        self.pmu_samples.clear();
    }

    /// Drains the collected PMU samples.
    pub fn take_pmu_samples(&mut self) -> Vec<PmuSample> {
        self.pmu_samples.drain(..).collect()
    }

    /// Counts `n` accesses to the same effective address against the
    /// sampling period; when one or more sampling points fall inside the
    /// batch, the per-sample cost is charged for each and one
    /// representative sample is queued.
    fn pmu_observe_n(
        &mut self,
        tid: ThreadId,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        n: u64,
    ) {
        let Some(period) = self.pmu_period else { return };
        if n == 0 {
            return;
        }
        if n < self.pmu_countdown {
            self.pmu_countdown -= n;
            return;
        }
        let after_first = n - self.pmu_countdown;
        let k = 1 + after_first / period;
        self.pmu_countdown = period - (after_first % period);
        self.charge(CostDomain::Tool, self.cost.pmu_sample * k);
        let site = self.site_of(tid);
        self.pmu_samples.push_back(PmuSample {
            thread: tid,
            addr,
            len,
            kind,
            site,
        });
    }

    /// Charges `ops` units of non-memory application work.
    pub fn app_compute(&mut self, ops: u64) {
        self.charge(CostDomain::App, self.cost.app_compute * ops);
    }

    /// Declares the statement `tid` is currently executing; carried into
    /// any signal raised by that thread's accesses.
    pub fn set_current_site(&mut self, tid: ThreadId, site: SiteToken) {
        self.current_site.insert(tid, site);
    }

    fn site_of(&self, tid: ThreadId) -> SiteToken {
        self.current_site
            .get(&tid)
            .copied()
            .unwrap_or(SiteToken::UNKNOWN)
    }

    // ----- threads -------------------------------------------------------------

    /// Spawns a new thread and returns its id.
    pub fn spawn_thread(&mut self) -> ThreadId {
        let tid = self.threads.spawn();
        self.record(LogEvent::ThreadSpawn { thread: tid });
        tid
    }

    /// Exits `tid`, closing any perf events pinned to it.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadError`] for the main thread or unknown threads.
    pub fn exit_thread(&mut self, tid: ThreadId) -> Result<(), ThreadError> {
        self.threads.exit(tid)?;
        self.perf.on_thread_exit(tid);
        self.current_site.remove(&tid);
        self.record(LogEvent::ThreadExit { thread: tid });
        Ok(())
    }

    /// The thread registry (alive list, peak count).
    pub fn threads(&self) -> &ThreadRegistry {
        &self.threads
    }

    // ----- syscalls (tool domain) ----------------------------------------------

    /// `perf_event_open`: opens a breakpoint event on `tid`.
    ///
    /// # Errors
    ///
    /// [`PerfError::NoSuchThread`] if `tid` is not alive, plus any error
    /// from [`PerfSubsystem::open`] (notably `EBUSY` when the thread's
    /// four debug registers are taken).
    pub fn sys_perf_event_open(
        &mut self,
        attr: PerfEventAttr,
        tid: ThreadId,
    ) -> Result<Fd, PerfError> {
        self.record(LogEvent::Syscall {
            name: "perf_event_open",
        });
        self.syscall_cost(self.cost.perf_event_open);
        if !self.threads.is_alive(tid) {
            return Err(PerfError::NoSuchThread(tid));
        }
        let now = self.clock.now();
        if let Some(e) = self.faults.as_mut().and_then(|f| f.fail_open(now, tid)) {
            return Err(e);
        }
        self.perf.open(attr, tid)
    }

    /// `fcntl` on a perf descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for closed descriptors.
    pub fn sys_fcntl(&mut self, fd: Fd, cmd: FcntlCmd) -> Result<i64, PerfError> {
        self.record(LogEvent::Syscall { name: "fcntl" });
        self.syscall_cost(self.cost.syscall);
        if let Some(e) = self.faults.as_mut().and_then(FaultPlan::fail_fcntl) {
            return Err(e);
        }
        self.perf.fcntl(fd, cmd)
    }

    /// `ioctl` on a perf descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for closed descriptors.
    pub fn sys_ioctl(&mut self, fd: Fd, cmd: IoctlCmd) -> Result<(), PerfError> {
        self.record(LogEvent::Syscall { name: "ioctl" });
        self.syscall_cost(self.cost.syscall);
        if let Some(e) = self.faults.as_mut().and_then(FaultPlan::fail_ioctl) {
            return Err(e);
        }
        self.perf.ioctl(fd, cmd)
    }

    /// `close` on a perf descriptor, freeing its debug register.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for closed descriptors.
    pub fn sys_close(&mut self, fd: Fd) -> Result<(), PerfError> {
        self.record(LogEvent::Syscall { name: "close" });
        self.syscall_cost(self.cost.syscall);
        if self.faults.as_mut().is_some_and(FaultPlan::fail_close) {
            // As on Linux, an EINTR from close still releases the
            // descriptor; the error only means the caller cannot know.
            let _ = self.perf.close(fd);
            return Err(PerfError::Interrupted);
        }
        self.perf.close(fd)
    }

    /// Installs a watchpoint via the traditional `ptrace` route: a
    /// helper process attaches to `tid`, pokes a debug register with
    /// `PTRACE_POKEUSER`, and detaches. The trap semantics are the same
    /// as the perf-event route; what differs is the cost — the
    /// inter-process round trips the paper cites as the reason to prefer
    /// `perf_event_open` (Section II-A).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::sys_perf_event_open`].
    pub fn sys_ptrace_watch(
        &mut self,
        attr: PerfEventAttr,
        tid: ThreadId,
    ) -> Result<Fd, PerfError> {
        self.record(LogEvent::Syscall { name: "ptrace" });
        self.syscall_cost(self.cost.ptrace_attach);
        if !self.threads.is_alive(tid) {
            // The attach already cost us; the errno comes back anyway.
            return Err(PerfError::NoSuchThread(tid));
        }
        self.syscall_cost(self.cost.ptrace_poke);
        let fd = self.perf.open(attr, tid)?;
        // Arm it exactly like the perf route so traps behave identically.
        self.perf
            .fcntl(fd, FcntlCmd::SetFlAsync)
            .expect("fd just opened");
        self.perf
            .fcntl(fd, FcntlCmd::SetSig(Signal::Trap))
            .expect("fd just opened");
        self.perf
            .fcntl(fd, FcntlCmd::SetOwn(tid))
            .expect("fd just opened");
        self.perf
            .ioctl(fd, IoctlCmd::Enable)
            .expect("fd just opened");
        self.syscall_cost(self.cost.ptrace_detach);
        Ok(fd)
    }

    /// Removes a `ptrace`-installed watchpoint: attach, clear the debug
    /// register, detach.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BadFd`] for descriptors that are not open.
    pub fn sys_ptrace_unwatch(&mut self, fd: Fd) -> Result<(), PerfError> {
        self.record(LogEvent::Syscall { name: "ptrace" });
        self.syscall_cost(self.cost.ptrace_attach);
        self.syscall_cost(self.cost.ptrace_poke);
        let result = self.perf.close(fd);
        self.syscall_cost(self.cost.ptrace_detach);
        result
    }

    /// The hypothetical combined syscall of Section V-B: installs one
    /// fully-configured watchpoint on *every* alive thread in a single
    /// kernel entry, returning the per-thread descriptors.
    ///
    /// # Errors
    ///
    /// Fails atomically with `EBUSY` if any thread lacks a free debug
    /// register (already-claimed registers are released again).
    pub fn sys_watch_all_threads(
        &mut self,
        attr: PerfEventAttr,
    ) -> Result<Vec<(ThreadId, Fd)>, PerfError> {
        self.record(LogEvent::Syscall {
            name: "watch_all_threads",
        });
        let threads: Vec<ThreadId> = self.threads.alive().collect();
        self.syscall_cost(
            self.cost.combined_watch
                + self.cost.combined_watch_per_thread * threads.len() as u64,
        );
        let mut fds = Vec::with_capacity(threads.len());
        for tid in &threads {
            match self.perf.open(attr, *tid) {
                Ok(fd) => {
                    self.perf
                        .fcntl(fd, FcntlCmd::SetFlAsync)
                        .expect("fd just opened");
                    self.perf
                        .fcntl(fd, FcntlCmd::SetSig(Signal::Trap))
                        .expect("fd just opened");
                    self.perf
                        .fcntl(fd, FcntlCmd::SetOwn(*tid))
                        .expect("fd just opened");
                    self.perf
                        .ioctl(fd, IoctlCmd::Enable)
                        .expect("fd just opened");
                    fds.push((*tid, fd));
                }
                Err(e) => {
                    for (_, fd) in fds {
                        let _ = self.perf.close(fd);
                    }
                    return Err(e);
                }
            }
        }
        Ok(fds)
    }

    /// The removal half of the combined syscall: one kernel entry closes
    /// all given descriptors.
    pub fn sys_unwatch_all(&mut self, fds: &[Fd]) {
        self.record(LogEvent::Syscall {
            name: "unwatch_all_threads",
        });
        self.syscall_cost(
            self.cost.combined_watch
                + self.cost.combined_watch_per_thread * fds.len() as u64,
        );
        for fd in fds {
            let _ = self.perf.close(*fd);
        }
    }

    /// Batched watchpoint teardown: a single kernel entry runs the
    /// Figure-4 `ioctl(PERF_EVENT_IOC_DISABLE)` + `close` sequence for
    /// every given descriptor, amortizing the kernel-entry cost over the
    /// batch. Descriptors already closed (e.g. auto-closed when their
    /// thread exited) are skipped silently, as `close` on a stale fd
    /// would be.
    pub fn sys_teardown_batch(&mut self, fds: &[Fd]) {
        if fds.is_empty() {
            return;
        }
        self.record(LogEvent::Syscall {
            name: "teardown_batch",
        });
        self.syscall_cost(
            self.cost.teardown_batch + self.cost.teardown_batch_per_fd * fds.len() as u64,
        );
        for fd in fds {
            let _ = self.perf.ioctl(*fd, IoctlCmd::Disable);
            let _ = self.perf.close(*fd);
        }
    }

    fn syscall_cost(&mut self, ns: u64) {
        self.counter.count_syscall();
        self.charge(CostDomain::Tool, ns);
    }

    // ----- perf introspection ----------------------------------------------------

    /// Free debug registers on `tid`.
    pub fn free_registers(&self, tid: ThreadId) -> usize {
        self.perf.free_registers(tid)
    }

    /// The watched range of an open descriptor.
    pub fn watched_range(&self, fd: Fd) -> Option<AddrRange> {
        self.perf.watched_range(fd)
    }

    /// Currently open perf events.
    pub fn open_events(&self) -> usize {
        self.perf.open_events()
    }

    /// Total perf events ever opened.
    pub fn events_opened_total(&self) -> u64 {
        self.perf.opened_total()
    }

    // ----- signals ------------------------------------------------------------------

    /// Drains and returns all pending signals in delivery order.
    /// Fault-delayed signals join the queue once virtual time reaches
    /// their due point.
    pub fn take_signals(&mut self) -> Vec<SignalInfo> {
        let now = self.clock.now();
        while let Some(&(due, _)) = self.delayed.front() {
            if due > now {
                break;
            }
            let (_, info) = self.delayed.pop_front().expect("front checked");
            self.pending.push_back(info);
        }
        self.pending.drain(..).collect()
    }

    /// Whether any signal is waiting for delivery (including fault-
    /// delayed signals that are already due).
    pub fn has_pending_signals(&self) -> bool {
        let now = self.clock.now();
        !self.pending.is_empty() || self.delayed.iter().any(|&(due, _)| due <= now)
    }

    /// Signals still held back by a fault-injected delivery delay.
    pub fn delayed_signal_count(&self) -> usize {
        self.delayed.len()
    }

    /// Raises a signal programmatically (e.g. the program calls `abort`).
    pub fn raise(&mut self, info: SignalInfo) {
        self.pending.push_back(info);
    }

    /// Total watchpoint traps fired since boot.
    pub fn traps_fired(&self) -> u64 {
        self.traps_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured_watch(m: &mut Machine, addr: VirtAddr, tid: ThreadId) -> Fd {
        let fd = m.sys_perf_event_open(PerfEventAttr::rw_word(addr), tid).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetFlAsync).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap)).unwrap();
        m.sys_fcntl(fd, FcntlCmd::SetOwn(tid)).unwrap();
        m.sys_ioctl(fd, IoctlCmd::Enable).unwrap();
        fd
    }

    fn machine_with_heap() -> (Machine, VirtAddr) {
        let mut m = Machine::new();
        let base = VirtAddr::new(0x10_0000);
        m.map_region(base, 1 << 16, "heap").unwrap();
        (m, base)
    }

    #[test]
    fn app_access_inside_object_is_silent() {
        let (mut m, base) = machine_with_heap();
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        m.app_write(ThreadId::MAIN, base, 64).unwrap();
        m.app_read(ThreadId::MAIN, base + 56, 8).unwrap();
        assert!(!m.has_pending_signals());
        assert_eq!(m.traps_fired(), 0);
    }

    #[test]
    fn overflow_fires_trap_with_site() {
        let (mut m, base) = machine_with_heap();
        let fd = configured_watch(&mut m, base + 64, ThreadId::MAIN);
        m.set_current_site(ThreadId::MAIN, SiteToken(42));
        m.app_read(ThreadId::MAIN, base + 64, 4).unwrap();
        let sigs = m.take_signals();
        assert_eq!(sigs.len(), 1);
        let s = sigs[0];
        assert_eq!(s.signal, Signal::Trap);
        assert_eq!(s.fd, Some(fd));
        assert_eq!(s.thread, ThreadId::MAIN);
        assert_eq!(s.site, SiteToken(42));
        assert_eq!(s.fault_addr, base + 64);
        assert_eq!(s.access, AccessKind::Read);
        assert_eq!(m.traps_fired(), 1);
        assert!(!m.has_pending_signals(), "take_signals drains the queue");
    }

    #[test]
    fn unmapped_access_raises_segv() {
        let (mut m, base) = machine_with_heap();
        let far = base + (1 << 20);
        assert!(m.app_write(ThreadId::MAIN, far, 8).is_err());
        let sigs = m.take_signals();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].signal, Signal::Segv);
        assert_eq!(sigs[0].fault_addr, far);
    }

    #[test]
    fn watch_on_other_thread_does_not_fire() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        // Worker touches the watched word, but only MAIN has the event.
        m.app_write(worker, base + 64, 8).unwrap();
        assert!(!m.has_pending_signals());
        // Installing on the worker too (as CSOD does for all threads) fires.
        configured_watch(&mut m, base + 64, worker);
        m.app_write(worker, base + 64, 8).unwrap();
        let sigs = m.take_signals();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].thread, worker);
    }

    #[test]
    fn raw_backdoor_is_invisible() {
        let (mut m, base) = machine_with_heap();
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        let before = m.counter().clone();
        m.raw_store_u64(base + 64, 0xCAFE).unwrap();
        assert_eq!(m.raw_load_u64(base + 64).unwrap(), 0xCAFE);
        assert!(!m.has_pending_signals());
        assert_eq!(m.counter(), &before, "backdoor charges nothing");
    }

    #[test]
    fn accounting_buckets() {
        let (mut m, base) = machine_with_heap();
        let t0 = m.now();
        m.app_write(ThreadId::MAIN, base, 8).unwrap();
        m.app_compute(10);
        m.wait_io(VirtDuration::from_millis(1));
        let c = m.counter();
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.app_ns(), m.costs().mem_access + 10 * m.costs().app_compute);
        assert_eq!(c.io_ns(), 1_000_000);
        assert_eq!((m.now() - t0).as_nanos(), c.total_ns());
    }

    #[test]
    fn syscalls_charge_tool_time() {
        let (mut m, base) = machine_with_heap();
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        let c = m.counter();
        assert_eq!(c.syscalls(), 5, "open + 3 fcntl + ioctl");
        let expected = m.costs().perf_event_open + 4 * m.costs().syscall;
        assert_eq!(c.tool_ns(), expected);
        assert!(c.normalized_overhead() > 1.0 || c.baseline_ns() == 0);
    }

    #[test]
    fn open_on_dead_thread_is_esrch() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        m.exit_thread(worker).unwrap();
        assert_eq!(
            m.sys_perf_event_open(PerfEventAttr::rw_word(base), worker),
            Err(PerfError::NoSuchThread(worker))
        );
    }

    #[test]
    fn thread_exit_releases_registers() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        for i in 0..4 {
            configured_watch(&mut m, base + 64 + i * 8, worker);
        }
        assert_eq!(m.free_registers(worker), 0);
        m.exit_thread(worker).unwrap();
        let again = m.spawn_thread();
        assert_eq!(m.free_registers(again), 4);
    }

    #[test]
    fn multiple_watchpoints_can_fire_in_one_access() {
        let (mut m, base) = machine_with_heap();
        // Two adjacent watched words; a 16-byte access covers both.
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        configured_watch(&mut m, base + 72, ThreadId::MAIN);
        m.app_read(ThreadId::MAIN, base + 60, 20).unwrap();
        assert_eq!(m.take_signals().len(), 2);
    }

    #[test]
    fn ptrace_watch_behaves_like_perf_but_costs_more() {
        let (mut m, base) = machine_with_heap();
        let fd = m.sys_ptrace_watch(PerfEventAttr::rw_word(base + 64), ThreadId::MAIN).unwrap();
        let ptrace_cost = m.counter().tool_ns();
        m.app_write(ThreadId::MAIN, base + 64, 8).unwrap();
        let sigs = m.take_signals();
        assert_eq!(sigs.len(), 1, "ptrace-installed watchpoints trap too");
        assert_eq!(sigs[0].fd, Some(fd));
        m.sys_ptrace_unwatch(fd).unwrap();
        assert_eq!(m.open_events(), 0);

        // The perf route is much cheaper for the same effect.
        let mut m2 = Machine::new();
        m2.map_region(base, 1 << 16, "heap").unwrap();
        configured_watch(&mut m2, base + 64, ThreadId::MAIN);
        assert!(
            ptrace_cost > 3 * m2.counter().tool_ns(),
            "ptrace {} vs perf {}",
            ptrace_cost,
            m2.counter().tool_ns()
        );
    }

    #[test]
    fn ptrace_watch_on_dead_thread_fails_after_attach() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        m.exit_thread(worker).unwrap();
        assert_eq!(
            m.sys_ptrace_watch(PerfEventAttr::rw_word(base), worker),
            Err(PerfError::NoSuchThread(worker))
        );
    }

    #[test]
    fn combined_syscall_covers_all_threads_in_one_entry() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        let fds = m.sys_watch_all_threads(PerfEventAttr::rw_word(base + 64)).unwrap();
        assert_eq!(fds.len(), 2);
        assert_eq!(m.counter().syscalls(), 1, "one kernel entry");
        m.app_write(worker, base + 64, 8).unwrap();
        assert_eq!(m.take_signals().len(), 1);
        let raw: Vec<Fd> = fds.iter().map(|&(_, fd)| fd).collect();
        m.sys_unwatch_all(&raw);
        assert_eq!(m.open_events(), 0);
        assert_eq!(m.counter().syscalls(), 2);
    }

    #[test]
    fn combined_syscall_is_atomic_on_register_exhaustion() {
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        // Exhaust the worker's registers only.
        for i in 0..4 {
            configured_watch(&mut m, base + 128 + i * 8, worker);
        }
        let err = m.sys_watch_all_threads(PerfEventAttr::rw_word(base + 64));
        assert_eq!(err, Err(PerfError::NoFreeRegister(worker)));
        // MAIN's register claimed during the attempt was rolled back.
        assert_eq!(m.free_registers(ThreadId::MAIN), 4);
    }

    #[test]
    fn teardown_batch_closes_all_in_one_entry() {
        let (mut m, base) = machine_with_heap();
        let a = configured_watch(&mut m, base + 64, ThreadId::MAIN);
        let b = configured_watch(&mut m, base + 128, ThreadId::MAIN);
        let syscalls = m.counter().syscalls();
        m.sys_teardown_batch(&[a, b]);
        assert_eq!(m.counter().syscalls(), syscalls + 1, "one kernel entry");
        assert_eq!(m.open_events(), 0);
        assert_eq!(m.free_registers(ThreadId::MAIN), 4);
        // An empty batch never enters the kernel; stale fds are skipped
        // silently (close on an already-closed descriptor).
        m.sys_teardown_batch(&[]);
        assert_eq!(m.counter().syscalls(), syscalls + 1);
        m.sys_teardown_batch(&[a]);
        assert_eq!(m.counter().syscalls(), syscalls + 2);
        assert_eq!(m.open_events(), 0);
    }

    #[test]
    fn pmu_samples_every_nth_access() {
        let (mut m, base) = machine_with_heap();
        m.pmu_enable(4);
        for i in 0..12 {
            m.app_read(ThreadId::MAIN, base + i * 8, 8).unwrap();
        }
        let samples = m.take_pmu_samples();
        assert_eq!(samples.len(), 3, "every 4th of 12 accesses");
        // The 4th access touched base + 3*8.
        assert_eq!(samples[0].addr, base + 24);
        assert!(m.take_pmu_samples().is_empty(), "drained");
        m.pmu_disable();
        m.app_read(ThreadId::MAIN, base, 8).unwrap();
        assert!(m.take_pmu_samples().is_empty());
    }

    #[test]
    fn pmu_bulk_accesses_charge_per_sample() {
        let (mut m, base) = machine_with_heap();
        m.pmu_enable(100);
        let tool_before = m.counter().tool_ns();
        m.app_access_bulk(ThreadId::MAIN, base, 8, AccessKind::Read, 1_000)
            .unwrap();
        let samples = m.take_pmu_samples();
        // 1000 accesses at period 100 -> 10 sampling points, one queued
        // representative (same address), full cost for all ten.
        assert!(!samples.is_empty());
        assert_eq!(
            m.counter().tool_ns() - tool_before,
            10 * m.costs().pmu_sample
        );
        // The countdown continues correctly across calls.
        for _ in 0..99 {
            m.app_read(ThreadId::MAIN, base, 8).unwrap();
        }
        assert!(m.take_pmu_samples().is_empty(), "99 more: not yet");
        m.app_read(ThreadId::MAIN, base, 8).unwrap();
        assert_eq!(m.take_pmu_samples().len(), 1, "the 100th fires");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pmu_zero_period_rejected() {
        Machine::new().pmu_enable(0);
    }

    #[test]
    fn flight_recorder_captures_the_story() {
        let (mut m, base) = machine_with_heap();
        m.recorder_enable(64);
        let worker = m.spawn_thread();
        configured_watch(&mut m, base + 64, ThreadId::MAIN);
        m.app_write(ThreadId::MAIN, base + 64, 8).unwrap();
        m.app_access_bulk(worker, base, 8, AccessKind::Read, 100).unwrap();
        m.exit_thread(worker).unwrap();
        let recorder = m.recorder_take().expect("enabled");
        let dump = recorder.dump();
        assert!(dump.contains("spawn tid1"));
        assert!(dump.contains("perf_event_open"));
        assert!(dump.contains("SIGTRAP -> tid0"));
        assert!(dump.contains("x99"), "bulk access recorded with count");
        assert!(dump.contains("exit tid1"));
        assert!(m.recorder().is_none(), "taking disables");
    }

    #[test]
    fn resident_bytes_track_touched_pages() {
        let mut m = Machine::new();
        m.map_region(VirtAddr::new(0x10_0000), 256 << 20, "heap").unwrap();
        assert_eq!(m.mapped_bytes(), 256 << 20);
        assert_eq!(m.resident_bytes(), 0, "mapping alone touches nothing");
        m.raw_store_u64(VirtAddr::new(0x10_0000), 1).unwrap();
        assert!(m.resident_bytes() > 0);
        assert!(m.resident_bytes() < 1 << 20, "one chunk, not the region");
    }

    #[test]
    fn skip_time_moves_clock_without_charges() {
        let mut m = Machine::new();
        m.skip_time(VirtDuration::from_secs(11));
        assert_eq!(m.now().as_nanos(), 11_000_000_000);
        assert_eq!(m.counter().total_ns(), 0);
    }
}
