//! # sim-machine — deterministic machine substrate for CSOD
//!
//! This crate is the hardware/OS substrate for the CSOD reproduction: a
//! deterministic, user-space model of the parts of an x86-64 Linux machine
//! the paper's tool actually touches:
//!
//! * a sparse 64-bit [virtual address space](AddressSpace) with
//!   SIGSEGV-style faulting,
//! * [simulated threads](ThreadRegistry) with a global alive list (the
//!   paper's `aliveThreads`),
//! * four per-thread hardware [debug registers](DebugRegisterFile)
//!   (DR0–DR3) — requesting a fifth fails with `EBUSY`,
//! * the [`perf_event_open` breakpoint API](PerfSubsystem) with the full
//!   `open → fcntl(O_ASYNC/F_SETSIG/F_SETOWN) → ioctl(ENABLE)` life cycle
//!   of the paper's Figures 3 and 4,
//! * SIGTRAP-style [signal delivery](SignalInfo) to the accessing thread,
//! * a [virtual clock](Clock) and a [cost model](CostModel) +
//!   [cycle counter](CycleCounter) that make time-dependent behaviour and
//!   normalized-overhead measurements (Figure 7) fully deterministic,
//! * the alternative watchpoint routes the paper discusses — `ptrace`
//!   ([`Machine::sys_ptrace_watch`]) and the combined custom syscall of
//!   Section V-B ([`Machine::sys_watch_all_threads`]),
//! * [PMU access sampling](Machine::pmu_enable) (the Sampler baseline's
//!   substrate) and a [flight recorder](FlightRecorder) for post-mortem
//!   debugging.
//!
//! ## Quick start
//!
//! ```
//! use sim_machine::{Machine, PerfEventAttr, FcntlCmd, IoctlCmd, Signal, ThreadId, VirtAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new();
//! let heap = VirtAddr::new(0x10_0000);
//! m.map_region(heap, 4096, "heap")?;
//!
//! // Arm a read/write watchpoint on an object boundary, CSOD-style.
//! let fd = m.sys_perf_event_open(PerfEventAttr::rw_word(heap + 32), ThreadId::MAIN)?;
//! m.sys_fcntl(fd, FcntlCmd::SetFlAsync)?;
//! m.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap))?;
//! m.sys_fcntl(fd, FcntlCmd::SetOwn(ThreadId::MAIN))?;
//! m.sys_ioctl(fd, IoctlCmd::Enable)?;
//!
//! m.app_write(ThreadId::MAIN, heap + 32, 8)?; // one word past the object
//! assert_eq!(m.take_signals()[0].signal, Signal::Trap);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::perf)]

mod addr;
mod clock;
mod cost;
mod debug;
mod faults;
mod machine;
mod memory;
mod perf;
mod recorder;
mod signal;
mod thread;

pub use addr::{AccessKind, AddrRange, VirtAddr};
pub use clock::{Clock, VirtDuration, VirtInstant};
pub use cost::{CostDomain, CostModel, CycleCounter};
pub use debug::{DebugRegisterFile, NUM_WATCHPOINT_REGISTERS};
pub use faults::{FaultPlan, FaultStats};
pub use machine::{Machine, PmuSample};
pub use recorder::{FlightRecorder, LogEvent};
pub use memory::{AddressSpace, MemoryError};
pub use perf::{
    BpType, Fd, FcntlCmd, FiredWatchpoint, IoctlCmd, PerfError, PerfEventAttr, PerfSubsystem,
};
pub use signal::{Signal, SignalInfo, SiteToken};
pub use thread::{ThreadError, ThreadId, ThreadRegistry};
