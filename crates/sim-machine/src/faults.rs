//! Deterministic fault injection for the machine's tool-facing surfaces.
//!
//! A production `LD_PRELOAD` detector must survive hostile environments:
//! `perf_event_open` returning `EBUSY`/`ENOSPC`, debug registers stolen
//! by a co-resident debugger, lost or delayed SIGTRAPs, and allocator
//! pressure. A [`FaultPlan`] injects exactly those failures into a
//! [`Machine`](crate::Machine) — probability-driven (seeded, so every
//! run reproduces) and schedule-driven (busy windows on virtual time) —
//! so tests and workloads can turn the screws on the tool under test.
//!
//! ```
//! use sim_machine::{FaultPlan, Machine, PerfEventAttr, ThreadId, VirtAddr};
//!
//! let mut m = Machine::new();
//! m.map_region(VirtAddr::new(0x10_0000), 4096, "heap").unwrap();
//! // Fail 30% of perf syscalls and drop 10% of SIGTRAPs.
//! m.install_fault_plan(
//!     FaultPlan::new(42)
//!         .perf_failures_ppm(300_000)
//!         .signal_drops_ppm(100_000),
//! );
//! // Some of these opens now fail with EBUSY/ENOSPC.
//! let mut failures = 0;
//! for _ in 0..100 {
//!     let attr = PerfEventAttr::rw_word(VirtAddr::new(0x10_0000));
//!     match m.sys_perf_event_open(attr, ThreadId::MAIN) {
//!         Ok(fd) => m.sys_close(fd).unwrap_or(()),
//!         Err(_) => failures += 1,
//!     }
//! }
//! assert!(failures > 0);
//! ```

use crate::clock::{VirtDuration, VirtInstant};
use crate::perf::PerfError;
use crate::thread::ThreadId;

/// Parts per million — the probability scale used throughout the plan.
const PPM: u64 = 1_000_000;

/// Counters of every fault the plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `perf_event_open` calls failed with `EBUSY`/`ENOSPC`.
    pub open_failures: u64,
    /// `fcntl` calls failed with `EINTR`.
    pub fcntl_failures: u64,
    /// `ioctl` calls failed with `EINTR`.
    pub ioctl_failures: u64,
    /// `close` calls that reported `EINTR` (the descriptor still closed,
    /// as on Linux).
    pub close_failures: u64,
    /// Opens rejected because a busy window marked the registers stolen.
    pub busy_rejections: u64,
    /// SIGTRAPs silently dropped.
    pub dropped_signals: u64,
    /// SIGTRAPs whose delivery was postponed.
    pub delayed_signals: u64,
    /// Heap allocations forced to fail.
    pub alloc_failures: u64,
}

impl FaultStats {
    /// Total injected perf-syscall failures across all four calls.
    pub fn perf_failures(&self) -> u64 {
        self.open_failures + self.fcntl_failures + self.ioctl_failures + self.close_failures
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// All probabilities are in parts per million and default to zero, so a
/// fresh plan injects nothing until the builder methods turn knobs.
/// Decisions are drawn from a SplitMix64 stream seeded at construction:
/// the same plan against the same workload injects the same faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    open_fail_ppm: u32,
    fcntl_fail_ppm: u32,
    ioctl_fail_ppm: u32,
    close_fail_ppm: u32,
    drop_signal_ppm: u32,
    delay_signal_ppm: u32,
    signal_delay: VirtDuration,
    alloc_fail_ppm: u32,
    /// Half-open windows of virtual time during which every open fails
    /// with `EBUSY` — a co-resident debugger holding the registers.
    busy_windows: Vec<(VirtInstant, VirtInstant)>,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan that injects nothing, with the given decision-stream seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            // Mix the seed so seeds 0 and 1 do not produce nearby streams.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            open_fail_ppm: 0,
            fcntl_fail_ppm: 0,
            ioctl_fail_ppm: 0,
            close_fail_ppm: 0,
            drop_signal_ppm: 0,
            delay_signal_ppm: 0,
            signal_delay: VirtDuration::from_micros(100),
            alloc_fail_ppm: 0,
            busy_windows: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    // ----- builder knobs -----------------------------------------------------

    /// Fails every perf syscall (`open`/`fcntl`/`ioctl`/`close`) with the
    /// given probability.
    pub fn perf_failures_ppm(mut self, ppm: u32) -> Self {
        self.open_fail_ppm = ppm;
        self.fcntl_fail_ppm = ppm;
        self.ioctl_fail_ppm = ppm;
        self.close_fail_ppm = ppm;
        self
    }

    /// Fails `perf_event_open` with the given probability (alternating
    /// `EBUSY` and `ENOSPC`).
    pub fn open_failures_ppm(mut self, ppm: u32) -> Self {
        self.open_fail_ppm = ppm;
        self
    }

    /// Fails `fcntl` with `EINTR` at the given probability.
    pub fn fcntl_failures_ppm(mut self, ppm: u32) -> Self {
        self.fcntl_fail_ppm = ppm;
        self
    }

    /// Fails `ioctl` with `EINTR` at the given probability.
    pub fn ioctl_failures_ppm(mut self, ppm: u32) -> Self {
        self.ioctl_fail_ppm = ppm;
        self
    }

    /// Makes `close` report `EINTR` at the given probability. As on
    /// Linux, the descriptor is still released — retrying the close would
    /// be the bug.
    pub fn close_failures_ppm(mut self, ppm: u32) -> Self {
        self.close_fail_ppm = ppm;
        self
    }

    /// Silently drops watchpoint signals at the given probability.
    pub fn signal_drops_ppm(mut self, ppm: u32) -> Self {
        self.drop_signal_ppm = ppm;
        self
    }

    /// Postpones watchpoint-signal delivery by `delay` at the given
    /// probability (the signal arrives once virtual time passes the due
    /// point).
    pub fn signal_delays_ppm(mut self, ppm: u32, delay: VirtDuration) -> Self {
        self.delay_signal_ppm = ppm;
        self.signal_delay = delay;
        self
    }

    /// Fails heap allocations at the given probability (allocator
    /// pressure).
    pub fn alloc_failures_ppm(mut self, ppm: u32) -> Self {
        self.alloc_fail_ppm = ppm;
        self
    }

    /// Marks the debug registers as stolen during `[from, until)`: every
    /// open in the window fails with `EBUSY` regardless of probability.
    pub fn registers_busy_between(mut self, from: VirtInstant, until: VirtInstant) -> Self {
        self.busy_windows.push((from, until));
        self
    }

    // ----- introspection -----------------------------------------------------

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `now` falls inside a registers-stolen window.
    pub fn registers_busy_at(&self, now: VirtInstant) -> bool {
        self.busy_windows
            .iter()
            .any(|&(from, until)| now >= from && now < until)
    }

    // ----- decision points (called by the machine) ---------------------------

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next_u64() % PPM < u64::from(ppm)
    }

    pub(crate) fn fail_open(&mut self, now: VirtInstant, tid: ThreadId) -> Option<PerfError> {
        if self.registers_busy_at(now) {
            self.stats.busy_rejections += 1;
            self.stats.open_failures += 1;
            return Some(PerfError::DeviceBusy(tid));
        }
        if self.chance(self.open_fail_ppm) {
            self.stats.open_failures += 1;
            // Real deployments see both errnos; alternate deterministically.
            return Some(if self.next_u64() & 1 == 0 {
                PerfError::DeviceBusy(tid)
            } else {
                PerfError::NoSpace
            });
        }
        None
    }

    pub(crate) fn fail_fcntl(&mut self) -> Option<PerfError> {
        if self.chance(self.fcntl_fail_ppm) {
            self.stats.fcntl_failures += 1;
            return Some(PerfError::Interrupted);
        }
        None
    }

    pub(crate) fn fail_ioctl(&mut self) -> Option<PerfError> {
        if self.chance(self.ioctl_fail_ppm) {
            self.stats.ioctl_failures += 1;
            return Some(PerfError::Interrupted);
        }
        None
    }

    pub(crate) fn fail_close(&mut self) -> bool {
        if self.chance(self.close_fail_ppm) {
            self.stats.close_failures += 1;
            return true;
        }
        false
    }

    pub(crate) fn drop_signal(&mut self) -> bool {
        if self.chance(self.drop_signal_ppm) {
            self.stats.dropped_signals += 1;
            return true;
        }
        false
    }

    pub(crate) fn delay_signal(&mut self) -> Option<VirtDuration> {
        if self.chance(self.delay_signal_ppm) {
            self.stats.delayed_signals += 1;
            return Some(self.signal_delay);
        }
        None
    }

    pub(crate) fn fail_alloc(&mut self) -> bool {
        if self.chance(self.alloc_fail_ppm) {
            self.stats.alloc_failures += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_plan_injects_nothing() {
        let mut p = FaultPlan::new(1);
        for _ in 0..1_000 {
            assert!(p.fail_open(VirtInstant::BOOT, ThreadId::MAIN).is_none());
            assert!(p.fail_fcntl().is_none());
            assert!(!p.fail_close());
            assert!(!p.drop_signal());
            assert!(!p.fail_alloc());
        }
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn probabilities_hit_near_their_rate() {
        let mut p = FaultPlan::new(7).perf_failures_ppm(300_000);
        let mut failures = 0;
        for _ in 0..10_000 {
            if p.fail_open(VirtInstant::BOOT, ThreadId::MAIN).is_some() {
                failures += 1;
            }
        }
        assert!((2_500..3_500).contains(&failures), "got {failures}/10000");
        assert_eq!(p.stats().open_failures, failures);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::new(9).perf_failures_ppm(500_000);
        let mut b = FaultPlan::new(9).perf_failures_ppm(500_000);
        for _ in 0..100 {
            assert_eq!(
                a.fail_open(VirtInstant::BOOT, ThreadId::MAIN),
                b.fail_open(VirtInstant::BOOT, ThreadId::MAIN)
            );
        }
    }

    #[test]
    fn busy_window_rejects_every_open() {
        let from = VirtInstant::BOOT + VirtDuration::from_secs(1);
        let until = VirtInstant::BOOT + VirtDuration::from_secs(2);
        let mut p = FaultPlan::new(3).registers_busy_between(from, until);
        assert!(p.fail_open(VirtInstant::BOOT, ThreadId::MAIN).is_none());
        assert_eq!(
            p.fail_open(from, ThreadId::MAIN),
            Some(PerfError::DeviceBusy(ThreadId::MAIN))
        );
        assert!(p.fail_open(until, ThreadId::MAIN).is_none(), "window is half-open");
        assert_eq!(p.stats().busy_rejections, 1);
        assert!(p.registers_busy_at(from));
        assert!(!p.registers_busy_at(until));
    }

    #[test]
    fn signal_delay_reports_the_configured_duration() {
        let d = VirtDuration::from_millis(5);
        let mut p = FaultPlan::new(4).signal_delays_ppm(1_000_000, d);
        assert_eq!(p.delay_signal(), Some(d));
        assert_eq!(p.stats().delayed_signals, 1);
    }
}
