//! The free-quarantine.
//!
//! ASan delays the reuse of freed blocks so that use-after-free accesses
//! keep hitting poisoned shadow. The quarantine is a byte-capped FIFO:
//! when the cap is exceeded the oldest entries are evicted and really
//! returned to the allocator.

use sim_machine::VirtAddr;
use std::collections::VecDeque;

/// One quarantined block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedBlock {
    /// Raw allocation start (including redzones).
    pub real: VirtAddr,
    /// User object start.
    pub user: VirtAddr,
    /// User object size.
    pub size: u64,
}

/// A byte-capped FIFO quarantine.
#[derive(Debug)]
pub struct Quarantine {
    capacity_bytes: u64,
    held_bytes: u64,
    peak_bytes: u64,
    queue: VecDeque<QuarantinedBlock>,
}

impl Quarantine {
    /// Creates a quarantine holding at most `capacity_bytes` of user
    /// object bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Quarantine {
            capacity_bytes,
            held_bytes: 0,
            peak_bytes: 0,
            queue: VecDeque::new(),
        }
    }

    /// Admits a freed block and returns the blocks evicted to stay under
    /// the cap (in eviction order; the caller really frees them).
    pub fn admit(&mut self, block: QuarantinedBlock) -> Vec<QuarantinedBlock> {
        self.queue.push_back(block);
        self.held_bytes += block.size;
        self.peak_bytes = self.peak_bytes.max(self.held_bytes);
        let mut evicted = Vec::new();
        while self.held_bytes > self.capacity_bytes {
            let oldest = self.queue.pop_front().expect("held > 0 implies non-empty");
            self.held_bytes -= oldest.size;
            evicted.push(oldest);
        }
        evicted
    }

    /// Blocks currently held.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// User bytes currently held.
    pub fn held_bytes(&self) -> u64 {
        self.held_bytes
    }

    /// High-water mark of held bytes (memory-overhead accounting).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Drains every held block (end of execution).
    pub fn drain(&mut self) -> Vec<QuarantinedBlock> {
        self.held_bytes = 0;
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: u64, size: u64) -> QuarantinedBlock {
        QuarantinedBlock {
            real: VirtAddr::new(0x1000 + n * 0x100),
            user: VirtAddr::new(0x1010 + n * 0x100),
            size,
        }
    }

    #[test]
    fn admits_until_cap_then_evicts_fifo() {
        let mut q = Quarantine::new(100);
        assert!(q.admit(block(0, 40)).is_empty());
        assert!(q.admit(block(1, 40)).is_empty());
        let evicted = q.admit(block(2, 40));
        assert_eq!(evicted, vec![block(0, 40)]);
        assert_eq!(q.held_bytes(), 80);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_bytes(), 120);
    }

    #[test]
    fn oversized_block_evicts_everything_including_itself() {
        let mut q = Quarantine::new(50);
        q.admit(block(0, 30));
        let evicted = q.admit(block(1, 100));
        assert_eq!(evicted.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.held_bytes(), 0);
    }

    #[test]
    fn drain_empties() {
        let mut q = Quarantine::new(1000);
        q.admit(block(0, 10));
        q.admit(block(1, 10));
        let all = q.drain();
        assert_eq!(all.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.held_bytes(), 0);
        // Peak survives draining.
        assert_eq!(q.peak_bytes(), 20);
    }
}
