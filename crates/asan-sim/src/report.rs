//! ASan-style bug reports.

use sim_machine::{AccessKind, SiteToken, ThreadId, VirtAddr};
use std::fmt;

/// The bug classes the ASan model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Access into a redzone.
    HeapBufferOverflow,
    /// Access into quarantined (freed) memory.
    UseAfterFree,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::HeapBufferOverflow => f.write_str("heap-buffer-overflow"),
            BugKind::UseAfterFree => f.write_str("heap-use-after-free"),
        }
    }
}

/// One report produced by the ASan model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsanReport {
    /// Bug class.
    pub bug: BugKind,
    /// Read or write.
    pub access: AccessKind,
    /// First poisoned byte touched.
    pub addr: VirtAddr,
    /// The accessing thread.
    pub thread: ThreadId,
    /// The statement performing the access.
    pub site: SiteToken,
}

impl fmt::Display for AsanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ERROR: AddressSanitizer: {} on address {} ({} of {} by {})",
            self.bug, self.addr, self.access, self.site, self.thread
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mimics_asan_banner() {
        let r = AsanReport {
            bug: BugKind::HeapBufferOverflow,
            access: AccessKind::Read,
            addr: VirtAddr::new(0x602000000050),
            thread: ThreadId::MAIN,
            site: SiteToken(4),
        };
        let text = r.to_string();
        assert!(text.contains("AddressSanitizer: heap-buffer-overflow"));
        assert!(text.contains("read"));
    }
}
