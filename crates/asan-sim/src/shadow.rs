//! Shadow memory.
//!
//! AddressSanitizer maps every 8 bytes of application memory to one
//! shadow byte: `0` means fully addressable, `1..=7` means only the first
//! *k* bytes of the granule are addressable, and negative values encode
//! the various poison kinds. This module models the same semantics with
//! an explicit enum, stored sparsely (the simulator does not need the
//! contiguous shadow offset trick — only its behaviour).

use sim_machine::{AddrRange, VirtAddr};
use std::collections::HashMap;

/// Shadow granule size: one shadow entry per 8 application bytes.
pub const GRANULE: u64 = 8;

/// The state of one 8-byte granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowState {
    /// First `0 < k <= 8` bytes are addressable; `Addressable(8)` is the
    /// fully-valid state (shadow byte 0 in real ASan).
    Addressable(u8),
    /// Heap redzone around an allocation.
    HeapRedzone,
    /// Freed heap memory sitting in quarantine.
    HeapFreed,
}

/// Result of checking one access against the shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowVerdict {
    /// Every byte addressable.
    Clean,
    /// The access touched a redzone (heap buffer overflow).
    HitRedzone {
        /// First poisoned byte touched.
        at: VirtAddr,
    },
    /// The access touched quarantined memory (use-after-free).
    HitFreed {
        /// First poisoned byte touched.
        at: VirtAddr,
    },
}

/// Sparse shadow memory.
///
/// Unmapped granules are *unpoisoned*: like real ASan, memory never
/// touched by the instrumented allocator is not checked.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    granules: HashMap<u64, ShadowState>,
    peak_granules: usize,
}

impl ShadowMemory {
    /// Creates empty (all-unpoisoned) shadow memory.
    pub fn new() -> Self {
        ShadowMemory::default()
    }

    fn granule_of(addr: VirtAddr) -> u64 {
        addr.as_u64() / GRANULE
    }

    /// Marks `[start, start+len)` as a heap redzone.
    pub fn poison_redzone(&mut self, start: VirtAddr, len: u64) {
        self.set_range(start, len, ShadowState::HeapRedzone);
    }

    /// Marks `[start, start+len)` as freed (quarantined) memory.
    pub fn poison_freed(&mut self, start: VirtAddr, len: u64) {
        self.set_range(start, len, ShadowState::HeapFreed);
    }

    /// Unpoisons an object of `len` bytes at `start` (which must be
    /// granule-aligned, as heap objects are): full granules become
    /// `Addressable(8)`, a trailing partial granule `Addressable(len%8)`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not 8-byte aligned — the allocator guarantees
    /// 16-byte alignment, so a violation is an internal bug.
    pub fn unpoison_object(&mut self, start: VirtAddr, len: u64) {
        assert!(start.is_aligned(GRANULE), "object start must be granule-aligned");
        let full = len / GRANULE;
        for i in 0..full {
            self.granules
                .insert(Self::granule_of(start + i * GRANULE), ShadowState::Addressable(8));
        }
        let tail = (len % GRANULE) as u8;
        if tail > 0 {
            self.granules.insert(
                Self::granule_of(start + full * GRANULE),
                ShadowState::Addressable(tail),
            );
        }
        self.peak_granules = self.peak_granules.max(self.granules.len());
    }

    /// Removes all shadow entries covering `[start, start+len)` —
    /// returning them to the never-tracked state.
    pub fn clear(&mut self, start: VirtAddr, len: u64) {
        let first = Self::granule_of(start);
        let last = Self::granule_of(start + len.saturating_sub(1));
        for g in first..=last {
            self.granules.remove(&g);
        }
    }

    /// Checks an access of `len` bytes at `addr`, one shadow lookup per
    /// granule (the instrumentation's fast path).
    pub fn check(&self, addr: VirtAddr, len: u64) -> ShadowVerdict {
        if len == 0 {
            return ShadowVerdict::Clean;
        }
        let range = AddrRange::new(addr, len);
        let end = range.end().as_u64();
        let first = Self::granule_of(addr);
        let last = Self::granule_of(range.end() - 1);
        for g in first..=last {
            match self.granules.get(&g) {
                None | Some(ShadowState::Addressable(8)) => {}
                Some(ShadowState::Addressable(k)) => {
                    // The first invalid byte of this granule.
                    let invalid = g * GRANULE + u64::from(*k);
                    let lo = addr.as_u64().max(g * GRANULE);
                    let hi = end.min((g + 1) * GRANULE);
                    if hi > invalid {
                        let at = lo.max(invalid);
                        if at < hi {
                            return ShadowVerdict::HitRedzone {
                                at: VirtAddr::new(at),
                            };
                        }
                    }
                }
                Some(ShadowState::HeapRedzone) => {
                    let at = addr.as_u64().max(g * GRANULE);
                    return ShadowVerdict::HitRedzone {
                        at: VirtAddr::new(at),
                    };
                }
                Some(ShadowState::HeapFreed) => {
                    let at = addr.as_u64().max(g * GRANULE);
                    return ShadowVerdict::HitFreed {
                        at: VirtAddr::new(at),
                    };
                }
            }
        }
        ShadowVerdict::Clean
    }

    /// Number of tracked granules (shadow footprint, in entries).
    pub fn tracked_granules(&self) -> usize {
        self.granules.len()
    }

    /// High-water mark of tracked granules — each costs one real shadow
    /// byte on a real machine (the 1/8 shadow mapping).
    pub fn peak_granules(&self) -> usize {
        self.peak_granules
    }

    fn set_range(&mut self, start: VirtAddr, len: u64, state: ShadowState) {
        if len == 0 {
            return;
        }
        let first = Self::granule_of(start);
        let last = Self::granule_of(start + (len - 1));
        for g in first..=last {
            self.granules.insert(g, state);
        }
        self.peak_granules = self.peak_granules.max(self.granules.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_memory_is_clean() {
        let s = ShadowMemory::new();
        assert_eq!(s.check(VirtAddr::new(0x1000), 64), ShadowVerdict::Clean);
    }

    #[test]
    fn redzone_hit_reports_first_poisoned_byte() {
        let mut s = ShadowMemory::new();
        let obj = VirtAddr::new(0x1000);
        s.unpoison_object(obj, 16);
        s.poison_redzone(obj + 16, 16);
        assert_eq!(s.check(obj, 16), ShadowVerdict::Clean);
        assert_eq!(
            s.check(obj + 8, 16), // straddles into the redzone
            ShadowVerdict::HitRedzone { at: obj + 16 }
        );
    }

    #[test]
    fn partial_granule_tail_is_enforced() {
        let mut s = ShadowMemory::new();
        let obj = VirtAddr::new(0x2000);
        s.unpoison_object(obj, 13); // one full granule + 5 bytes
        assert_eq!(s.check(obj, 13), ShadowVerdict::Clean);
        // Byte 13 is in the same granule but beyond the valid prefix.
        assert_eq!(
            s.check(obj + 13, 1),
            ShadowVerdict::HitRedzone { at: obj + 13 }
        );
    }

    #[test]
    fn freed_memory_is_a_distinct_verdict() {
        let mut s = ShadowMemory::new();
        let obj = VirtAddr::new(0x3000);
        s.unpoison_object(obj, 32);
        s.poison_freed(obj, 32);
        assert_eq!(s.check(obj + 4, 4), ShadowVerdict::HitFreed { at: obj + 4 });
    }

    #[test]
    fn clear_returns_to_untracked() {
        let mut s = ShadowMemory::new();
        let obj = VirtAddr::new(0x4000);
        s.poison_redzone(obj, 64);
        assert_ne!(s.check(obj, 8), ShadowVerdict::Clean);
        s.clear(obj, 64);
        assert_eq!(s.check(obj, 8), ShadowVerdict::Clean);
        assert_eq!(s.tracked_granules(), 0);
    }

    #[test]
    fn zero_length_poison_is_a_no_op() {
        let mut s = ShadowMemory::new();
        s.poison_redzone(VirtAddr::new(0x5000), 0);
        assert_eq!(s.tracked_granules(), 0);
    }

    #[test]
    #[should_panic(expected = "granule-aligned")]
    fn unaligned_object_panics() {
        let mut s = ShadowMemory::new();
        s.unpoison_object(VirtAddr::new(0x1003), 8);
    }
}
