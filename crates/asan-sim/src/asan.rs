//! The ASan runtime model.

use crate::quarantine::{Quarantine, QuarantinedBlock};
use crate::report::{AsanReport, BugKind};
use crate::shadow::{ShadowMemory, ShadowVerdict, GRANULE};
use sim_heap::{HeapError, SimHeap};
use sim_machine::{
    AccessKind, CostDomain, Machine, SiteToken, ThreadId, VirtAddr,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// ASan model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsanConfig {
    /// Redzone placed on each side of every object. The paper's
    /// comparison runs ASan with "minimally-sized redzones (16 bytes)".
    pub redzone_size: u64,
    /// Byte cap of the free-quarantine.
    pub quarantine_bytes: u64,
}

impl Default for AsanConfig {
    fn default() -> Self {
        AsanConfig {
            redzone_size: 16,
            quarantine_bytes: 1 << 20,
        }
    }
}

/// Errors surfaced by the ASan allocation interposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsanError {
    /// The underlying allocator failed.
    Heap(HeapError),
    /// `free` of a pointer ASan never handed out (wild or double free).
    InvalidFree(VirtAddr),
}

impl fmt::Display for AsanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsanError::Heap(e) => write!(f, "allocator error: {e}"),
            AsanError::InvalidFree(p) => write!(f, "attempting free on unknown address {p}"),
        }
    }
}

impl std::error::Error for AsanError {}

impl From<HeapError> for AsanError {
    fn from(e: HeapError) -> Self {
        AsanError::Heap(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct AsanRecord {
    real: VirtAddr,
    size: u64,
    total: u64,
}

/// Counters for the evaluation harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsanStats {
    /// Allocations intercepted.
    pub allocations: u64,
    /// Frees intercepted.
    pub frees: u64,
    /// Shadow checks performed (instrumented accesses).
    pub checks: u64,
    /// Accesses skipped because the module was not instrumented.
    pub unchecked: u64,
}

/// The AddressSanitizer model.
///
/// Like the real tool, the *allocator* is interposed globally (every
/// object gets redzones, whatever code allocated it), but *checks* exist
/// only in code compiled with the instrumentation: accesses from modules
/// never passed to [`Asan::instrument_module`] are not checked. That is
/// exactly why the paper finds ASan "cannot detect the overflows in
/// Libtiff, LibHX, and Zziplib, when the corresponding libraries are not
/// instrumented" (Section V-A1).
///
/// # Examples
///
/// ```
/// use asan_sim::{Asan, AsanConfig};
/// use sim_heap::{HeapConfig, SimHeap};
/// use sim_machine::{AccessKind, Machine, SiteToken, ThreadId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new();
/// let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
/// let mut asan = Asan::new(AsanConfig::default());
/// asan.instrument_module("app");
///
/// let p = asan.malloc(&mut machine, &mut heap, 40)?;
/// // One byte past the object, from instrumented code: caught.
/// asan.access(&mut machine, ThreadId::MAIN, p + 40, 1, AccessKind::Write, "app", SiteToken(1))?;
/// assert!(asan.detected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Asan {
    config: AsanConfig,
    shadow: ShadowMemory,
    quarantine: Quarantine,
    instrumented: HashSet<String>,
    records: HashMap<u64, AsanRecord>,
    reports: Vec<AsanReport>,
    reported_sites: HashSet<u64>,
    stats: AsanStats,
    redzone_bytes_live: u64,
    redzone_bytes_peak: u64,
}

impl Asan {
    /// Creates an ASan model.
    pub fn new(config: AsanConfig) -> Self {
        let quarantine = Quarantine::new(config.quarantine_bytes);
        Asan {
            config,
            shadow: ShadowMemory::new(),
            quarantine,
            instrumented: HashSet::new(),
            records: HashMap::new(),
            reports: Vec::new(),
            reported_sites: HashSet::new(),
            stats: AsanStats::default(),
            redzone_bytes_live: 0,
            redzone_bytes_peak: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AsanConfig {
        &self.config
    }

    /// Marks `module` as compiled with ASan instrumentation.
    pub fn instrument_module(&mut self, module: &str) {
        self.instrumented.insert(module.to_owned());
    }

    /// Whether `module` carries instrumentation.
    pub fn is_instrumented(&self, module: &str) -> bool {
        self.instrumented.contains(module)
    }

    /// Registers a global variable: ASan's compile-time instrumentation
    /// surrounds each global with redzones, which is why it covers
    /// global-variable overflows that heap-only tools like CSOD cannot
    /// see (paper Section VI). The surrounding `redzone_size` bytes on
    /// each side must lie in mapped memory reserved for the purpose.
    pub fn add_global(&mut self, addr: VirtAddr, size: u64) {
        let rz = self.config.redzone_size.max(GRANULE);
        self.shadow.poison_redzone(addr - rz, rz);
        self.shadow.unpoison_object(addr, size);
        let padded = size.max(1).div_ceil(GRANULE) * GRANULE;
        self.shadow.poison_redzone(addr + padded, rz);
    }

    /// Interposed `malloc`: redzones on both sides, object unpoisoned,
    /// redzones poisoned.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn malloc(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        size: u64,
    ) -> Result<VirtAddr, AsanError> {
        // Poisoning cost scales with how much redzone there is to paint.
        let poison_units = (self.config.redzone_size / 16).max(1);
        machine.charge(CostDomain::Tool, machine.costs().redzone_poison * poison_units);
        let left = self.config.redzone_size.max(GRANULE);
        let padded = size.max(1).div_ceil(GRANULE) * GRANULE;
        let right = self.config.redzone_size.max(GRANULE);
        let total = left + padded + right;
        let real = heap.malloc(machine, total)?;
        let user = real + left;
        self.shadow.poison_redzone(real, left);
        self.shadow.unpoison_object(user, size);
        // The padding tail of the last granule is non-addressable via the
        // partial-granule encoding; poison from the padded edge onward.
        self.shadow.poison_redzone(user + padded, right);
        self.records.insert(
            user.as_u64(),
            AsanRecord { real, size, total },
        );
        self.stats.allocations += 1;
        self.redzone_bytes_live += total - size;
        self.redzone_bytes_peak = self.redzone_bytes_peak.max(self.redzone_bytes_live);
        Ok(user)
    }

    /// Interposed `free`: the object is poisoned and quarantined; evicted
    /// quarantine entries are really freed.
    ///
    /// # Errors
    ///
    /// Returns [`AsanError::InvalidFree`] for unknown pointers (including
    /// double frees).
    pub fn free(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        user: VirtAddr,
    ) -> Result<(), AsanError> {
        machine.charge(CostDomain::Tool, machine.costs().quarantine);
        let record = self
            .records
            .remove(&user.as_u64())
            .ok_or(AsanError::InvalidFree(user))?;
        self.stats.frees += 1;
        let padded = record.size.max(1).div_ceil(GRANULE) * GRANULE;
        self.shadow.poison_freed(user, padded);
        let evicted = self.quarantine.admit(QuarantinedBlock {
            real: record.real,
            user,
            size: record.size,
        });
        self.redzone_bytes_live -= record.total - record.size;
        for block in evicted {
            self.release(machine, heap, block);
        }
        Ok(())
    }

    /// An instrumented-program memory access: the shadow check runs first
    /// (when `module` is instrumented), then the access itself.
    ///
    /// Unlike the real tool, a poisoned access is recorded and execution
    /// continues (`halt_on_error=0`), so one run measures all detections.
    ///
    /// # Errors
    ///
    /// Propagates machine faults for unmapped accesses.
    #[allow(clippy::too_many_arguments)] // mirrors the instrumentation callback ABI
    pub fn access(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        module: &str,
        site: SiteToken,
    ) -> Result<(), sim_machine::MemoryError> {
        if self.instrumented.contains(module) {
            machine.charge(CostDomain::Tool, machine.costs().shadow_check);
            self.stats.checks += 1;
            match self.shadow.check(addr, len) {
                ShadowVerdict::Clean => {}
                ShadowVerdict::HitRedzone { at } => {
                    self.report(BugKind::HeapBufferOverflow, kind, at, tid, site);
                }
                ShadowVerdict::HitFreed { at } => {
                    self.report(BugKind::UseAfterFree, kind, at, tid, site);
                }
            }
        } else {
            self.stats.unchecked += 1;
        }
        machine.app_access(tid, addr, len, kind)
    }

    /// Models `count` in-bounds accesses to `[addr, addr+len)` as one
    /// bulk operation: per-access check costs are charged, one
    /// representative check and access really execute.
    ///
    /// # Errors
    ///
    /// Propagates machine faults for unmapped accesses.
    #[allow(clippy::too_many_arguments)] // mirrors the instrumentation callback ABI
    pub fn access_burst(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        module: &str,
        site: SiteToken,
        count: u64,
    ) -> Result<(), sim_machine::MemoryError> {
        if count == 0 {
            return Ok(());
        }
        if self.instrumented.contains(module) {
            machine.charge(CostDomain::Tool, machine.costs().shadow_check * (count - 1));
            self.stats.checks += count - 1;
        } else {
            self.stats.unchecked += count - 1;
        }
        machine.app_access_bulk(tid, addr, len, kind, count - 1)?;
        self.access(machine, tid, addr, len, kind, module, site)
    }

    /// End of execution: drains the quarantine back to the allocator.
    pub fn finish(&mut self, machine: &mut Machine, heap: &mut SimHeap) {
        for block in self.quarantine.drain() {
            self.release(machine, heap, block);
        }
    }

    fn release(&mut self, machine: &mut Machine, heap: &mut SimHeap, block: QuarantinedBlock) {
        // Forget the shadow for the whole raw block so recycled memory
        // starts clean.
        let left = block.user - block.real;
        let padded = block.size.max(1).div_ceil(GRANULE) * GRANULE;
        let right = self.config.redzone_size.max(GRANULE);
        self.shadow.clear(block.real, left + padded + right);
        heap.free(machine, block.real).expect("quarantined block is live");
    }

    fn report(&mut self, bug: BugKind, access: AccessKind, addr: VirtAddr, thread: ThreadId, site: SiteToken) {
        if !self.reported_sites.insert(site.0) {
            return;
        }
        self.reports.push(AsanReport {
            bug,
            access,
            addr,
            thread,
            site,
        });
    }

    /// All reports so far.
    pub fn reports(&self) -> &[AsanReport] {
        &self.reports
    }

    /// Whether any bug was reported.
    pub fn detected(&self) -> bool {
        !self.reports.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> AsanStats {
        self.stats
    }

    /// Peak extra memory attributable to the tool: live redzones plus
    /// quarantined bytes plus the shadow entries themselves (one byte per
    /// granule, like the real 1/8 shadow) — Table V's comparison input.
    pub fn peak_extra_memory(&self) -> u64 {
        self.redzone_bytes_peak
            + self.quarantine.peak_bytes()
            + self.shadow.peak_granules() as u64
    }

    /// Peak shadow bytes alone (one real byte per tracked granule).
    pub fn peak_shadow_bytes(&self) -> u64 {
        self.shadow.peak_granules() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::HeapConfig;

    fn setup() -> (Machine, SimHeap, Asan) {
        let mut machine = Machine::new();
        let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut asan = Asan::new(AsanConfig::default());
        asan.instrument_module("app");
        (machine, heap, asan)
    }

    #[test]
    fn clean_accesses_pass() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        for off in (0..64).step_by(8) {
            a.access(&mut m, ThreadId::MAIN, p + off, 8, AccessKind::Write, "app", SiteToken(0))
                .unwrap();
        }
        assert!(!a.detected());
        assert_eq!(a.stats().checks, 8);
    }

    #[test]
    fn overflow_into_redzone_detected() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        a.access(&mut m, ThreadId::MAIN, p + 64, 1, AccessKind::Write, "app", SiteToken(1))
            .unwrap();
        assert!(a.detected());
        assert_eq!(a.reports()[0].bug, BugKind::HeapBufferOverflow);
    }

    #[test]
    fn underflow_into_left_redzone_detected() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        a.access(&mut m, ThreadId::MAIN, p - 1, 1, AccessKind::Read, "app", SiteToken(2))
            .unwrap();
        assert!(a.detected());
    }

    #[test]
    fn sub_granule_overflow_detected_via_partial_encoding() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 13).unwrap();
        a.access(&mut m, ThreadId::MAIN, p + 13, 1, AccessKind::Read, "app", SiteToken(3))
            .unwrap();
        assert!(a.detected(), "redzone-adjacent byte inside last granule");
    }

    #[test]
    fn uninstrumented_module_misses_the_bug() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        // The overflowing access happens inside libtiff.so, which was
        // not compiled with ASan.
        a.access(&mut m, ThreadId::MAIN, p + 64, 1, AccessKind::Write, "libtiff.so", SiteToken(4))
            .unwrap();
        assert!(!a.detected());
        assert_eq!(a.stats().unchecked, 1);
    }

    #[test]
    fn use_after_free_detected_via_quarantine() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 32).unwrap();
        a.free(&mut m, &mut h, p).unwrap();
        a.access(&mut m, ThreadId::MAIN, p, 8, AccessKind::Read, "app", SiteToken(5))
            .unwrap();
        assert!(a.detected());
        assert_eq!(a.reports()[0].bug, BugKind::UseAfterFree);
    }

    #[test]
    fn double_free_is_invalid() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 32).unwrap();
        a.free(&mut m, &mut h, p).unwrap();
        assert_eq!(a.free(&mut m, &mut h, p), Err(AsanError::InvalidFree(p)));
    }

    #[test]
    fn quarantine_eviction_returns_memory() {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut asan = Asan::new(AsanConfig {
            redzone_size: 16,
            quarantine_bytes: 64,
        });
        asan.instrument_module("app");
        let mut ptrs = Vec::new();
        for _ in 0..4 {
            ptrs.push(asan.malloc(&mut machine, &mut heap, 32).unwrap());
        }
        let live_before = heap.stats().live_objects();
        for p in ptrs {
            asan.free(&mut machine, &mut heap, p).unwrap();
        }
        // 4 * 32 bytes freed with a 64-byte cap: at least two blocks
        // must have been really freed.
        assert!(heap.stats().live_objects() <= live_before - 2);
        asan.finish(&mut machine, &mut heap);
        assert_eq!(heap.stats().live_objects(), 0);
    }

    #[test]
    fn each_site_reports_once() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 8).unwrap();
        for _ in 0..3 {
            a.access(&mut m, ThreadId::MAIN, p + 8, 1, AccessKind::Write, "app", SiteToken(7))
                .unwrap();
        }
        assert_eq!(a.reports().len(), 1);
    }

    #[test]
    fn global_variable_overflow_detected() {
        let (mut m, _h, mut a) = setup();
        // A data segment with slack for the redzones.
        let data = VirtAddr::new(0x5_0000_0000);
        m.map_region(data, 4096, "data").unwrap();
        let global = data + 64;
        a.add_global(global, 40);
        // In-bounds is clean; one byte past is caught.
        a.access(&mut m, ThreadId::MAIN, global, 40, AccessKind::Write, "app", SiteToken(20))
            .unwrap();
        assert!(!a.detected());
        a.access(&mut m, ThreadId::MAIN, global + 40, 1, AccessKind::Read, "app", SiteToken(21))
            .unwrap();
        assert!(a.detected());
    }

    #[test]
    fn strided_overflow_within_redzone_detected_beyond_missed() {
        // Paper Section VI: "ASan can detect overflows within redzones,
        // regardless of stride or continuity... cannot detect
        // non-continuous overflows beyond the redzones."
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        // Skip 8 bytes into the middle of the right redzone: caught.
        a.access(&mut m, ThreadId::MAIN, p + 72, 4, AccessKind::Write, "app", SiteToken(22))
            .unwrap();
        assert!(a.detected());
        // A fresh instance: far beyond the redzone, into untracked
        // memory: missed.
        let (mut m2, mut h2, mut a2) = setup();
        let q = a2.malloc(&mut m2, &mut h2, 64).unwrap();
        a2.access(&mut m2, ThreadId::MAIN, q + 4096, 8, AccessKind::Write, "app", SiteToken(23))
            .unwrap();
        assert!(!a2.detected());
    }

    #[test]
    fn tool_costs_and_memory_accounting() {
        let (mut m, mut h, mut a) = setup();
        let p = a.malloc(&mut m, &mut h, 64).unwrap();
        a.access(&mut m, ThreadId::MAIN, p, 8, AccessKind::Read, "app", SiteToken(8))
            .unwrap();
        assert!(m.counter().tool_ns() > 0);
        assert!(a.peak_extra_memory() >= 32, "two 16-byte redzones at least");
        a.free(&mut m, &mut h, p).unwrap();
        a.finish(&mut m, &mut h);
    }

    #[test]
    fn recycled_block_starts_clean() {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut asan = Asan::new(AsanConfig {
            redzone_size: 16,
            quarantine_bytes: 0, // evict immediately
        });
        asan.instrument_module("app");
        let p = asan.malloc(&mut machine, &mut heap, 32).unwrap();
        asan.free(&mut machine, &mut heap, p).unwrap();
        // The block is recycled for a fresh allocation of the same size.
        let q = asan.malloc(&mut machine, &mut heap, 32).unwrap();
        assert_eq!(p, q, "allocator recycles the block");
        asan.access(&mut machine, ThreadId::MAIN, q, 32, AccessKind::Write, "app", SiteToken(9))
            .unwrap();
        assert!(!asan.detected(), "no stale freed-poison on recycled memory");
    }
}
