//! # asan-sim — an AddressSanitizer model baseline
//!
//! The CSOD paper compares against ASan configured for heap-overflow
//! detection with minimal (16-byte) redzones and *without* instrumenting
//! external libraries. This crate models exactly the mechanisms that
//! comparison depends on:
//!
//! * [shadow memory](ShadowMemory) at one entry per 8-byte granule with
//!   partial-granule encoding,
//! * redzones around every interposed allocation and a byte-capped
//!   [free-quarantine](Quarantine) for use-after-free,
//! * per-access checks *only in instrumented modules* — reproducing
//!   ASan's blind spot for the Libtiff/LibHX/Zziplib in-library bugs,
//! * per-access and per-allocation tool costs so Figure 7's
//!   "checking every memory access" overhead shape emerges naturally.
//!
//! See [`Asan`] for an end-to-end example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asan;
mod quarantine;
mod report;
mod shadow;

pub use asan::{Asan, AsanConfig, AsanError, AsanStats};
pub use quarantine::{Quarantine, QuarantinedBlock};
pub use report::{AsanReport, BugKind};
pub use shadow::{ShadowMemory, ShadowState, ShadowVerdict, GRANULE};
