//! # sampler-sim — the Sampler (MICRO'18) baseline
//!
//! The CSOD paper discusses one piece of concurrent work in depth
//! (Section VII): *Sampler* (Silvestro et al., MICRO'18), which
//! "utilizes PMU-based memory access sampling to detect buffer overflows
//! and use-after-frees, with similar overhead to that of CSOD. However,
//! Sampler requires a custom memory allocator, and change of the
//! underlying OS."
//!
//! This crate models that design so the two sampling philosophies can be
//! compared head-to-head:
//!
//! * the **OS change**: the machine's PMU samples every Nth application
//!   memory access ([`Machine::pmu_enable`]);
//! * the **custom allocator**: every object is padded with a guard zone
//!   and its bounds are tracked in an interval map, so a sampled address
//!   can be classified as in-bounds, guard-zone (overflow!), or freed
//!   (use-after-free);
//! * detection is probabilistic per *access*: an overflow is caught only
//!   if one of its accesses happens to be sampled — whereas CSOD is
//!   probabilistic per *object* and certain once the object is watched.
//!
//! [`Machine::pmu_enable`]: sim_machine::Machine::pmu_enable

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use sim_heap::{HeapError, SimHeap};
use sim_machine::{AccessKind, CostDomain, Machine, SiteToken, ThreadId, VirtAddr};
use std::collections::BTreeMap;
use std::fmt;

/// Guard-zone bytes the custom allocator appends to every object.
pub const GUARD_BYTES: u64 = 16;

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Sample every Nth memory access. MICRO'18 tunes this so the
    /// overhead lands near CSOD's; the default does the same under this
    /// repository's cost model.
    pub sample_period: u64,
    /// Initial sampling phase (PMUs randomize the first sample point to
    /// avoid aliasing); vary per run for statistical experiments.
    pub phase: u64,
    /// How many freed objects stay classified as "freed" before their
    /// metadata is recycled (a small quarantine, needed for
    /// use-after-free classification).
    pub freed_tracking: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            // Tied to the shared paper constants rather than restated:
            // one sample per fifth of CSOD's burst-window allocation
            // budget lands Sampler's overhead near CSOD's under this
            // repository's cost model (the MICRO'18 tuning intent).
            sample_period: u64::from(csod_core::paper::BURST_ALLOC_THRESHOLD) / 5,
            phase: 0,
            freed_tracking: 1_024,
        }
    }
}

/// Bug classes Sampler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerBug {
    /// A sampled access fell into an object's guard zone.
    Overflow,
    /// A sampled access fell into freed memory.
    UseAfterFree,
}

impl fmt::Display for SamplerBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerBug::Overflow => f.write_str("buffer overflow"),
            SamplerBug::UseAfterFree => f.write_str("use-after-free"),
        }
    }
}

/// One Sampler detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerReport {
    /// Bug class.
    pub bug: SamplerBug,
    /// Read or write.
    pub access: AccessKind,
    /// The sampled address.
    pub addr: VirtAddr,
    /// The accessing thread.
    pub thread: ThreadId,
    /// The statement whose access was sampled.
    pub site: SiteToken,
}

impl fmt::Display for SamplerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sampler: {} at {} ({} of {} by {})",
            self.bug, self.addr, self.access, self.site, self.thread
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct TrackedObject {
    user: VirtAddr,
    requested: u64,
    /// End of the guard zone (= end of the raw block we asked for).
    guard_end: VirtAddr,
    freed: bool,
}

/// Counters for the comparison harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Allocations tracked.
    pub allocations: u64,
    /// Frees tracked.
    pub frees: u64,
    /// PMU samples classified.
    pub samples: u64,
}

/// The Sampler runtime.
///
/// # Examples
///
/// ```
/// use sampler_sim::{Sampler, SamplerConfig};
/// use sim_heap::{HeapConfig, SimHeap};
/// use sim_machine::{Machine, ThreadId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new();
/// let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
/// // Sample every access so the demo detects deterministically.
/// let mut sampler = Sampler::new(&mut machine, SamplerConfig {
///     sample_period: 1,
///     ..SamplerConfig::default()
/// });
///
/// let p = sampler.malloc(&mut machine, &mut heap, 40)?;
/// machine.app_write(ThreadId::MAIN, p + 40, 8)?; // into the guard zone
/// sampler.poll(&mut machine);
/// assert!(sampler.detected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sampler {
    config: SamplerConfig,
    /// Live and recently freed objects, keyed by user start address.
    objects: BTreeMap<u64, TrackedObject>,
    /// FIFO of freed object keys still tracked.
    freed_order: std::collections::VecDeque<u64>,
    reports: Vec<SamplerReport>,
    reported_sites: std::collections::HashSet<u64>,
    stats: SamplerStats,
}

impl Sampler {
    /// Creates the runtime and programs the PMU (the "change of the
    /// underlying OS" the paper notes CSOD avoids).
    pub fn new(machine: &mut Machine, config: SamplerConfig) -> Self {
        machine.pmu_enable_with_phase(config.sample_period, config.phase);
        Sampler {
            config,
            objects: BTreeMap::new(),
            freed_order: std::collections::VecDeque::new(),
            reports: Vec::new(),
            reported_sites: std::collections::HashSet::new(),
            stats: SamplerStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Interposed `malloc` of the custom allocator: pads the request
    /// with a guard zone and records the bounds.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn malloc(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        size: u64,
    ) -> Result<VirtAddr, HeapError> {
        // The custom allocator's bounds bookkeeping costs about a
        // hash/tree operation per allocation.
        machine.charge(CostDomain::Tool, machine.costs().ctx_lookup);
        let user = heap.malloc(machine, size + GUARD_BYTES)?;
        // Recycled blocks shadow any stale freed-object record.
        if self.objects.remove(&user.as_u64()).is_some() {
            self.freed_order.retain(|&k| k != user.as_u64());
        }
        self.objects.insert(
            user.as_u64(),
            TrackedObject {
                user,
                requested: size,
                guard_end: user + size + GUARD_BYTES,
                freed: false,
            },
        );
        self.stats.allocations += 1;
        Ok(user)
    }

    /// Interposed `free`: keeps the bounds around (marked freed) so
    /// sampled dangling accesses classify as use-after-free.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidPointer`] for unknown pointers.
    pub fn free(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        user: VirtAddr,
    ) -> Result<(), HeapError> {
        machine.charge(CostDomain::Tool, machine.costs().ctx_lookup);
        let Some(object) = self.objects.get_mut(&user.as_u64()) else {
            return Err(HeapError::InvalidPointer(user));
        };
        if object.freed {
            return Err(HeapError::InvalidPointer(user));
        }
        object.freed = true;
        self.stats.frees += 1;
        heap.free(machine, user)?;
        self.freed_order.push_back(user.as_u64());
        while self.freed_order.len() > self.config.freed_tracking {
            let stale = self.freed_order.pop_front().expect("non-empty");
            self.objects.remove(&stale);
        }
        Ok(())
    }

    /// Drains the machine's PMU samples and classifies each against the
    /// allocator metadata.
    pub fn poll(&mut self, machine: &mut Machine) {
        for sample in machine.take_pmu_samples() {
            self.stats.samples += 1;
            let Some(object) = self.object_covering(sample.addr) else {
                continue;
            };
            let offset = sample.addr - object.user;
            let bug = if object.freed {
                Some(SamplerBug::UseAfterFree)
            } else if offset >= object.requested {
                Some(SamplerBug::Overflow)
            } else {
                None
            };
            if let Some(bug) = bug {
                if self.reported_sites.insert(sample.site.0) {
                    self.reports.push(SamplerReport {
                        bug,
                        access: sample.kind,
                        addr: sample.addr,
                        thread: sample.thread,
                        site: sample.site,
                    });
                }
            }
        }
    }

    fn object_covering(&self, addr: VirtAddr) -> Option<TrackedObject> {
        let (_, object) = self.objects.range(..=addr.as_u64()).next_back()?;
        (addr < object.guard_end).then_some(*object)
    }

    /// End of execution: stop sampling.
    pub fn finish(&mut self, machine: &mut Machine) {
        self.poll(machine);
        machine.pmu_disable();
    }

    /// All reports so far.
    pub fn reports(&self) -> &[SamplerReport] {
        &self.reports
    }

    /// Whether any bug was reported.
    pub fn detected(&self) -> bool {
        !self.reports.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> SamplerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::HeapConfig;

    fn setup(period: u64) -> (Machine, SimHeap, Sampler) {
        let mut machine = Machine::new();
        let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let sampler = Sampler::new(
            &mut machine,
            SamplerConfig {
                sample_period: period,
                ..SamplerConfig::default()
            },
        );
        (machine, heap, sampler)
    }

    #[test]
    fn sampled_guard_access_is_an_overflow() {
        let (mut m, mut h, mut s) = setup(1);
        let p = s.malloc(&mut m, &mut h, 40).unwrap();
        m.app_write(ThreadId::MAIN, p + 40, 8).unwrap();
        s.poll(&mut m);
        assert!(s.detected());
        assert_eq!(s.reports()[0].bug, SamplerBug::Overflow);
    }

    #[test]
    fn unsampled_overflow_is_missed() {
        let (mut m, mut h, mut s) = setup(1_000);
        let p = s.malloc(&mut m, &mut h, 40).unwrap();
        // One overflowing access among few: virtually never sampled.
        m.app_write(ThreadId::MAIN, p + 40, 8).unwrap();
        s.poll(&mut m);
        assert!(!s.detected(), "the probabilistic miss CSOD avoids per-object");
    }

    #[test]
    fn repeated_overflow_is_caught_once_sampled() {
        let (mut m, mut h, mut s) = setup(16);
        let p = s.malloc(&mut m, &mut h, 24).unwrap();
        for _ in 0..64 {
            m.app_read(ThreadId::MAIN, p + 24, 8).unwrap();
        }
        s.poll(&mut m);
        assert!(s.detected(), "4 of 64 overflowing accesses are sampled");
        assert_eq!(s.reports().len(), 1, "one report per site");
    }

    #[test]
    fn in_bounds_accesses_never_report() {
        let (mut m, mut h, mut s) = setup(1);
        let p = s.malloc(&mut m, &mut h, 64).unwrap();
        for off in (0..64).step_by(8) {
            m.app_write(ThreadId::MAIN, p + off, 8).unwrap();
        }
        s.poll(&mut m);
        assert!(!s.detected());
        assert_eq!(s.stats().samples, 8);
    }

    #[test]
    fn use_after_free_detected_while_tracked() {
        let (mut m, mut h, mut s) = setup(1);
        let p = s.malloc(&mut m, &mut h, 32).unwrap();
        s.free(&mut m, &mut h, p).unwrap();
        m.app_read(ThreadId::MAIN, p + 8, 8).unwrap();
        s.poll(&mut m);
        assert_eq!(s.reports()[0].bug, SamplerBug::UseAfterFree);
    }

    #[test]
    fn recycled_blocks_do_not_false_positive() {
        let (mut m, mut h, mut s) = setup(1);
        let p = s.malloc(&mut m, &mut h, 32).unwrap();
        s.free(&mut m, &mut h, p).unwrap();
        let q = s.malloc(&mut m, &mut h, 32).unwrap();
        assert_eq!(p, q, "allocator recycles");
        m.app_write(ThreadId::MAIN, q, 8).unwrap();
        s.poll(&mut m);
        assert!(!s.detected(), "fresh object over old address is clean");
    }

    #[test]
    fn double_free_is_rejected() {
        let (mut m, mut h, mut s) = setup(1);
        let p = s.malloc(&mut m, &mut h, 16).unwrap();
        s.free(&mut m, &mut h, p).unwrap();
        assert_eq!(s.free(&mut m, &mut h, p), Err(HeapError::InvalidPointer(p)));
    }

    #[test]
    fn freed_tracking_is_bounded() {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut s = Sampler::new(
            &mut machine,
            SamplerConfig {
                sample_period: 1,
                phase: 0,
                freed_tracking: 4,
            },
        );
        let mut ptrs = Vec::new();
        for _ in 0..10 {
            // Distinct sizes avoid freelist recycling within the loop.
            ptrs.push(s.malloc(&mut machine, &mut heap, 600).unwrap());
            let p = *ptrs.last().unwrap();
            s.free(&mut machine, &mut heap, p).unwrap();
        }
        assert!(s.objects.len() <= 5, "metadata bounded: {}", s.objects.len());
    }

    #[test]
    fn sampling_cost_is_charged_to_tool() {
        let (mut m, mut h, mut s) = setup(10);
        let p = s.malloc(&mut m, &mut h, 64).unwrap();
        let before = m.counter().tool_ns();
        for _ in 0..100 {
            m.app_read(ThreadId::MAIN, p, 8).unwrap();
        }
        assert_eq!(m.counter().tool_ns() - before, 10 * m.costs().pmu_sample);
        s.finish(&mut m);
    }

    #[test]
    fn default_period_tracks_the_shared_paper_constants() {
        // The tuned value the experiments were calibrated against; if
        // the shared constant moves, this drift check makes the change
        // a conscious one instead of a silent re-tuning.
        assert_eq!(SamplerConfig::default().sample_period, 1_000);
        assert_eq!(
            SamplerConfig::default().sample_period,
            u64::from(csod_core::paper::BURST_ALLOC_THRESHOLD) / 5
        );
    }
}
