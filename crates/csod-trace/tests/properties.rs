//! Property tests for the lock-free trace ring (ISSUE 5 satellite):
//! concurrent writers never lose more events than ring capacity
//! accounts for, and drained streams are time-ordered.

#![cfg(not(feature = "trace-off"))]

use csod_trace::{TraceEventKind, Tracer};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Checks the merged stream is sorted by timestamp, and that each
/// thread's events appear in emission order (we encode the per-thread
/// emission index in payload word `a`).
fn assert_time_ordered(stream: &csod_trace::TraceStream) {
    let mut last_at = 0u64;
    let mut last_seq_per_thread = std::collections::HashMap::new();
    for e in &stream.events {
        assert!(e.at_ns >= last_at, "merged stream out of time order");
        last_at = e.at_ns;
        let last = last_seq_per_thread.entry(e.thread).or_insert(0u64);
        assert!(
            e.a >= *last,
            "thread {} events out of emission order: {} after {}",
            e.thread,
            e.a,
            *last
        );
        *last = e.a;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quiescent accounting: after writers finish, one drain sees every
    /// event either delivered or counted dropped, and a ring never
    /// drops more than the events beyond its capacity.
    #[test]
    fn drained_plus_dropped_equals_emitted(
        capacity in 2usize..128,
        per_writer in proptest::collection::vec(1u64..600, 1..5),
    ) {
        let tracer = Tracer::new(capacity);
        let cap = tracer.capacity() as u64;
        let mut handles: Vec<_> = (0..per_writer.len() as u32)
            .map(|t| tracer.register(t))
            .collect();
        let mut emitted = 0u64;
        let mut over_capacity = 0u64;
        for (h, &n) in handles.iter_mut().zip(&per_writer) {
            for i in 0..n {
                h.emit(i, TraceEventKind::AllocSampled, i, 0);
            }
            emitted += n;
            over_capacity += n.saturating_sub(cap);
        }
        let stream = tracer.drain();
        prop_assert_eq!(stream.events.len() as u64 + stream.dropped, emitted);
        // Never lose more than what the ring capacity accounts for.
        prop_assert_eq!(stream.dropped, over_capacity);
        assert_time_ordered(&stream);
        // A second drain after quiescence has nothing left.
        let again = tracer.drain();
        prop_assert_eq!(again.events.len(), 0);
        prop_assert_eq!(again.dropped, 0);
    }

    /// Concurrent writers on real threads racing a drain loop: nothing
    /// is double-counted or invented — the final tally of delivered
    /// plus dropped events equals exactly what was emitted, and every
    /// drained batch is time-ordered with per-thread order intact.
    #[test]
    fn concurrent_writers_account_for_every_event(
        capacity in 4usize..64,
        writers in 1usize..4,
        events_per_writer in 50u64..400,
    ) {
        let tracer = Arc::new(Tracer::new(capacity));
        let done = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..writers as u32)
            .map(|t| {
                let mut handle = tracer.register(t);
                std::thread::spawn(move || {
                    for i in 0..events_per_writer {
                        // Per-thread timestamps are monotone, as the
                        // virtual clock guarantees in the real runtime.
                        handle.emit(i, TraceEventKind::WatchInstalled, i, u64::from(t));
                    }
                })
            })
            .collect();

        let drainer = {
            let tracer = Arc::clone(&tracer);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut delivered = 0u64;
                let mut dropped = 0u64;
                while !done.load(Ordering::Acquire) {
                    let stream = tracer.drain();
                    assert_time_ordered(&stream);
                    delivered += stream.events.len() as u64;
                    dropped += stream.dropped;
                }
                (delivered, dropped)
            })
        };

        for t in threads {
            t.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let (mut delivered, mut dropped) = drainer.join().unwrap();
        // Final quiescent drain picks up whatever the loop missed.
        let last = tracer.drain();
        assert_time_ordered(&last);
        delivered += last.events.len() as u64;
        dropped += last.dropped;
        prop_assert_eq!(delivered + dropped, events_per_writer * writers as u64);
    }
}
