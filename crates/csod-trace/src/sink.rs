//! Pluggable line-oriented sinks for structured records.
//!
//! The trap-report pipeline renders each report to one JSON line and
//! hands it to every configured sink. Sinks are deliberately dumb —
//! they see opaque lines, not report types — so the set can grow
//! (syslog, sockets) without touching the report schema.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A destination for serialized one-line records. `Send` because the
/// runtime that owns the pipeline crosses threads in parallel drivers.
pub trait RecordSink: Debug + Send {
    /// Accepts one record, already serialized without its trailing
    /// newline. Sinks must not fail loudly — observability never takes
    /// the process down.
    fn write_line(&mut self, line: &str);

    /// Flushes any buffering; default is a no-op.
    fn flush(&mut self) {}
}

/// Collects records in memory behind a shared handle, so tests and
/// drivers can read back what the pipeline emitted.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A second handle onto the same storage: register one clone with
    /// the pipeline, keep the other to inspect.
    pub fn handle(&self) -> MemorySink {
        self.clone()
    }

    /// Everything written so far, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink poisoned").clone()
    }

    /// Number of records written.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("memory sink poisoned").len()
    }

    /// `true` when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RecordSink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink poisoned")
            .push(line.to_owned());
    }
}

/// Appends records to a JSONL file, one record per line. Creation and
/// writes are best-effort: an unwritable path degrades to a no-op sink
/// rather than failing the traced program.
///
/// Records are buffered and written out whole-lines-at-a-time on
/// [`RecordSink::flush`], when the buffer crosses
/// [`JsonlFileSink::BUFFER_FLUSH_BYTES`], and on `Drop` — including the
/// drop that happens while a panic unwinds the owning runtime — so a
/// crashed writer leaves at worst a truncated final line, never a
/// silently empty file.
#[derive(Debug)]
pub struct JsonlFileSink {
    path: PathBuf,
    file: Option<File>,
    buf: String,
}

impl JsonlFileSink {
    /// Buffered bytes beyond which `write_line` flushes on its own, so
    /// an abruptly killed process bounds what it can lose.
    pub const BUFFER_FLUSH_BYTES: usize = 32 * 1024;

    /// Opens (creating or appending to) the file at `path`.
    pub fn new(path: &Path) -> JsonlFileSink {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok();
        JsonlFileSink {
            path: path.to_owned(),
            file,
            buf: String::new(),
        }
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `false` when the file could not be opened and writes are dropped.
    pub fn is_open(&self) -> bool {
        self.file.is_some()
    }

    /// Records buffered but not yet written to the file, in bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }
}

impl RecordSink for JsonlFileSink {
    fn write_line(&mut self, line: &str) {
        if self.file.is_none() {
            return;
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        if self.buf.len() >= Self::BUFFER_FLUSH_BYTES {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if let Some(file) = self.file.as_mut() {
            if !self.buf.is_empty() {
                let _ = file.write_all(self.buf.as_bytes());
                self.buf.clear();
            }
            let _ = file.flush();
        }
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        // Runs on orderly shutdown *and* during panic unwinding: the
        // records a crashing run buffered still reach the file.
        self.flush();
    }
}

/// Writes records to stderr, one per line.
#[derive(Debug, Default)]
pub struct StderrSink;

impl StderrSink {
    /// A stderr sink.
    pub fn new() -> StderrSink {
        StderrSink
    }
}

impl RecordSink for StderrSink {
    fn write_line(&mut self, line: &str) {
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_shares_storage_across_handles() {
        let sink = MemorySink::new();
        let mut writer: Box<dyn RecordSink> = Box::new(sink.handle());
        writer.write_line("{\"a\":1}");
        writer.write_line("{\"b\":2}");
        writer.flush();
        assert_eq!(sink.lines(), vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let path = std::env::temp_dir().join(format!(
            "csod-trace-sink-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlFileSink::new(&path);
            assert!(sink.is_open());
            assert_eq!(sink.path(), path.as_path());
            sink.write_line("{\"n\":1}");
            sink.write_line("{\"n\":2}");
            sink.flush();
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"n\":1}\n{\"n\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_path_degrades_silently() {
        let mut sink = JsonlFileSink::new(Path::new("/nonexistent-dir/x/y.jsonl"));
        assert!(!sink.is_open());
        sink.write_line("dropped");
        sink.flush();
    }

    #[test]
    fn dropped_sink_flushes_its_buffer() {
        let path = std::env::temp_dir().join(format!(
            "csod-trace-sink-drop-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlFileSink::new(&path);
            sink.write_line("{\"n\":1}");
            assert!(sink.buffered_bytes() > 0, "line is buffered, not written");
            // No flush: the Drop impl is the only thing standing between
            // this record and oblivion.
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"n\":1}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panic_unwind_still_flushes_the_sink() {
        let path = std::env::temp_dir().join(format!(
            "csod-trace-sink-unwind-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let p = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut sink = JsonlFileSink::new(&p);
            sink.write_line("{\"survives\":true}");
            panic!("writer dies mid-run");
        });
        assert!(result.is_err());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"survives\":true}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn big_buffers_spill_before_the_threshold_hurts() {
        let path = std::env::temp_dir().join(format!(
            "csod-trace-sink-spill-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlFileSink::new(&path);
        let line = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
        for _ in 0..(JsonlFileSink::BUFFER_FLUSH_BYTES / 1024 + 2) {
            sink.write_line(&line);
        }
        // The auto-spill kept the buffer bounded without an explicit
        // flush call.
        assert!(sink.buffered_bytes() < JsonlFileSink::BUFFER_FLUSH_BYTES);
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
}
