//! Power-of-two-bucketed histograms cheap enough for runtime paths.
//!
//! A recorded value lands in bucket `⌈log2(v)⌉` — one increment and a
//! handful of scalar updates, no allocation. That resolution (each
//! bucket spans a 2× range) is plenty for the distributions tracked
//! here: watch lifetimes, slot occupancy, per-context sampling rates.

/// Buckets cover `0, 1, 2, 4, … 2^63, u64::MAX` — 66 in total (the
/// last catches values above `2^63`).
const BUCKETS: usize = 66;

/// An accumulating histogram with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Index of the bucket whose upper bound is the smallest power of two
/// `>= value` (bucket 0 holds exact zeros).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - (value - 1).leading_zeros() as usize + 1
    }
}

/// Upper bound of bucket `idx` (inclusive).
fn bucket_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64.checked_shl(idx as u32 - 1).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Immutable point-in-time copy for serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (bucket_bound(i), n))
                .collect(),
        }
    }
}

/// A serializable point-in-time view of a [`Histogram`]. Buckets are
/// `(inclusive upper bound, count)` pairs for non-empty buckets only,
/// in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u128,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `(upper_bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); an upper estimate within one 2× bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(u64::MAX), 65);
        assert_eq!(bucket_bound(65), u64::MAX);
        for idx in [0usize, 1, 2, 3, 10, 64, 65] {
            let bound = bucket_bound(idx);
            assert_eq!(bucket_index(bound), idx, "bound {bound} in own bucket");
        }
    }

    #[test]
    fn snapshot_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 26.5).abs() < 1e-9);
        let total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn quantiles_are_bucket_upper_estimates() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 16); // 10 rounds up to bucket bound 16
        assert_eq!(s.quantile(1.0), 1000); // clamped to observed max
        assert_eq!(s.quantile(0.0), 16); // lowest non-empty bucket
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
