//! The event taxonomy: everything the runtime can tell the tracer.

use std::fmt;

/// What happened. Each variant carries its payload in the two generic
/// words of [`TraceEvent`] (`a`, `b`) — documented per variant — so
/// events stay fixed-size and ring slots never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// An allocation's sampling decision came back *watch* —
    /// `a` = dense context id, `b` = decision probability in ppm.
    AllocSampled = 0,
    /// An allocation's sampling decision came back *skip* —
    /// `a` = dense context id, `b` = decision probability in ppm.
    AllocSkipped = 1,
    /// A watchpoint was installed into a free slot —
    /// `a` = object start address, `b` = dense context id.
    WatchInstalled = 2,
    /// A watchpoint was installed by preempting a lower-probability
    /// victim — `a` = new object start, `b` = new dense context id.
    WatchPreempted = 3,
    /// A watchpoint was removed because its object was freed —
    /// `a` = object start address, `b` = 0.
    WatchRemoved = 4,
    /// A deferred-teardown batch was drained —
    /// `a` = descriptors torn down, `b` = 0.
    TeardownBatch = 5,
    /// SIGTRAP resolved to a live watchpoint —
    /// `a` = faulting address, `b` = dense context id.
    TrapFired = 6,
    /// SIGTRAP arrived for a logically removed watchpoint (the
    /// stale-trap rule) — `a` = raw descriptor, `b` = 0.
    TrapSuppressed = 7,
    /// The degradation ladder left watchpoint mode —
    /// `a` = 1 (canary-only), `b` = consecutive failures at the switch.
    DegradationEnter = 8,
    /// A probe succeeded and watchpoint mode resumed —
    /// `a` = 0, `b` = 0.
    DegradationExit = 9,
    /// A floor-level context was revived (Section IV-A) —
    /// `a` = dense context id, `b` = post-revive probability in ppm.
    Revive = 10,
    /// A context entered burst throttling —
    /// `a` = dense context id, `b` = throttled probability in ppm.
    BurstEnter = 11,
    /// A watchpoint install failed at the backend —
    /// `a` = object start address, `b` = prior attempts.
    InstallFailed = 12,
    /// A free skipped the watchpoint manager entirely because the
    /// watched-address filter proved the object unwatched —
    /// `a` = object start address, `b` = 0.
    FreeFiltered = 13,
}

impl TraceEventKind {
    /// All kinds, in tag order — for summaries that count per kind.
    pub const ALL: [TraceEventKind; 14] = [
        TraceEventKind::AllocSampled,
        TraceEventKind::AllocSkipped,
        TraceEventKind::WatchInstalled,
        TraceEventKind::WatchPreempted,
        TraceEventKind::WatchRemoved,
        TraceEventKind::TeardownBatch,
        TraceEventKind::TrapFired,
        TraceEventKind::TrapSuppressed,
        TraceEventKind::DegradationEnter,
        TraceEventKind::DegradationExit,
        TraceEventKind::Revive,
        TraceEventKind::BurstEnter,
        TraceEventKind::InstallFailed,
        TraceEventKind::FreeFiltered,
    ];

    /// Stable snake_case name — used by summaries and serializers.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::AllocSampled => "alloc_sampled",
            TraceEventKind::AllocSkipped => "alloc_skipped",
            TraceEventKind::WatchInstalled => "watch_installed",
            TraceEventKind::WatchPreempted => "watch_preempted",
            TraceEventKind::WatchRemoved => "watch_removed",
            TraceEventKind::TeardownBatch => "teardown_batch",
            TraceEventKind::TrapFired => "trap_fired",
            TraceEventKind::TrapSuppressed => "trap_suppressed",
            TraceEventKind::DegradationEnter => "degradation_enter",
            TraceEventKind::DegradationExit => "degradation_exit",
            TraceEventKind::Revive => "revive",
            TraceEventKind::BurstEnter => "burst_enter",
            TraceEventKind::InstallFailed => "install_failed",
            TraceEventKind::FreeFiltered => "free_filtered",
        }
    }

    // Only the real ring decodes tags; the trace-off stub never does.
    #[cfg_attr(feature = "trace-off", allow(dead_code))]
    pub(crate) fn from_tag(tag: u8) -> Option<TraceEventKind> {
        TraceEventKind::ALL.get(tag as usize).copied()
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced runtime event. Fixed-size and `Copy`, so a ring slot is
/// four machine words of payload plus a sequence word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual nanoseconds since machine boot.
    pub at_ns: u64,
    /// The acting thread's dense id.
    pub thread: u32,
    /// What happened.
    pub kind: TraceEventKind,
    /// First payload word — see [`TraceEventKind`] for the meaning.
    pub a: u64,
    /// Second payload word — see [`TraceEventKind`] for the meaning.
    pub b: u64,
}

// Ring wire format; unused when the ring is compiled out.
#[cfg_attr(feature = "trace-off", allow(dead_code))]
impl TraceEvent {
    /// Packs the event into the ring's four data words.
    pub(crate) fn encode(self) -> [u64; 4] {
        [
            self.at_ns,
            u64::from(self.kind as u8) | (u64::from(self.thread) << 8),
            self.a,
            self.b,
        ]
    }

    /// Unpacks four data words; `None` for an unknown kind tag (a torn
    /// slot that slipped past the sequence check).
    pub(crate) fn decode(w: [u64; 4]) -> Option<TraceEvent> {
        // The tag occupies the low byte by construction.
        #[allow(clippy::cast_possible_truncation)]
        let kind = TraceEventKind::from_tag(w[1] as u8)?;
        #[allow(clippy::cast_possible_truncation)]
        let thread = (w[1] >> 8) as u32;
        Some(TraceEvent {
            at_ns: w[0],
            thread,
            kind,
            a: w[2],
            b: w[3],
        })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ns t{} {} a={:#x} b={}",
            self.at_ns, self.thread, self.kind, self.a, self.b
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for (i, kind) in TraceEventKind::ALL.into_iter().enumerate() {
            let e = TraceEvent {
                at_ns: 1_000 + i as u64,
                thread: 42,
                kind,
                a: 0xDEAD_BEEF,
                b: u64::MAX,
            };
            assert_eq!(TraceEvent::decode(e.encode()), Some(e));
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(TraceEvent::decode([0, 200, 0, 0]), None);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in TraceEventKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
            assert_eq!(TraceEventKind::from_tag(kind as u8), Some(kind));
        }
        assert!(TraceEventKind::AllocSampled.to_string().contains("alloc"));
    }
}
