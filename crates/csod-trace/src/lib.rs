//! # csod-trace — the always-on observability layer
//!
//! CSOD is pitched as a production detector; the value of a sampled
//! production detector is realized through its telemetry. This crate is
//! the substrate the rest of the reproduction reports through:
//!
//! * [`Tracer`] / [`ThreadTracer`] — a lock-free, per-thread bounded
//!   ring-buffer event tracer. Each thread writes [`TraceEvent`]s into
//!   its own ring with plain atomic stores (no locks, no allocation on
//!   the hot path); [`Tracer::drain`] merges every ring into one
//!   time-ordered stream. The `trace-off` cargo feature compiles the
//!   whole thing down to no-ops.
//! * [`Histogram`] — power-of-two-bucketed latency/occupancy histograms
//!   cheap enough to record on runtime paths.
//! * [`MetricsRegistry`] — named counters, gauges and histograms with
//!   JSON and Prometheus-style text serialization.
//! * [`RecordSink`] — pluggable line-oriented sinks ([`MemorySink`],
//!   [`JsonlFileSink`], [`StderrSink`]) for structured trap reports.
//! * [`BoundedLog`] — the generic bounded ring with eviction accounting
//!   shared with the machine's flight recorder.
//!
//! The crate is dependency-free and knows nothing about the simulator:
//! timestamps are plain nanosecond counts, thread ids plain `u32`s.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::perf)]

mod event;
mod histogram;
mod log;
mod metrics;
mod ring;
mod sink;

pub use event::{TraceEvent, TraceEventKind};
pub use histogram::{Histogram, HistogramSnapshot};
pub use log::BoundedLog;
pub use metrics::MetricsRegistry;
pub use ring::{ThreadTracer, TraceStream, Tracer, DEFAULT_RING_CAPACITY};
pub use sink::{JsonlFileSink, MemorySink, RecordSink, StderrSink};

/// `true` when the crate was built with the `trace-off` feature — the
/// tracer is compiled out and every [`ThreadTracer::emit`] is a no-op.
pub const fn trace_compiled_off() -> bool {
    cfg!(feature = "trace-off")
}

/// Minimal JSON string escaping for hand-rolled serializers: quotes,
/// backslashes and control characters. Everything this workspace writes
/// into JSON (source locations, metric names) is ASCII, so this is
/// complete for its inputs while staying allocation-light.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("plain.c:12"), "plain.c:12");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
