//! The lock-free per-thread event rings and their merge-drain.
//!
//! Each registered thread owns one bounded ring and is its only writer:
//! a push is one claim store, four relaxed data stores and one release
//! commit store — no locks, no CAS loops, no allocation, no per-slot
//! sequence word. The two counters make concurrent drains safe: `head`
//! counts *claimed* positions (bumped before the data is written),
//! `tail` counts *committed* ones (bumped after). A reader scans up to
//! `tail`, then re-reads `head`; any scanned position the writer could
//! have been overwriting meanwhile (`pos + capacity <= head`) is
//! discarded as torn rather than surfaced. A writer that laps the ring
//! overwrites the oldest events; the drain accounts for every
//! overwritten or discarded event in [`TraceStream::dropped`], so
//! `drained + dropped == emitted` always holds per ring.
//!
//! With the `trace-off` cargo feature every type below keeps its API but
//! compiles to nothing: no rings are allocated and
//! [`ThreadTracer::emit`] is an empty inline function.

use crate::event::{TraceEvent, TraceEventKind};

/// Ring capacity used when the embedder does not specify one: room for
/// the last thousand events per thread at ~32 KiB per ring — small
/// enough that cycling through the ring stays inside L1/L2 and the
/// emit path does not evict the allocator's working set.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A drained, time-ordered view over every per-thread ring.
#[derive(Debug, Clone, Default)]
pub struct TraceStream {
    /// The surviving events, sorted by timestamp (stable: events of one
    /// thread keep their emission order on timestamp ties).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around or torn mid-overwrite slots since
    /// the previous drain.
    pub dropped: u64,
}

impl TraceStream {
    /// Number of drained events of `kind`.
    pub fn count_of(&self, kind: TraceEventKind) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// Per-kind event counts in tag order, omitting kinds never seen.
    pub fn counts(&self) -> Vec<(TraceEventKind, u64)> {
        let mut counts = [0u64; TraceEventKind::ALL.len()];
        for e in &self.events {
            counts[e.kind as usize] += 1;
        }
        TraceEventKind::ALL
            .into_iter()
            .zip(counts)
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

#[cfg(not(feature = "trace-off"))]
mod imp {
    use super::{TraceStream, DEFAULT_RING_CAPACITY};
    use crate::event::{TraceEvent, TraceEventKind};
    use std::sync::atomic::{fence, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// One ring slot: the four encoded event words, all-atomic so
    /// readers and the writer race without UB. 32-byte aligned — two
    /// slots per cache line, never straddling one.
    #[derive(Debug, Default)]
    #[repr(align(32))]
    struct Slot {
        w: [AtomicU64; 4],
    }

    #[derive(Debug)]
    struct Ring {
        /// Positions ever *claimed* by the writer: bumped before the
        /// data stores, so `head` bounds what may be mid-overwrite.
        head: AtomicU64,
        /// Positions *committed*: bumped after the data stores, so
        /// everything below `tail` was fully written at some point.
        tail: AtomicU64,
        /// Position the last drain consumed up to.
        reader: AtomicU64,
        /// `capacity - 1`; capacity is a power of two.
        mask: usize,
        slots: Box<[Slot]>,
    }

    impl Ring {
        fn new(capacity: usize) -> Ring {
            let capacity = capacity.max(2).next_power_of_two();
            let slots = (0..capacity).map(|_| Slot::default()).collect();
            Ring {
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
                reader: AtomicU64::new(0),
                mask: capacity - 1,
                slots,
            }
        }

        /// Drains everything still readable into `out`; returns the
        /// number of events lost since the previous drain. Runs
        /// concurrently with the writer: after reading, `head` is
        /// re-checked and every position the writer may have been
        /// overwriting meanwhile counts as lost rather than surfacing
        /// torn.
        fn drain_into(&self, out: &mut Vec<TraceEvent>) -> u64 {
            let tail = self.tail.load(Ordering::Acquire);
            let prev = self.reader.load(Ordering::Relaxed);
            let cap = self.mask as u64 + 1;
            let start = prev.max(tail.saturating_sub(cap));
            let mut lost = start - prev;
            let mut batch: Vec<(u64, Option<TraceEvent>)> =
                Vec::with_capacity(usize::try_from(tail - start).unwrap_or(0));
            for pos in start..tail {
                let slot = &self.slots[usize::try_from(pos).unwrap_or(usize::MAX) & self.mask];
                let words = [
                    slot.w[0].load(Ordering::Relaxed),
                    slot.w[1].load(Ordering::Relaxed),
                    slot.w[2].load(Ordering::Relaxed),
                    slot.w[3].load(Ordering::Relaxed),
                ];
                batch.push((pos, TraceEvent::decode(words)));
            }
            // The writer claims `head` *before* its data stores: slot
            // `pos` can only have been mid-rewrite if position
            // `pos + cap` was already claimed (`head > pos + cap`), so
            // such positions may be torn and are discarded. The fence
            // orders the data loads above before this re-check.
            fence(Ordering::Acquire);
            let head_now = self.head.load(Ordering::Relaxed);
            for (pos, event) in batch {
                match event {
                    Some(e) if pos + cap >= head_now => out.push(e),
                    _ => lost += 1,
                }
            }
            self.reader.store(tail, Ordering::Relaxed);
            lost
        }
    }

    /// The tracer: hands out per-thread writer handles and merges their
    /// rings into one stream on [`Tracer::drain`].
    #[derive(Debug)]
    pub struct Tracer {
        capacity: usize,
        rings: Mutex<Vec<Arc<Ring>>>,
    }

    impl Tracer {
        /// Creates a tracer whose rings keep the last `capacity` events
        /// per thread (rounded up to a power of two).
        pub fn new(capacity: usize) -> Tracer {
            Tracer {
                capacity: capacity.max(2).next_power_of_two(),
                rings: Mutex::new(Vec::new()),
            }
        }

        /// A tracer with [`DEFAULT_RING_CAPACITY`].
        pub fn with_default_capacity() -> Tracer {
            Tracer::new(DEFAULT_RING_CAPACITY)
        }

        /// Per-ring capacity in events.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Registers a new writer for `thread` and returns its handle.
        /// The handle is the ring's *only* writer — it is not `Clone`,
        /// and `emit` takes `&mut self` — which is what makes the push
        /// path safe without compare-and-swap.
        pub fn register(&self, thread: u32) -> ThreadTracer {
            let ring = Arc::new(Ring::new(self.capacity));
            self.rings
                .lock()
                .expect("tracer registry poisoned")
                .push(Arc::clone(&ring));
            ThreadTracer { ring, thread }
        }

        /// Merges every ring's unread events into one stream sorted by
        /// timestamp (stable, so each thread's events keep their
        /// emission order on ties). Safe to call while writers are live;
        /// events overwritten or torn mid-drain are counted in
        /// [`TraceStream::dropped`].
        pub fn drain(&self) -> TraceStream {
            let rings = self.rings.lock().expect("tracer registry poisoned");
            let mut stream = TraceStream::default();
            for ring in rings.iter() {
                stream.dropped += ring.drain_into(&mut stream.events);
            }
            stream.events.sort_by_key(|e| e.at_ns);
            stream
        }
    }

    /// One thread's writer handle (see [`Tracer::register`]).
    #[derive(Debug)]
    pub struct ThreadTracer {
        ring: Arc<Ring>,
        thread: u32,
    }

    impl ThreadTracer {
        /// The dense thread id this handle writes as.
        pub fn thread(&self) -> u32 {
            self.thread
        }

        /// Total events ever pushed through this handle.
        pub fn emitted(&self) -> u64 {
            self.ring.head.load(Ordering::Relaxed)
        }

        /// Appends one event. Wait-free: one claim store, four data
        /// stores, one commit store, evicting the oldest event when the
        /// ring is full.
        #[inline]
        pub fn emit(&mut self, at_ns: u64, kind: TraceEventKind, a: u64, b: u64) {
            let pos = self.ring.head.load(Ordering::Relaxed);
            // Claim before writing: readers re-check `head` after their
            // data loads and discard any position this rewrite could
            // have torn. The release fence keeps the data stores below
            // from becoming visible before the claim.
            self.ring.head.store(pos + 1, Ordering::Relaxed);
            fence(Ordering::Release);
            let slot = &self.ring.slots[usize::try_from(pos).unwrap_or(usize::MAX) & self.ring.mask];
            let words = TraceEvent {
                at_ns,
                thread: self.thread,
                kind,
                a,
                b,
            }
            .encode();
            slot.w[0].store(words[0], Ordering::Relaxed);
            slot.w[1].store(words[1], Ordering::Relaxed);
            slot.w[2].store(words[2], Ordering::Relaxed);
            slot.w[3].store(words[3], Ordering::Relaxed);
            // Commit: readers only scan below `tail`, so the slot is
            // visible only once fully written.
            self.ring.tail.store(pos + 1, Ordering::Release);
            // Warm the next slot's cache line off the critical path:
            // the ring streams through memory, so without this every
            // other emit opens its line with a demand miss. A relaxed
            // load is enough — drains are rare, so the line arrives
            // exclusive and the eventual stores upgrade it for free.
            let next =
                &self.ring.slots[usize::try_from(pos + 1).unwrap_or(usize::MAX) & self.ring.mask];
            let _ = next.w[0].load(Ordering::Relaxed);
        }
    }
}

#[cfg(feature = "trace-off")]
mod imp {
    use super::{TraceStream, DEFAULT_RING_CAPACITY};
    use crate::event::TraceEventKind;

    /// Compiled-out tracer: the API of the real one, none of the cost.
    #[derive(Debug)]
    pub struct Tracer {
        capacity: usize,
    }

    impl Tracer {
        /// Creates a tracer stub; no memory is allocated.
        pub fn new(capacity: usize) -> Tracer {
            Tracer {
                capacity: capacity.max(2).next_power_of_two(),
            }
        }

        /// A tracer stub with the default capacity constant.
        pub fn with_default_capacity() -> Tracer {
            Tracer::new(DEFAULT_RING_CAPACITY)
        }

        /// The capacity the real tracer would have had.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Returns a no-op writer handle.
        pub fn register(&self, thread: u32) -> ThreadTracer {
            ThreadTracer { thread }
        }

        /// Always the empty stream.
        pub fn drain(&self) -> TraceStream {
            TraceStream::default()
        }
    }

    /// No-op writer handle.
    #[derive(Debug)]
    pub struct ThreadTracer {
        thread: u32,
    }

    impl ThreadTracer {
        /// The dense thread id this handle writes as.
        pub fn thread(&self) -> u32 {
            self.thread
        }

        /// Always zero when compiled out.
        pub fn emitted(&self) -> u64 {
            0
        }

        /// Compiled out: does nothing.
        #[inline(always)]
        pub fn emit(&mut self, _at_ns: u64, _kind: TraceEventKind, _a: u64, _b: u64) {}
    }
}

pub use imp::{ThreadTracer, Tracer};

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    fn ev(handle: &mut ThreadTracer, at: u64) {
        handle.emit(at, TraceEventKind::AllocSampled, at, 0);
    }

    #[test]
    fn drain_returns_events_in_time_order_across_threads() {
        let tracer = Tracer::new(64);
        let mut a = tracer.register(0);
        let mut b = tracer.register(1);
        ev(&mut a, 10);
        ev(&mut b, 5);
        ev(&mut a, 20);
        ev(&mut b, 15);
        let stream = tracer.drain();
        assert_eq!(stream.dropped, 0);
        let times: Vec<u64> = stream.events.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![5, 10, 15, 20]);
    }

    #[test]
    fn wraparound_drops_oldest_and_accounts_for_them() {
        let tracer = Tracer::new(4);
        let mut h = tracer.register(0);
        for i in 0..10 {
            ev(&mut h, i);
        }
        let stream = tracer.drain();
        assert_eq!(stream.events.len(), 4);
        assert_eq!(stream.dropped, 6);
        assert_eq!(stream.events[0].at_ns, 6, "oldest surviving event");
        assert_eq!(h.emitted(), 10);
    }

    #[test]
    fn drain_is_incremental() {
        let tracer = Tracer::new(16);
        let mut h = tracer.register(3);
        ev(&mut h, 1);
        assert_eq!(tracer.drain().events.len(), 1);
        assert_eq!(tracer.drain().events.len(), 0, "already consumed");
        ev(&mut h, 2);
        let s = tracer.drain();
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].thread, 3);
    }

    #[test]
    fn counts_group_by_kind() {
        let tracer = Tracer::new(16);
        let mut h = tracer.register(0);
        h.emit(1, TraceEventKind::AllocSampled, 0, 0);
        h.emit(2, TraceEventKind::AllocSkipped, 0, 0);
        h.emit(3, TraceEventKind::AllocSkipped, 0, 0);
        let stream = tracer.drain();
        assert_eq!(stream.count_of(TraceEventKind::AllocSkipped), 2);
        assert_eq!(
            stream.counts(),
            vec![
                (TraceEventKind::AllocSampled, 1),
                (TraceEventKind::AllocSkipped, 2)
            ]
        );
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Tracer::new(5).capacity(), 8);
        assert_eq!(Tracer::new(0).capacity(), 2);
        assert_eq!(Tracer::with_default_capacity().capacity(), DEFAULT_RING_CAPACITY);
    }
}
