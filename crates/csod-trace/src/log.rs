//! A generic bounded log with eviction accounting.
//!
//! The machine's flight recorder and any other "keep the last N things,
//! remember how many fell off" consumer share this one implementation,
//! so capacity handling and drop accounting can't drift between them.

use std::collections::VecDeque;

/// A FIFO log that holds at most `capacity` entries; pushing to a full
/// log evicts the oldest entry and counts it.
#[derive(Debug, Clone)]
pub struct BoundedLog<T> {
    capacity: usize,
    entries: VecDeque<T>,
    evicted: u64,
}

impl<T> BoundedLog<T> {
    /// An empty log holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> BoundedLog<T> {
        let capacity = capacity.max(1);
        BoundedLog {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            evicted: 0,
        }
    }

    /// Appends an entry, evicting the oldest if the log is full.
    pub fn push(&mut self, entry: T) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted over the log's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes and returns all retained entries, oldest first. The
    /// eviction count is preserved.
    pub fn drain(&mut self) -> Vec<T> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_newest_and_counts_oldest() {
        let mut log = BoundedLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(log.evicted(), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn drain_empties_but_keeps_eviction_count() {
        let mut log = BoundedLog::new(2);
        log.push("a");
        log.push("b");
        log.push("c");
        assert_eq!(log.drain(), vec!["b", "c"]);
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = BoundedLog::new(0);
        log.push(1);
        log.push(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
