//! The metrics registry: named counters, gauges and histogram
//! snapshots with JSON and Prometheus-style text serialization.
//!
//! The registry is a point-in-time container, not a live aggregation
//! pipeline: the runtime builds one on demand from its own counters
//! (`CsodStats`, `WatchpointStats`, the degradation ladder) and the
//! histograms it maintains, then serializes it. `BTreeMap` storage
//! keeps both output formats deterministically ordered.

use crate::histogram::HistogramSnapshot;
use crate::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named collection of counters, gauges and histogram snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets a monotonically increasing counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Sets an instantaneous gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Attaches a histogram snapshot.
    pub fn set_histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.histograms.insert(name.to_owned(), snapshot);
    }

    /// Reads back a counter (for tests and summaries).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads back a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads back a histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Number of metrics of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when no metric has been set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One JSON object: `counters` and `gauges` as flat maps,
    /// `histograms` as objects with count/sum/min/max/mean/p50/p99 and
    /// the non-empty `(le, count)` buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, snap) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(name),
                snap.count,
                snap.sum,
                snap.min,
                snap.max,
                snap.mean(),
                snap.quantile(0.5),
                snap.quantile(0.99),
            );
            for (i, &(bound, count)) in snap.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bound},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition format: `# TYPE` lines, counters and
    /// gauges as plain samples, histograms as cumulative `_bucket{le=}`
    /// series plus `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, snap) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(bound, count) in &snap.buckets {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("csod_allocs_total", 10);
        reg.set_counter("csod_traps_total", 2);
        reg.set_gauge("csod_slot_occupancy", 0.75);
        let mut h = Histogram::new();
        h.record(3);
        h.record(7);
        reg.set_histogram("csod_watch_lifetime_ns", h.snapshot());
        reg
    }

    #[test]
    fn json_contains_all_sections_in_order() {
        let json = sample_registry().to_json();
        assert!(json.contains("\"csod_allocs_total\": 10"));
        assert!(json.contains("\"csod_slot_occupancy\": 0.75"));
        assert!(json.contains("\"csod_watch_lifetime_ns\""));
        assert!(json.contains("\"count\": 2"));
        let allocs = json.find("csod_allocs_total").unwrap();
        let traps = json.find("csod_traps_total").unwrap();
        assert!(allocs < traps, "BTreeMap keeps keys sorted");
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample_registry().to_prometheus();
        assert!(text.contains("# TYPE csod_allocs_total counter"));
        assert!(text.contains("csod_watch_lifetime_ns_bucket{le=\"4\"} 1"));
        assert!(text.contains("csod_watch_lifetime_ns_bucket{le=\"8\"} 2"));
        assert!(text.contains("csod_watch_lifetime_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("csod_watch_lifetime_ns_sum 10"));
        assert!(text.contains("csod_watch_lifetime_ns_count 2"));
    }

    #[test]
    fn accessors_round_trip() {
        let reg = sample_registry();
        assert_eq!(reg.counter("csod_traps_total"), Some(2));
        assert_eq!(reg.gauge("csod_slot_occupancy"), Some(0.75));
        assert_eq!(reg.histogram("csod_watch_lifetime_ns").unwrap().count, 2);
        assert_eq!(reg.counter("missing"), None);
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
    }
}
