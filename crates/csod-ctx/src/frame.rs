//! Stack-frame interning.
//!
//! A calling context is a chain of code locations ("frames"). Frames are
//! interned once into a [`FrameTable`] and referenced by compact
//! [`FrameId`]s, so contexts can be compared and hashed in O(depth) word
//! operations and the human-readable strings ("OPENSSL/ssl/t1_lib.c:2588")
//! are stored exactly once — the same reason CSOD captures the full
//! `backtrace` only the first time a context key is seen.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Compact identifier of an interned frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u32);

impl FrameId {
    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame{}", self.0)
    }
}

/// Thread-safe interner mapping frame location strings to [`FrameId`]s.
///
/// # Examples
///
/// ```
/// use csod_ctx::FrameTable;
///
/// let frames = FrameTable::new();
/// let a = frames.intern("mysql/sql/item.cc:512");
/// let b = frames.intern("mysql/sql/item.cc:512");
/// assert_eq!(a, b);
/// assert_eq!(frames.resolve(a), "mysql/sql/item.cc:512");
/// ```
#[derive(Debug, Default)]
pub struct FrameTable {
    inner: RwLock<FrameTableInner>,
}

#[derive(Debug, Default)]
struct FrameTableInner {
    by_name: HashMap<String, FrameId>,
    names: Vec<String>,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FrameTable::default()
    }

    /// Interns `location`, returning its stable id.
    pub fn intern(&self, location: &str) -> FrameId {
        if let Some(&id) = self.inner.read().by_name.get(location) {
            return id;
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = inner.by_name.get(location) {
            return id;
        }
        let id = FrameId(u32::try_from(inner.names.len()).expect("frame table overflow"));
        inner.names.push(location.to_owned());
        inner.by_name.insert(location.to_owned(), id);
        id
    }

    /// Returns the location string of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn resolve(&self, id: FrameId) -> String {
        self.inner.read().names[id.0 as usize].clone()
    }

    /// Looks up an already-interned location.
    pub fn find(&self, location: &str) -> Option<FrameId> {
        self.inner.read().by_name.get(location).copied()
    }

    /// Number of interned frames.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let t = FrameTable::new();
        let a = t.intern("a.c:1");
        let b = t.intern("b.c:2");
        assert_ne!(a, b);
        assert_eq!(t.intern("a.c:1"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let t = FrameTable::new();
        let id = t.intern("lib/ssl/t1_lib.c:2588");
        assert_eq!(t.resolve(id), "lib/ssl/t1_lib.c:2588");
        assert_eq!(t.find("lib/ssl/t1_lib.c:2588"), Some(id));
        assert_eq!(t.find("missing"), None);
    }

    #[test]
    fn empty_checks() {
        let t = FrameTable::new();
        assert!(t.is_empty());
        t.intern("x");
        assert!(!t.is_empty());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = FrameTable::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|_| (0..100).map(|i| t.intern(&format!("f{i}"))).collect::<Vec<_>>()))
                .collect();
            let results: Vec<Vec<FrameId>> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results[1..] {
                assert_eq!(r, &results[0]);
            }
        })
        .unwrap();
        assert_eq!(t.len(), 100);
    }
}
