//! The cheap allocation-context key.
//!
//! Capturing and comparing a full backtrace on every allocation is far
//! too expensive, so CSOD identifies an allocation calling context by the
//! pair *(first-level calling context above the allocator, stack
//! offset)* — obtainable with `__builtin_return_address` and a frame
//! pointer read (paper Section III-A1). Two different full contexts *can*
//! collide on this key; the paper argues the chance is "extremely low"
//! and that a collision only perturbs sampling probabilities, never the
//! correctness of a report. The `ablation_keys` harness quantifies that
//! claim on this implementation.

use crate::frame::FrameId;
use std::fmt;

/// The (first-level call site, stack offset) pair CSOD hashes on every
/// allocation.
///
/// # Examples
///
/// ```
/// use csod_ctx::{ContextKey, FrameTable};
///
/// let frames = FrameTable::new();
/// let site = frames.intern("gzip/gzip.c:804");
/// let key = ContextKey::new(site, 0x40);
/// assert_eq!(key.first_level(), site);
/// assert_eq!(key.stack_offset(), 0x40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextKey {
    first_level: FrameId,
    stack_offset: u64,
}

impl ContextKey {
    /// Builds a key from the first-level call site and the stack offset
    /// of the allocating frame.
    pub fn new(first_level: FrameId, stack_offset: u64) -> Self {
        ContextKey {
            first_level,
            stack_offset,
        }
    }

    /// The statement that invoked the allocation routine.
    pub fn first_level(&self) -> FrameId {
        self.first_level
    }

    /// The stack offset disambiguating different call paths that share a
    /// first-level site.
    pub fn stack_offset(&self) -> u64 {
        self.stack_offset
    }

    /// A 64-bit mix of both key components, used for stripe selection
    /// and open-addressed probing.
    ///
    /// A cheap integer mix (not SipHash) because this runs on the
    /// allocation fast path; the distribution only needs to spread keys
    /// across buckets.
    pub fn hash64(&self) -> u64 {
        let mut x = (u64::from(self.first_level.as_u32()) << 32) ^ self.stack_offset;
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// The bucket index of this key in a table of `buckets` buckets.
    pub fn bucket(&self, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (self.hash64() % buckets as u64) as usize
    }
}

impl fmt::Display for ContextKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, +{:#x})", self.first_level, self.stack_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    #[test]
    fn distinct_components_distinct_keys() {
        let t = FrameTable::new();
        let a = t.intern("a.c:1");
        let b = t.intern("b.c:2");
        assert_ne!(ContextKey::new(a, 0x10), ContextKey::new(b, 0x10));
        assert_ne!(ContextKey::new(a, 0x10), ContextKey::new(a, 0x20));
        assert_eq!(ContextKey::new(a, 0x10), ContextKey::new(a, 0x10));
    }

    #[test]
    fn buckets_are_in_range_and_spread() {
        let t = FrameTable::new();
        let buckets = 64;
        let mut histogram = vec![0u32; buckets];
        for i in 0..1000 {
            let site = t.intern(&format!("f{}.c:{}", i % 37, i));
            let key = ContextKey::new(site, (i * 16) as u64);
            let b = key.bucket(buckets);
            assert!(b < buckets);
            histogram[b] += 1;
        }
        // No bucket should be pathologically loaded (expected ~15.6).
        assert!(histogram.iter().all(|&h| h < 60), "{histogram:?}");
        // And the hash must not send everything to a few buckets.
        let used = histogram.iter().filter(|&&h| h > 0).count();
        assert!(used > buckets / 2, "only {used} buckets used");
    }

    #[test]
    fn display_shows_both_parts() {
        let t = FrameTable::new();
        let key = ContextKey::new(t.intern("z.c:9"), 0x40);
        let s = key.to_string();
        assert!(s.contains("frame0"));
        assert!(s.contains("0x40"));
    }
}
