//! # csod-ctx — allocation calling contexts
//!
//! CSOD's key insight is that "heap objects with the same allocation
//! calling context typically have the same access behavior" (paper
//! Section I), so sampling state is kept *per calling context*, not per
//! object. This crate provides the context machinery:
//!
//! * [`FrameTable`] interns code locations into compact [`FrameId`]s;
//! * [`CallingContext`] is a full backtrace (captured once per context,
//!   printed in bug reports);
//! * [`ContextKey`] is the cheap *(first-level site, stack offset)* pair
//!   compared on every allocation;
//! * [`ContextTable`] is the global bucket-locked hash table mapping keys
//!   to per-context state;
//! * [`ContextTree`] is a compressed calling-context tree that stores
//!   the full backtraces with shared suffixes interned once.
//!
//! ```
//! use csod_ctx::{CallingContext, ContextKey, ContextTable, FrameTable};
//!
//! let frames = FrameTable::new();
//! let ctx = CallingContext::from_locations(&frames, ["app.c:42", "main.c:7"]);
//! // An empty backtrace has no first-level site to key on, so
//! // `first_level` is fallible; bail out rather than unwrap.
//! let Some(site) = ctx.first_level() else {
//!     return;
//! };
//! let key = ContextKey::new(site, 0x40);
//!
//! let table: ContextTable<u64> = ContextTable::new();
//! table.with_entry(key, || 0, |allocs| *allocs += 1);
//! assert_eq!(table.get_cloned(key), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::perf)]

mod context;
mod frame;
mod key;
mod table;
mod tree;

pub use context::CallingContext;
pub use frame::{FrameId, FrameTable};
pub use key::ContextKey;
pub use table::{ContextTable, DEFAULT_BUCKETS};
pub use tree::{ContextTree, CtxNodeId};
