//! A compressed calling-context tree (CCT).
//!
//! Applications like MySQL have hundreds of distinct allocation contexts
//! whose backtraces share long suffixes (everything bottoms out in
//! `main`). Storing each context as its own frame vector duplicates
//! those suffixes; the classic fix from context-sensitive profiling is a
//! *calling-context tree*: each node holds one frame and a parent
//! pointer, so a context is a single node id and shared suffixes are
//! stored once.
//!
//! [`ContextTree`] interns [`CallingContext`]s into [`CtxNodeId`]s and
//! materializes them back. The CSOD sampling table stores node ids, so
//! per-context memory stays O(depth of the *unique* part) instead of
//! O(total frames).
//!
//! Contexts are rooted at their *outermost* frame (`main`), which is the
//! shared end; interning walks outer→inner.

use crate::context::CallingContext;
use crate::frame::FrameId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Identifier of one node (= one full calling context) in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxNodeId(u32);

impl CtxNodeId {
    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CtxNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[derive(Debug)]
struct Node {
    frame: FrameId,
    parent: Option<CtxNodeId>,
    depth: u32,
}

#[derive(Debug, Default)]
struct TreeInner {
    nodes: Vec<Node>,
    /// (parent, frame) -> child, the path-compression map.
    children: HashMap<(Option<u32>, FrameId), CtxNodeId>,
}

/// A thread-safe calling-context tree.
///
/// # Examples
///
/// ```
/// use csod_ctx::{CallingContext, ContextTree, FrameTable};
///
/// let frames = FrameTable::new();
/// let tree = ContextTree::new();
/// let a = CallingContext::from_locations(&frames, ["leaf_a.c:1", "mid.c:2", "main.c:3"]);
/// let b = CallingContext::from_locations(&frames, ["leaf_b.c:9", "mid.c:2", "main.c:3"]);
///
/// let na = tree.intern(&a);
/// let nb = tree.intern(&b);
/// assert_ne!(na, nb);
/// // The shared "mid.c:2 <- main.c:3" suffix is stored once:
/// assert_eq!(tree.node_count(), 4);
/// assert_eq!(tree.materialize(na), a);
/// assert_eq!(tree.intern(&a), na, "interning is idempotent");
/// ```
#[derive(Debug, Default)]
pub struct ContextTree {
    inner: RwLock<TreeInner>,
}

impl ContextTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        ContextTree::default()
    }

    /// Interns `context`, returning the node standing for its innermost
    /// frame. Idempotent: equal contexts yield equal ids.
    ///
    /// # Panics
    ///
    /// Panics if `context` is empty — an empty backtrace has no identity.
    pub fn intern(&self, context: &CallingContext) -> CtxNodeId {
        assert!(!context.is_empty(), "cannot intern an empty context");
        let mut inner = self.inner.write();
        let mut parent: Option<CtxNodeId> = None;
        // Walk outermost (main) -> innermost (allocation statement).
        let frames: Vec<FrameId> = context.iter().collect();
        for frame in frames.into_iter().rev() {
            let key = (parent.map(|p| p.0), frame);
            let id = match inner.children.get(&key) {
                Some(&id) => id,
                None => {
                    let id = CtxNodeId(u32::try_from(inner.nodes.len()).expect("tree overflow"));
                    let depth = parent.map_or(1, |p| inner.nodes[p.0 as usize].depth + 1);
                    inner.nodes.push(Node {
                        frame,
                        parent,
                        depth,
                    });
                    inner.children.insert(key, id);
                    id
                }
            };
            parent = Some(id);
        }
        parent.expect("non-empty context produced a node")
    }

    /// Rebuilds the full context behind `id` (innermost first).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this tree.
    pub fn materialize(&self, id: CtxNodeId) -> CallingContext {
        let inner = self.inner.read();
        let mut frames = Vec::with_capacity(inner.nodes[id.0 as usize].depth as usize);
        let mut cursor = Some(id);
        while let Some(node_id) = cursor {
            let node = &inner.nodes[node_id.0 as usize];
            frames.push(node.frame);
            cursor = node.parent;
        }
        CallingContext::new(frames)
    }

    /// The innermost frame of the context behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this tree.
    pub fn leaf_frame(&self, id: CtxNodeId) -> FrameId {
        self.inner.read().nodes[id.0 as usize].frame
    }

    /// The depth (frame count) of the context behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this tree.
    pub fn depth(&self, id: CtxNodeId) -> usize {
        self.inner.read().nodes[id.0 as usize].depth as usize
    }

    /// Total nodes stored — the compression metric: equals the number of
    /// *distinct* (frame, suffix) pairs rather than the sum of depths.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    fn ctx(frames: &FrameTable, locs: &[&str]) -> CallingContext {
        CallingContext::from_locations(frames, locs.iter().copied())
    }

    #[test]
    fn round_trips_and_idempotence() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        let a = ctx(&frames, &["a.c:1", "b.c:2", "main.c:3"]);
        let id = tree.intern(&a);
        assert_eq!(tree.materialize(id), a);
        assert_eq!(tree.intern(&a), id);
        assert_eq!(tree.depth(id), 3);
        assert_eq!(tree.leaf_frame(id), a.first_level().unwrap());
    }

    #[test]
    fn suffix_sharing_compresses() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        // 100 contexts, each "leaf_i -> dispatch -> main": 102 nodes,
        // not 300.
        for i in 0..100 {
            let c = ctx(
                &frames,
                &[&format!("leaf_{i}.c:1"), "dispatch.c:2", "main.c:3"],
            );
            tree.intern(&c);
        }
        assert_eq!(tree.node_count(), 102);
    }

    #[test]
    fn same_frame_in_different_positions_is_distinct() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        let a = ctx(&frames, &["f.c:1", "main.c:2"]);
        let b = ctx(&frames, &["main.c:2", "f.c:1"]); // inverted
        let na = tree.intern(&a);
        let nb = tree.intern(&b);
        assert_ne!(na, nb);
        assert_eq!(tree.materialize(na), a);
        assert_eq!(tree.materialize(nb), b);
    }

    #[test]
    fn single_frame_contexts() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        let a = ctx(&frames, &["only.c:1"]);
        let id = tree.intern(&a);
        assert_eq!(tree.depth(id), 1);
        assert_eq!(tree.materialize(id), a);
    }

    #[test]
    #[should_panic(expected = "empty context")]
    fn empty_context_rejected() {
        ContextTree::new().intern(&CallingContext::default());
    }

    #[test]
    fn prefix_contexts_get_distinct_ids() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        // One context is a suffix-truncation of the other.
        let deep = ctx(&frames, &["x.c:1", "y.c:2", "main.c:3"]);
        let shallow = ctx(&frames, &["y.c:2", "main.c:3"]);
        let nd = tree.intern(&deep);
        let ns = tree.intern(&shallow);
        assert_ne!(nd, ns);
        assert_eq!(tree.materialize(ns), shallow);
        // The deep one reuses the shallow path: 3 nodes total.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let frames = FrameTable::new();
        let tree = ContextTree::new();
        let contexts: Vec<CallingContext> = (0..50)
            .map(|i| ctx(&frames, &[&format!("l{i}.c:1"), "m.c:2", "main.c:3"]))
            .collect();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let contexts = &contexts;
                    let tree = &tree;
                    scope.spawn(move |_| {
                        contexts.iter().map(|c| tree.intern(c)).collect::<Vec<_>>()
                    })
                })
                .collect();
            let results: Vec<Vec<CtxNodeId>> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results[1..] {
                assert_eq!(r, &results[0]);
            }
        })
        .unwrap();
        assert_eq!(tree.node_count(), 52);
    }
}
