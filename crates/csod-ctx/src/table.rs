//! The concurrent context table.
//!
//! CSOD keeps per-context sampling state in "a global hash table … For
//! all contexts that hash to the same value, a linked list is utilized to
//! track these contexts, which has its own lock" (paper Section III-B1).
//! The original reproduction copied that design literally: a fixed array
//! of buckets, each a `Vec` chain guarded by its own lock, scanned
//! linearly. That pays a pointer chase per chain entry and sizes memory
//! by the bucket count, not the population.
//!
//! [`ContextTable`] now improves on the paper's structure the way a
//! production allocator shim would: a fixed set of lock *stripes*, each
//! guarding an **open-addressed** sub-table (linear probing, power-of-two
//! capacity) that grows by occupancy. The stripe is picked from the high
//! bits of the key's hash and the probe position from the same hash
//! modulo the stripe's capacity, so a lookup is one lock plus a short
//! cache-friendly probe — no chain nodes, no per-entry allocation — and
//! memory tracks the number of live contexts instead of a pre-sized
//! bucket array.
//!
//! The table is generic over the per-context payload `V`; the CSOD core
//! instantiates it with its sampling state, and tests instantiate it
//! with counters.

use crate::key::ContextKey;
use parking_lot::Mutex;

/// Default stripe count. Contention on the allocation fast path is
/// spread across this many independent locks; each stripe's
/// open-addressed array then grows with the contexts that actually hash
/// to it ("sized by occupancy").
pub const DEFAULT_BUCKETS: usize = 64;

/// Initial slot count of a stripe the first time a key lands in it.
const STRIPE_INITIAL_CAPACITY: usize = 8;

/// One lock stripe: an open-addressed array with linear probing.
///
/// Entries are never removed (contexts live for the whole run), so
/// probing needs no tombstones: a `None` slot terminates every probe
/// sequence.
#[derive(Debug)]
struct Stripe<V> {
    slots: Vec<Option<(ContextKey, V)>>,
    len: usize,
}

impl<V> Stripe<V> {
    const fn new() -> Self {
        Stripe {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Index of `key` if present, else the empty slot where it belongs.
    fn probe(&self, key: ContextKey) -> Result<usize, usize> {
        debug_assert!(self.slots.len().is_power_of_two());
        let mask = self.slots.len() - 1;
        let mut i = (key.hash64() >> 7) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Ok(i),
                Some(_) => i = (i + 1) & mask,
                None => return Err(i),
            }
        }
    }

    /// Grows (or first allocates) the slot array and rehashes.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(STRIPE_INITIAL_CAPACITY);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        for entry in old.into_iter().flatten() {
            let at = self
                .probe(entry.0)
                .expect_err("rehash of a distinct key must find a free slot");
            self.slots[at] = Some(entry);
        }
    }

    /// True when inserting one more entry would push the load factor
    /// past ~87.5 % (7/8), the point where linear probing degrades.
    fn needs_growth(&self) -> bool {
        self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7
    }
}

/// A striped open-addressed hash table keyed by [`ContextKey`].
///
/// # Examples
///
/// ```
/// use csod_ctx::{ContextKey, ContextTable, FrameTable};
///
/// let frames = FrameTable::new();
/// let key = ContextKey::new(frames.intern("app.c:10"), 0x20);
/// let table: ContextTable<u64> = ContextTable::new();
///
/// // Count allocations from this context.
/// table.with_entry(key, || 0, |count| *count += 1);
/// table.with_entry(key, || 0, |count| *count += 1);
/// assert_eq!(table.get_cloned(key), Some(2));
/// ```
#[derive(Debug)]
pub struct ContextTable<V> {
    stripes: Vec<Mutex<Stripe<V>>>,
}

impl<V> Default for ContextTable<V> {
    fn default() -> Self {
        ContextTable::new()
    }
}

impl<V> ContextTable<V> {
    /// Creates a table with [`DEFAULT_BUCKETS`] stripes.
    pub fn new() -> Self {
        ContextTable::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a table with `buckets` lock stripes.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets > 0, "context table needs at least one bucket");
        ContextTable {
            stripes: (0..buckets).map(|_| Mutex::new(Stripe::new())).collect(),
        }
    }

    /// Number of lock stripes.
    pub fn bucket_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, key: ContextKey) -> &Mutex<Stripe<V>> {
        &self.stripes[key.bucket(self.stripes.len())]
    }

    /// Runs `f` on the entry for `key`, inserting `init()` first if the
    /// key is new. Returns `f`'s result together with whether the entry
    /// was newly created (CSOD captures the full backtrace exactly when
    /// this is `true`).
    pub fn with_entry<R>(
        &self,
        key: ContextKey,
        init: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        self.with_entry_tracked(key, init, |v, _| f(v))
    }

    /// Like [`ContextTable::with_entry`], but `f` also receives `true`
    /// when the entry was just inserted.
    pub fn with_entry_tracked<R>(
        &self,
        key: ContextKey,
        init: impl FnOnce() -> V,
        f: impl FnOnce(&mut V, bool) -> R,
    ) -> R {
        let mut stripe = self.stripe(key).lock();
        if !stripe.slots.is_empty() {
            if let Ok(at) = stripe.probe(key) {
                let (_, v) = stripe.slots[at].as_mut().expect("occupied slot");
                return f(v, false);
            }
        }
        if stripe.needs_growth() {
            stripe.grow();
        }
        let at = stripe
            .probe(key)
            .expect_err("key was absent before insertion");
        stripe.slots[at] = Some((key, init()));
        stripe.len += 1;
        let (_, v) = stripe.slots[at].as_mut().expect("just inserted");
        f(v, true)
    }

    /// Runs `f` on the entry for `key` if present.
    pub fn with_existing<R>(&self, key: ContextKey, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let mut stripe = self.stripe(key).lock();
        if stripe.slots.is_empty() {
            return None;
        }
        match stripe.probe(key) {
            Ok(at) => {
                let (_, v) = stripe.slots[at].as_mut().expect("occupied slot");
                Some(f(v))
            }
            Err(_) => None,
        }
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: ContextKey) -> bool {
        let stripe = self.stripe(key).lock();
        !stripe.slots.is_empty() && stripe.probe(key).is_ok()
    }

    /// Total number of entries (locks each stripe in turn).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len).sum()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry; stripes are locked one at a time, so the view
    /// is per-stripe consistent (sufficient for end-of-run reporting).
    pub fn for_each(&self, mut f: impl FnMut(ContextKey, &V)) {
        for stripe in &self.stripes {
            for (k, v) in stripe.lock().slots.iter().flatten() {
                f(*k, v);
            }
        }
    }

    /// Visits every entry mutably.
    pub fn for_each_mut(&self, mut f: impl FnMut(ContextKey, &mut V)) {
        for stripe in &self.stripes {
            for (k, v) in stripe.lock().slots.iter_mut().flatten() {
                f(*k, v);
            }
        }
    }

    /// The population of the fullest stripe — the load-spread metric;
    /// near `len / bucket_count` when the hash spreads keys well.
    pub fn max_bucket_load(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len).max().unwrap_or(0)
    }

    /// Total slots allocated across all stripes (capacity metric: this
    /// tracks occupancy, not a pre-sized bucket array).
    pub fn capacity(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().slots.len()).sum()
    }
}

impl<V: Clone> ContextTable<V> {
    /// Clones the entry for `key`, if any.
    pub fn get_cloned(&self, key: ContextKey) -> Option<V> {
        self.with_existing(key, |v| v.clone())
    }

    /// Snapshots all entries into a vector.
    pub fn snapshot(&self) -> Vec<(ContextKey, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k, v.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    fn key(frames: &FrameTable, site: &str, off: u64) -> ContextKey {
        ContextKey::new(frames.intern(site), off)
    }

    #[test]
    fn insert_and_update() {
        let frames = FrameTable::new();
        let table: ContextTable<u32> = ContextTable::new();
        let k = key(&frames, "a.c:1", 0);
        let fresh = table.with_entry_tracked(k, || 0, |_, fresh| fresh);
        assert!(fresh);
        let fresh = table.with_entry_tracked(k, || 0, |v, fresh| {
            *v += 5;
            fresh
        });
        assert!(!fresh);
        assert_eq!(table.get_cloned(k), Some(5));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn with_existing_on_absent_key() {
        let frames = FrameTable::new();
        let table: ContextTable<u32> = ContextTable::new();
        assert_eq!(table.with_existing(key(&frames, "a.c:1", 0), |_| ()), None);
        assert!(!table.contains(key(&frames, "a.c:1", 0)));
        assert!(table.is_empty());
    }

    #[test]
    fn single_stripe_holds_all_keys() {
        let frames = FrameTable::new();
        // One stripe forces every key into the same open-addressed array.
        let table: ContextTable<u32> = ContextTable::with_buckets(1);
        for i in 0..10 {
            table.with_entry(key(&frames, &format!("f{i}"), i), || i as u32, |_| ());
        }
        assert_eq!(table.len(), 10);
        assert_eq!(table.max_bucket_load(), 10);
        // Each key still finds its own value.
        for i in 0..10u64 {
            assert_eq!(
                table.get_cloned(key(&frames, &format!("f{i}"), i)),
                Some(i as u32)
            );
        }
    }

    #[test]
    fn stripes_grow_by_occupancy() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::with_buckets(4);
        assert_eq!(table.capacity(), 0, "empty table allocates nothing");
        for i in 0..400 {
            table.with_entry(key(&frames, &format!("g{i}"), i), || i, |_| ());
        }
        assert_eq!(table.len(), 400);
        let cap = table.capacity();
        // Load factor stays in (1/8, 7/8]: grown, but proportional to
        // the population rather than a pre-sized array.
        assert!(cap >= 400, "capacity {cap} below population");
        assert!(cap <= 400 * 8, "capacity {cap} wildly oversized");
        // Everything is still retrievable after all the rehashes.
        for i in 0..400u64 {
            assert_eq!(table.get_cloned(key(&frames, &format!("g{i}"), i)), Some(i));
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::new();
        for i in 0..50 {
            table.with_entry(key(&frames, &format!("s{i}"), 0), || i, |_| ());
        }
        let mut sum = 0;
        table.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..50).sum::<u64>());
        table.for_each_mut(|_, v| *v = 0);
        assert!(table.snapshot().iter().all(|(_, v)| *v == 0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _: ContextTable<()> = ContextTable::with_buckets(0);
    }

    #[test]
    fn concurrent_counting_is_consistent() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::with_buckets(8);
        let keys: Vec<ContextKey> = (0..16).map(|i| key(&frames, &format!("k{i}"), 0)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        for &k in &keys {
                            table.with_entry(k, || 0, |v| *v += 1);
                        }
                    }
                });
            }
        })
        .unwrap();
        for &k in &keys {
            assert_eq!(table.get_cloned(k), Some(4000));
        }
    }

    #[test]
    fn concurrent_growth_keeps_every_entry() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::with_buckets(2);
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let table = &table;
                let frames = &frames;
                scope.spawn(move |_| {
                    for i in 0..200u64 {
                        let k = key(frames, &format!("t{t}-i{i}"), t * 1000 + i);
                        table.with_entry(k, || t * 1000 + i, |_| ());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(table.len(), 800);
        for t in 0..4u64 {
            for i in 0..200u64 {
                let k = key(&frames, &format!("t{t}-i{i}"), t * 1000 + i);
                assert_eq!(table.get_cloned(k), Some(t * 1000 + i));
            }
        }
    }
}
