//! The concurrent context table.
//!
//! CSOD keeps per-context sampling state in "a global hash table … For
//! all contexts that hash to the same value, a linked list is utilized to
//! track these contexts, which has its own lock" (paper Section III-B1).
//! [`ContextTable`] reproduces that design: a fixed array of buckets,
//! each a small vector guarded by its own lock, sized large "to reduce
//! hash conflicts … at the cost of memory consumption".
//!
//! The table is generic over the per-context payload `V`; the CSOD core
//! instantiates it with its sampling state, and tests instantiate it
//! with counters.

use crate::key::ContextKey;
use parking_lot::Mutex;

/// Default bucket count — "set to a large number to reduce hash
/// conflicts" (paper Section III-B1).
pub const DEFAULT_BUCKETS: usize = 4096;

/// A bucket-locked hash table keyed by [`ContextKey`].
///
/// # Examples
///
/// ```
/// use csod_ctx::{ContextKey, ContextTable, FrameTable};
///
/// let frames = FrameTable::new();
/// let key = ContextKey::new(frames.intern("app.c:10"), 0x20);
/// let table: ContextTable<u64> = ContextTable::new();
///
/// // Count allocations from this context.
/// table.with_entry(key, || 0, |count| *count += 1);
/// table.with_entry(key, || 0, |count| *count += 1);
/// assert_eq!(table.get_cloned(key), Some(2));
/// ```
#[derive(Debug)]
pub struct ContextTable<V> {
    buckets: Vec<Mutex<Vec<(ContextKey, V)>>>,
}

impl<V> Default for ContextTable<V> {
    fn default() -> Self {
        ContextTable::new()
    }
}

impl<V> ContextTable<V> {
    /// Creates a table with [`DEFAULT_BUCKETS`] buckets.
    pub fn new() -> Self {
        ContextTable::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a table with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets > 0, "context table needs at least one bucket");
        ContextTable {
            buckets: (0..buckets).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Runs `f` on the entry for `key`, inserting `init()` first if the
    /// key is new. Returns `f`'s result together with whether the entry
    /// was newly created (CSOD captures the full backtrace exactly when
    /// this is `true`).
    pub fn with_entry<R>(
        &self,
        key: ContextKey,
        init: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        self.with_entry_tracked(key, init, |v, _| f(v))
    }

    /// Like [`ContextTable::with_entry`], but `f` also receives `true`
    /// when the entry was just inserted.
    pub fn with_entry_tracked<R>(
        &self,
        key: ContextKey,
        init: impl FnOnce() -> V,
        f: impl FnOnce(&mut V, bool) -> R,
    ) -> R {
        let mut bucket = self.buckets[key.bucket(self.buckets.len())].lock();
        if let Some(pos) = bucket.iter().position(|(k, _)| *k == key) {
            let (_, v) = &mut bucket[pos];
            return f(v, false);
        }
        bucket.push((key, init()));
        let (_, v) = bucket.last_mut().expect("just pushed");
        f(v, true)
    }

    /// Runs `f` on the entry for `key` if present.
    pub fn with_existing<R>(&self, key: ContextKey, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let mut bucket = self.buckets[key.bucket(self.buckets.len())].lock();
        bucket
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| f(v))
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: ContextKey) -> bool {
        let bucket = self.buckets[key.bucket(self.buckets.len())].lock();
        bucket.iter().any(|(k, _)| *k == key)
    }

    /// Total number of entries (locks each bucket in turn).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry; buckets are locked one at a time, so the view
    /// is per-bucket consistent (sufficient for end-of-run reporting).
    pub fn for_each(&self, mut f: impl FnMut(ContextKey, &V)) {
        for bucket in &self.buckets {
            for (k, v) in bucket.lock().iter() {
                f(*k, v);
            }
        }
    }

    /// Visits every entry mutably.
    pub fn for_each_mut(&self, mut f: impl FnMut(ContextKey, &mut V)) {
        for bucket in &self.buckets {
            for (k, v) in bucket.lock().iter_mut() {
                f(*k, v);
            }
        }
    }

    /// The longest chain among all buckets — the hash-conflict metric
    /// the paper's design aims to keep near one.
    pub fn max_bucket_load(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).max().unwrap_or(0)
    }
}

impl<V: Clone> ContextTable<V> {
    /// Clones the entry for `key`, if any.
    pub fn get_cloned(&self, key: ContextKey) -> Option<V> {
        self.with_existing(key, |v| v.clone())
    }

    /// Snapshots all entries into a vector.
    pub fn snapshot(&self) -> Vec<(ContextKey, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k, v.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    fn key(frames: &FrameTable, site: &str, off: u64) -> ContextKey {
        ContextKey::new(frames.intern(site), off)
    }

    #[test]
    fn insert_and_update() {
        let frames = FrameTable::new();
        let table: ContextTable<u32> = ContextTable::new();
        let k = key(&frames, "a.c:1", 0);
        let fresh = table.with_entry_tracked(k, || 0, |_, fresh| fresh);
        assert!(fresh);
        let fresh = table.with_entry_tracked(k, || 0, |v, fresh| {
            *v += 5;
            fresh
        });
        assert!(!fresh);
        assert_eq!(table.get_cloned(k), Some(5));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn with_existing_on_absent_key() {
        let frames = FrameTable::new();
        let table: ContextTable<u32> = ContextTable::new();
        assert_eq!(table.with_existing(key(&frames, "a.c:1", 0), |_| ()), None);
        assert!(!table.contains(key(&frames, "a.c:1", 0)));
        assert!(table.is_empty());
    }

    #[test]
    fn colliding_keys_share_a_bucket_chain() {
        let frames = FrameTable::new();
        // One bucket forces every key into the same chain.
        let table: ContextTable<u32> = ContextTable::with_buckets(1);
        for i in 0..10 {
            table.with_entry(key(&frames, &format!("f{i}"), i), || i as u32, |_| ());
        }
        assert_eq!(table.len(), 10);
        assert_eq!(table.max_bucket_load(), 10);
        // Each key still finds its own value.
        for i in 0..10u64 {
            assert_eq!(table.get_cloned(key(&frames, &format!("f{i}"), i)), Some(i as u32));
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::new();
        for i in 0..50 {
            table.with_entry(key(&frames, &format!("s{i}"), 0), || i, |_| ());
        }
        let mut sum = 0;
        table.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..50).sum::<u64>());
        table.for_each_mut(|_, v| *v = 0);
        assert!(table.snapshot().iter().all(|(_, v)| *v == 0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _: ContextTable<()> = ContextTable::with_buckets(0);
    }

    #[test]
    fn concurrent_counting_is_consistent() {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::with_buckets(8);
        let keys: Vec<ContextKey> = (0..16).map(|i| key(&frames, &format!("k{i}"), 0)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        for &k in &keys {
                            table.with_entry(k, || 0, |v| *v += 1);
                        }
                    }
                });
            }
        })
        .unwrap();
        for &k in &keys {
            assert_eq!(table.get_cloned(k), Some(4000));
        }
    }
}
