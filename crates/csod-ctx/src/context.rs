//! Full calling contexts.

use crate::frame::{FrameId, FrameTable};
use std::fmt;

/// A full calling context: the chain of frames from the statement that
/// performed the operation (innermost, index 0) out to `main`.
///
/// This is what CSOD's bug reports print (paper Figure 6), and what the
/// expensive `backtrace` call captures the first time an allocation
/// context key is seen.
///
/// # Examples
///
/// ```
/// use csod_ctx::{CallingContext, FrameTable};
///
/// let frames = FrameTable::new();
/// let ctx = CallingContext::from_locations(
///     &frames,
///     ["OPENSSL/crypto/mem.c:312", "NGINX/http/ngx_http_request.c:577"],
/// );
/// assert_eq!(ctx.depth(), 2);
/// assert!(ctx.render(&frames).contains("mem.c:312"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CallingContext {
    frames: Vec<FrameId>,
}

impl CallingContext {
    /// Builds a context from innermost-first frame ids.
    pub fn new(frames: Vec<FrameId>) -> Self {
        CallingContext { frames }
    }

    /// Interns `locations` (innermost first) and builds a context.
    pub fn from_locations<'a>(
        table: &FrameTable,
        locations: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        CallingContext {
            frames: locations.into_iter().map(|l| table.intern(l)).collect(),
        }
    }

    /// The innermost frame — for allocation contexts, the statement that
    /// invoked `malloc` (CSOD's "first level calling context").
    pub fn first_level(&self) -> Option<FrameId> {
        self.frames.first().copied()
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether the context has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Iterates frames innermost first.
    pub fn iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.frames.iter().copied()
    }

    /// Renders the context one frame per line, innermost first — the
    /// format of the paper's Figure 6 bug report.
    pub fn render(&self, table: &FrameTable) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            out.push_str(&table.resolve(*frame));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CallingContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ctx[")?;
        for (i, fr) in self.frames.iter().enumerate() {
            if i > 0 {
                f.write_str(" <- ")?;
            }
            write!(f, "{fr}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<FrameId> for CallingContext {
    fn from_iter<I: IntoIterator<Item = FrameId>>(iter: I) -> Self {
        CallingContext {
            frames: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_level_is_innermost() {
        let t = FrameTable::new();
        let ctx = CallingContext::from_locations(&t, ["inner.c:1", "mid.c:2", "main.c:3"]);
        assert_eq!(ctx.first_level(), Some(t.find("inner.c:1").unwrap()));
        assert_eq!(ctx.depth(), 3);
    }

    #[test]
    fn empty_context() {
        let ctx = CallingContext::default();
        assert!(ctx.is_empty());
        assert_eq!(ctx.first_level(), None);
        assert_eq!(ctx.to_string(), "ctx[]");
    }

    #[test]
    fn render_is_one_frame_per_line() {
        let t = FrameTable::new();
        let ctx = CallingContext::from_locations(&t, ["a.c:1", "b.c:2"]);
        assert_eq!(ctx.render(&t), "a.c:1\nb.c:2\n");
    }

    #[test]
    fn equality_is_structural() {
        let t = FrameTable::new();
        let a = CallingContext::from_locations(&t, ["x.c:1", "y.c:2"]);
        let b = CallingContext::from_locations(&t, ["x.c:1", "y.c:2"]);
        let c = CallingContext::from_locations(&t, ["y.c:2", "x.c:1"]);
        assert_eq!(a, b);
        assert_ne!(a, c, "frame order matters");
    }

    #[test]
    fn collects_from_iterator() {
        let t = FrameTable::new();
        let ids: Vec<FrameId> = ["p.c:9", "q.c:8"].iter().map(|l| t.intern(l)).collect();
        let ctx: CallingContext = ids.iter().copied().collect();
        assert_eq!(ctx.iter().collect::<Vec<_>>(), ids);
    }
}
