//! Per-thread generators.
//!
//! The paper observes that both OpenBSD's `arc4random` and glibc's `rand`
//! share one global generator behind a lock, "unnecessarily degrading the
//! performance of multithreaded applications", and changes the port to
//! per-thread generation. This module provides exactly that: each OS
//! thread owns an independent [`Arc4Random`], derived from one
//! process-wide seed plus a per-thread stream id, so there is no shared
//! state and no lock on the allocation fast path.

use crate::generator::Arc4Random;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide seed; per-thread generators derive from it lazily.
static PROCESS_SEED: AtomicU64 = AtomicU64::new(0xC50D_0000_0000_0001);

/// Monotonic stream-id source so every thread gets a distinct stream.
static NEXT_STREAM: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_RNG: RefCell<Arc4Random> = RefCell::new(Arc4Random::from_seed(
        PROCESS_SEED.load(Ordering::Relaxed),
        NEXT_STREAM.fetch_add(1, Ordering::Relaxed),
    ));
}

/// Sets the process-wide seed.
///
/// Only threads whose generator has not been used yet are affected;
/// call this before spawning workers for fully deterministic runs.
pub fn seed_process(seed: u64) {
    PROCESS_SEED.store(seed, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's generator.
///
/// # Examples
///
/// ```
/// let ppm = 500_000; // 50%
/// let decision = csod_rng::with_thread_rng(|rng| rng.chance_ppm(ppm));
/// let _ = decision;
/// ```
pub fn with_thread_rng<R>(f: impl FnOnce(&mut Arc4Random) -> R) -> R {
    THREAD_RNG.with(|cell| f(&mut cell.borrow_mut()))
}

/// Convenience wrapper: the next 32 random bits from the calling
/// thread's generator.
pub fn thread_next_u32() -> u32 {
    with_thread_rng(Arc4Random::next_u32)
}

/// Convenience wrapper: Bernoulli trial on the calling thread's
/// generator. See [`Arc4Random::chance_ppm`].
pub fn thread_chance_ppm(ppm: u32) -> bool {
    with_thread_rng(|rng| rng.chance_ppm(ppm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn thread_rng_is_usable_and_advances() {
        let a = thread_next_u32();
        let b = thread_next_u32();
        // Two consecutive draws are distinct with overwhelming probability.
        assert_ne!(a, b);
    }

    #[test]
    fn each_thread_gets_its_own_stream() {
        let seen = Mutex::new(HashSet::new());
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    let first: Vec<u32> = (0..4).map(|_| thread_next_u32()).collect();
                    seen.lock().unwrap().insert(first);
                });
            }
        })
        .unwrap();
        // Every thread produced a different prefix.
        assert_eq!(seen.lock().unwrap().len(), 8);
    }

    #[test]
    fn chance_helper_matches_extremes() {
        assert!(thread_chance_ppm(1_000_000));
        assert!(!thread_chance_ppm(0));
    }
}
