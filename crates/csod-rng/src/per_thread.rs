//! Per-thread generators.
//!
//! The paper observes that both OpenBSD's `arc4random` and glibc's `rand`
//! share one global generator behind a lock, "unnecessarily degrading the
//! performance of multithreaded applications", and changes the port to
//! per-thread generation. This module provides exactly that: each OS
//! thread owns an independent [`Arc4Random`], derived from one
//! process-wide seed plus a per-thread stream id, so there is no shared
//! state and no lock on the allocation fast path.

use crate::generator::Arc4Random;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide seed; per-thread generators derive from it lazily.
static PROCESS_SEED: AtomicU64 = AtomicU64::new(0xC50D_0000_0000_0001);

/// Monotonic stream-id source so every thread gets a distinct stream.
static NEXT_STREAM: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_RNG: RefCell<Arc4Random> = RefCell::new(Arc4Random::from_seed(
        PROCESS_SEED.load(Ordering::Relaxed),
        NEXT_STREAM.fetch_add(1, Ordering::Relaxed),
    ));
}

/// Sets the process-wide seed.
///
/// Only threads whose generator has not been used yet are affected;
/// call this before spawning workers for fully deterministic runs.
pub fn seed_process(seed: u64) {
    PROCESS_SEED.store(seed, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's generator.
///
/// # Examples
///
/// ```
/// let ppm = 500_000; // 50%
/// let decision = csod_rng::with_thread_rng(|rng| rng.chance_ppm(ppm));
/// let _ = decision;
/// ```
pub fn with_thread_rng<R>(f: impl FnOnce(&mut Arc4Random) -> R) -> R {
    THREAD_RNG.with(|cell| f(&mut cell.borrow_mut()))
}

/// Convenience wrapper: the next 32 random bits from the calling
/// thread's generator.
pub fn thread_next_u32() -> u32 {
    with_thread_rng(Arc4Random::next_u32)
}

/// Convenience wrapper: Bernoulli trial on the calling thread's
/// generator. See [`Arc4Random::chance_ppm`].
pub fn thread_chance_ppm(ppm: u32) -> bool {
    with_thread_rng(|rng| rng.chance_ppm(ppm))
}

/// A dense pool of per-thread generators indexed by a small thread id.
///
/// The CSOD runtime simulates threads with dense `u32` ids, so keying
/// the per-thread generators by a `HashMap<ThreadId, Arc4Random>` (as
/// the original fast path did) paid a SipHash hash plus probe on every
/// allocation. `RngSlots` is the pre-resolved handle instead: slot *t*
/// is plain vector index *t*, derived lazily from one process seed plus
/// the thread id as the stream — the same derivation the paper uses for
/// its per-thread `arc4random` port, with O(1) non-hashing access.
///
/// # Examples
///
/// ```
/// use csod_rng::RngSlots;
///
/// let mut slots = RngSlots::new(0xC50D);
/// let first = slots.get(0).next_u32();
/// // Same slot, same generator: the stream continues.
/// assert_ne!(slots.get(0).next_u32(), first);
/// // Different slots are independent streams.
/// let mut replay = RngSlots::new(0xC50D);
/// assert_eq!(replay.get(0).next_u32(), first);
/// ```
#[derive(Debug)]
pub struct RngSlots {
    seed: u64,
    slots: Vec<Option<Arc4Random>>,
}

impl RngSlots {
    /// Creates an empty pool deriving every slot from `seed`.
    pub fn new(seed: u64) -> Self {
        RngSlots {
            seed,
            slots: Vec::new(),
        }
    }

    /// The generator of slot `index`, created on first use with stream
    /// id `index`.
    pub fn get(&mut self, index: u32) -> &mut Arc4Random {
        let i = index as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        let seed = self.seed;
        self.slots[i].get_or_insert_with(|| Arc4Random::from_seed(seed, u64::from(index)))
    }

    /// Drops the generator of slot `index` (thread exit). A later
    /// [`RngSlots::get`] re-derives the same stream from scratch.
    pub fn release(&mut self, index: u32) {
        if let Some(slot) = self.slots.get_mut(index as usize) {
            *slot = None;
        }
    }

    /// Number of slots ever touched (live or released).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn thread_rng_is_usable_and_advances() {
        let a = thread_next_u32();
        let b = thread_next_u32();
        // Two consecutive draws are distinct with overwhelming probability.
        assert_ne!(a, b);
    }

    #[test]
    fn each_thread_gets_its_own_stream() {
        let seen = Mutex::new(HashSet::new());
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    let first: Vec<u32> = (0..4).map(|_| thread_next_u32()).collect();
                    seen.lock().unwrap().insert(first);
                });
            }
        })
        .unwrap();
        // Every thread produced a different prefix.
        assert_eq!(seen.lock().unwrap().len(), 8);
    }

    #[test]
    fn chance_helper_matches_extremes() {
        assert!(thread_chance_ppm(1_000_000));
        assert!(!thread_chance_ppm(0));
    }

    #[test]
    fn slots_are_dense_deterministic_streams() {
        let mut slots = RngSlots::new(7);
        let a0 = slots.get(0).next_u64();
        let a5 = slots.get(5).next_u64();
        assert_ne!(a0, a5, "streams differ per slot");
        assert_eq!(slots.capacity(), 6);
        // Matches a directly derived generator for the same (seed, stream).
        assert_eq!(Arc4Random::from_seed(7, 5).next_u64(), a5);
    }

    #[test]
    fn release_restarts_the_stream() {
        let mut slots = RngSlots::new(9);
        let first = slots.get(2).next_u32();
        let second = slots.get(2).next_u32();
        assert_ne!(first, second, "stream advances while live");
        slots.release(2);
        assert_eq!(slots.get(2).next_u32(), first, "released slot re-derives");
        // Releasing an untouched slot is a no-op.
        slots.release(99);
    }
}
