//! The buffered generator and its sampling helpers.

use crate::chacha::{init_state, next_block, State};
use std::fmt;

/// One part per million; probabilities in CSOD are expressed in ppm so
/// the paper's percentages stay exact integers (0.001 % = 10 ppm).
pub const PPM_SCALE: u32 = 1_000_000;

/// A buffered ChaCha8 pseudo-random generator in the style of OpenBSD's
/// `arc4random(3)`, but with *owned* state so each thread can have its
/// own instance — the paper's fix for glibc's globally locked `rand`
/// (Section III-A1, "Random number generator").
///
/// # Examples
///
/// ```
/// use csod_rng::Arc4Random;
///
/// let mut rng = Arc4Random::from_seed(1234, 0);
/// // The paper's acceptance test: "if a random number modulo 100 is
/// // less than 10", generalized to parts-per-million.
/// let watched = rng.chance_ppm(100_000); // 10%
/// let _ = watched;
/// // Deterministic: the same seed replays the same stream.
/// let mut replay = Arc4Random::from_seed(1234, 0);
/// assert_eq!(replay.next_u32(), Arc4Random::from_seed(1234, 0).next_u32());
/// ```
#[derive(Clone)]
pub struct Arc4Random {
    state: State,
    buffer: [u32; 16],
    /// Next unread index in `buffer`; 16 means empty.
    cursor: usize,
    draws: u64,
}

impl fmt::Debug for Arc4Random {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arc4Random")
            .field("draws", &self.draws)
            .finish_non_exhaustive()
    }
}

impl Arc4Random {
    /// Creates a generator from a 64-bit seed and a stream id.
    ///
    /// The stream id keeps per-thread generators statistically
    /// independent while deriving from one process-level seed: CSOD
    /// seeds thread *t* with `(process_seed, t)`.
    pub fn from_seed(seed: u64, stream: u64) -> Self {
        let mut key = [0u8; 32];
        // Spread the seed through the key with splitmix64 so nearby
        // seeds do not produce nearby keys.
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        for chunk in key.chunks_exact_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Arc4Random {
            state: init_state(&key, stream),
            buffer: [0; 16],
            cursor: 16,
            draws: 0,
        }
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.buffer = next_block(&mut self.state);
            self.cursor = 0;
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        self.draws += 1;
        v
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        u64::from(self.next_u32()) | (u64::from(self.next_u32()) << 32)
    }

    /// Returns a uniform value in `[0, bound)` without modulo bias
    /// (`arc4random_uniform(3)`).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "uniform bound must be positive");
        // Rejection sampling: discard the low `2^32 % bound` values.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Bernoulli trial: returns `true` with probability `ppm` parts per
    /// million. Values at or above [`PPM_SCALE`] always return `true`.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        if ppm >= PPM_SCALE {
            return true;
        }
        if ppm == 0 {
            return false;
        }
        self.uniform(PPM_SCALE) < ppm
    }

    /// Fills `buf` with random bytes (`arc4random_buf(3)`).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// Returns a uniform value in `[lo, hi]` (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u32::MAX {
            return self.next_u32();
        }
        lo + self.uniform(span + 1)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            return None;
        }
        let index = self.uniform(u32::try_from(items.len()).expect("slice fits u32"));
        items.get(index as usize)
    }

    /// Number of 32-bit draws made so far (fast-path cost accounting).
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed_and_stream() {
        let mut a = Arc4Random::from_seed(42, 0);
        let mut b = Arc4Random::from_seed(42, 0);
        let mut c = Arc4Random::from_seed(42, 1);
        let mut d = Arc4Random::from_seed(43, 0);
        let va: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        let vd: Vec<u32> = (0..40).map(|_| d.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(va, vd);
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = Arc4Random::from_seed(7, 0);
        for _ in 0..10_000 {
            assert!(rng.uniform(100) < 100);
        }
        // Bound of one is always zero.
        assert_eq!(rng.uniform(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_zero_bound_panics() {
        Arc4Random::from_seed(1, 0).uniform(0);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = Arc4Random::from_seed(99, 0);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.uniform(10) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n / 10;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < expected as u64 / 10,
                "bucket count {b} too far from {expected}"
            );
        }
    }

    #[test]
    fn chance_ppm_extremes() {
        let mut rng = Arc4Random::from_seed(5, 0);
        assert!(rng.chance_ppm(PPM_SCALE));
        assert!(rng.chance_ppm(PPM_SCALE + 1));
        assert!(!rng.chance_ppm(0));
    }

    #[test]
    fn chance_ppm_statistics() {
        let mut rng = Arc4Random::from_seed(11, 3);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| rng.chance_ppm(500_000)) // 50%
            .count();
        let ratio = hits as f64 / f64::from(trials);
        assert!((0.49..0.51).contains(&ratio), "ratio {ratio}");

        let rare_hits = (0..trials)
            .filter(|_| rng.chance_ppm(10)) // 0.001%
            .count();
        assert!(rare_hits < 20, "0.001% fired {rare_hits} times in 200k");
    }

    #[test]
    fn next_u64_combines_two_words() {
        let mut a = Arc4Random::from_seed(1, 0);
        let mut b = Arc4Random::from_seed(1, 0);
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), lo | (hi << 32));
    }

    #[test]
    fn fill_bytes_covers_every_length() {
        let mut rng = Arc4Random::from_seed(8, 0);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                // All-zero output of 8+ bytes is astronomically unlikely.
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn range_inclusive_bounds_hold() {
        let mut rng = Arc4Random::from_seed(9, 0);
        for _ in 0..1000 {
            let v = rng.range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.range_inclusive(7, 7), 7);
        // The full span does not overflow.
        let _ = rng.range_inclusive(0, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn range_inclusive_rejects_inverted_bounds() {
        Arc4Random::from_seed(1, 0).range_inclusive(5, 4);
    }

    #[test]
    fn pick_selects_members() {
        let mut rng = Arc4Random::from_seed(10, 0);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items).unwrap()));
        }
        assert_eq!(rng.pick::<u8>(&[]), None);
    }

    #[test]
    fn draws_counts_words() {
        let mut rng = Arc4Random::from_seed(2, 0);
        let _ = rng.next_u64();
        assert_eq!(rng.draws(), 2);
    }

    #[test]
    fn debug_does_not_leak_state() {
        let rng = Arc4Random::from_seed(3, 0);
        let dbg = format!("{rng:?}");
        assert!(dbg.contains("draws"));
        assert!(!dbg.contains("state"));
    }
}
