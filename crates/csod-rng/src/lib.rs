//! # csod-rng — per-thread arc4random for the allocation fast path
//!
//! CSOD consults a random number on *every* allocation to decide whether
//! to watch the new object, so the generator's cost and locking behaviour
//! directly shape the tool's overhead. The paper ports OpenBSD's
//! `arc4random` and changes it to per-thread generation; this crate is
//! that port in Rust: a buffered ChaCha8 generator ([`Arc4Random`]) with
//! no global state on the draw path, plus [`with_thread_rng`]-style
//! per-thread instances.
//!
//! Probabilities are expressed in parts per million ([`PPM_SCALE`]) so
//! that the paper's constants (50 %, 0.001 %, 0.0001 %, 0.01 %) are exact
//! integers.
//!
//! ```
//! use csod_rng::Arc4Random;
//!
//! let mut rng = Arc4Random::from_seed(0xC50D, 0);
//! // The initial 50% sampling decision from the paper:
//! let watch = rng.chance_ppm(500_000);
//! let _ = watch;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chacha;
mod generator;
mod per_thread;

pub use generator::{Arc4Random, PPM_SCALE};
pub use per_thread::{seed_process, thread_chance_ppm, thread_next_u32, with_thread_rng, RngSlots};
