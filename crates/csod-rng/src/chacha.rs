//! A compact ChaCha8 block function.
//!
//! OpenBSD's `arc4random(3)` — the generator the paper ports into CSOD —
//! is ChaCha20 behind a keystream buffer. Eight rounds are plenty for
//! sampling decisions and keep the allocation fast path cheap, which is
//! the paper's whole motivation for replacing glibc's locked `rand`.

/// Number of ChaCha double-rounds (8 rounds total).
const DOUBLE_ROUNDS: usize = 4;

/// The 16-word ChaCha state.
pub(crate) type State = [u32; 16];

/// ChaCha constants: "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Initializes a ChaCha state from a 256-bit key and a 64-bit nonce.
pub(crate) fn init_state(key: &[u8; 32], nonce: u64) -> State {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    // s[12..14] is the 64-bit block counter, s[14..16] the nonce.
    s[14] = nonce as u32;
    s[15] = (nonce >> 32) as u32;
    s
}

#[inline]
fn quarter_round(s: &mut State, a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Produces one 16-word keystream block and advances the block counter.
pub(crate) fn next_block(state: &mut State) -> [u32; 16] {
    let mut w = *state;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for (out, init) in w.iter_mut().zip(state.iter()) {
        *out = out.wrapping_add(*init);
    }
    // 64-bit counter increment across words 12 and 13.
    let (lo, carry) = state[12].overflowing_add(1);
    state[12] = lo;
    if carry {
        state[13] = state[13].wrapping_add(1);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_and_are_deterministic() {
        let key = [7u8; 32];
        let mut a = init_state(&key, 1);
        let mut b = init_state(&key, 1);
        let block_a1 = next_block(&mut a);
        let block_b1 = next_block(&mut b);
        assert_eq!(block_a1, block_b1, "same key/nonce, same stream");
        let block_a2 = next_block(&mut a);
        assert_ne!(block_a1, block_a2, "counter must advance");
    }

    #[test]
    fn nonce_separates_streams() {
        let key = [9u8; 32];
        let mut a = init_state(&key, 1);
        let mut b = init_state(&key, 2);
        assert_ne!(next_block(&mut a), next_block(&mut b));
    }

    #[test]
    fn key_separates_streams() {
        let mut a = init_state(&[1u8; 32], 0);
        let mut b = init_state(&[2u8; 32], 0);
        assert_ne!(next_block(&mut a), next_block(&mut b));
    }

    #[test]
    fn counter_carries_into_high_word() {
        let mut s = init_state(&[0u8; 32], 0);
        s[12] = u32::MAX;
        let _ = next_block(&mut s);
        assert_eq!(s[12], 0);
        assert_eq!(s[13], 1);
    }

    #[test]
    fn output_is_roughly_balanced() {
        // A crude sanity check: over 64k bits, the ones-density of the
        // keystream should be near 50%.
        let mut s = init_state(&[0xAB; 32], 42);
        let mut ones = 0u32;
        for _ in 0..128 {
            for w in next_block(&mut s) {
                ones += w.count_ones();
            }
        }
        let total = 128 * 16 * 32;
        let density = f64::from(ones) / f64::from(total);
        assert!((0.48..0.52).contains(&density), "density {density}");
    }
}
