//! Lowering of workload event traces into an analyzable program IR.
//!
//! The analyzer does not interpret [`Event`] streams directly: it first
//! lowers them into a per-thread statement IR in which every `Malloc`
//! becomes a distinct *generation* (an SSA-like name for one dynamic
//! allocation), every heap access carries a symbolic [`AccessRange`],
//! and thread spawns become explicit control edges. Events that touch
//! no heap object (`Compute`, `IoWait`) are dropped — they cannot
//! change any bounds fact.

use sim_machine::{AccessKind, SiteToken};
use workloads::{Event, SiteRegistry};

/// Identifier of one allocation generation (one `Malloc` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenId(pub u32);

/// One dynamic allocation: the object a `Malloc` event creates.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Dense identifier.
    pub id: GenId,
    /// Slot the pointer is stored into.
    pub slot: usize,
    /// Allocation-site index in the registry.
    pub site: usize,
    /// Requested size in bytes.
    pub size: u64,
    /// Allocating thread.
    pub thread: usize,
    /// Position in the original event stream.
    pub seq: usize,
}

/// Symbolic byte range of one heap access, relative to the object base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRange {
    /// An access of `len` bytes starting at `offset`, as written.
    Exact {
        /// Byte offset into the object.
        offset: u64,
        /// Access length in bytes.
        len: u64,
    },
    /// A bulk access known to stay within the first in-bounds word —
    /// the runner's `AccessBurst` semantics.
    FirstWord,
    /// An access that starts at the word past the object boundary — the
    /// runner's `OverflowAccess`/`OverflowBurst` semantics. Always out
    /// of bounds for every possible size.
    PastEnd,
}

impl AccessRange {
    /// Exclusive upper byte bound of the access for an object of
    /// `size` bytes, as the runner would perform it.
    pub fn end(&self, size: u64) -> u64 {
        match self {
            AccessRange::Exact { offset, len } => offset.saturating_add(*len),
            AccessRange::FirstWord => size.min(8),
            // One word past the 8-byte-aligned boundary.
            AccessRange::PastEnd => size.max(1).div_ceil(8) * 8 + 8,
        }
    }
}

/// The operation a statement performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Store a fresh object into the generation's slot.
    Alloc {
        /// The generation being allocated.
        gen: GenId,
    },
    /// Empty `slot` (no-op if already empty).
    Free {
        /// The slot being freed.
        slot: usize,
    },
    /// Access the object currently in `slot` (no-op if empty).
    Use {
        /// The slot being read through.
        slot: usize,
        /// The symbolic byte range accessed.
        range: AccessRange,
        /// The performing access site.
        token: SiteToken,
        /// Load or store.
        kind: AccessKind,
        /// Whether this is a use-after-free (out of overflow scope).
        dangling: bool,
    },
    /// Spawn thread `child`; its statements may run from here on.
    Spawn {
        /// Index of the spawned thread.
        child: usize,
    },
}

/// One IR statement with its position in the original trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stmt {
    /// The operation.
    pub kind: StmtKind,
    /// Index of the originating event in the trace.
    pub seq: usize,
}

/// A lowered program: per-thread statement streams plus the allocation
/// generations they create.
#[derive(Debug)]
pub struct Program {
    /// Application name (from the registry).
    pub app: String,
    /// Statement stream of each thread; index 0 is the main thread.
    pub threads: Vec<Vec<Stmt>>,
    /// All allocation generations, indexed by [`GenId`].
    pub generations: Vec<Generation>,
    /// Number of pointer slots the trace uses.
    pub slot_count: usize,
    /// Number of allocation sites in the registry.
    pub alloc_site_count: usize,
}

impl Program {
    /// The generation behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this program.
    pub fn generation(&self, id: GenId) -> &Generation {
        &self.generations[id.0 as usize]
    }
}

/// Lowers a trace against its registry into a [`Program`].
///
/// Spawns always execute on the main thread (matching the runner);
/// events naming a thread that was never spawned are attributed to the
/// highest spawned thread, mirroring the runner's tolerance.
///
/// # Panics
///
/// Panics if the trace contains more than `u32::MAX` allocations
/// (generation ids are 32-bit).
pub fn lower(registry: &SiteRegistry, trace: &[Event]) -> Program {
    // Pre-size every buffer exactly: a cheap counting pass costs a few
    // percent of the lowering itself and removes all mid-build
    // reallocation (statement buffers run to megabytes on bench traces,
    // and regrowth copies dominate the lowering profile without this).
    let mut alloc_count = 0usize;
    let mut per_thread: Vec<usize> = vec![0];
    for event in trace {
        let (thread, spawns) = match *event {
            Event::SpawnThread => (0, true),
            Event::Malloc { thread, .. } => {
                alloc_count += 1;
                (thread as usize, false)
            }
            Event::Free { thread, .. }
            | Event::Access { thread, .. }
            | Event::AccessBurst { thread, .. }
            | Event::OverflowAccess { thread, .. }
            | Event::OverflowBurst { thread, .. }
            | Event::DanglingAccess { thread, .. } => (thread as usize, false),
            Event::Compute { .. } | Event::IoWait { .. } => continue,
        };
        if spawns {
            per_thread[0] += 1;
            per_thread.push(0);
        } else {
            let t = thread.min(per_thread.len() - 1);
            per_thread[t] += 1;
        }
    }
    let mut threads: Vec<Vec<Stmt>> = per_thread.iter().map(|&n| Vec::with_capacity(n)).collect();
    let mut generations: Vec<Generation> = Vec::with_capacity(alloc_count);
    let mut slot_count = 0usize;
    // Threads spawned so far: events naming a later thread clamp to the
    // highest one alive at that point, exactly as before pre-sizing.
    let mut spawned = 1usize;

    let push = |threads: &mut Vec<Vec<Stmt>>, spawned: usize, thread: usize, kind: StmtKind, seq: usize| {
        let t = thread.min(spawned - 1);
        threads[t].push(Stmt { kind, seq });
    };

    for (seq, event) in trace.iter().enumerate() {
        match *event {
            Event::SpawnThread => {
                let child = spawned;
                spawned += 1;
                threads[0].push(Stmt {
                    kind: StmtKind::Spawn { child },
                    seq,
                });
            }
            Event::Malloc {
                thread,
                site,
                size,
                slot,
            } => {
                slot_count = slot_count.max(slot + 1);
                let id = GenId(u32::try_from(generations.len()).expect("< 2^32 allocations"));
                let thread = (thread as usize).min(spawned - 1);
                generations.push(Generation {
                    id,
                    slot,
                    site,
                    size,
                    thread,
                    seq,
                });
                push(&mut threads, spawned, thread, StmtKind::Alloc { gen: id }, seq);
            }
            Event::Free { thread, slot } => {
                slot_count = slot_count.max(slot + 1);
                push(&mut threads, spawned, thread as usize, StmtKind::Free { slot }, seq);
            }
            Event::Access {
                thread,
                slot,
                offset,
                len,
                kind,
                site,
            } => {
                slot_count = slot_count.max(slot + 1);
                push(
                    &mut threads,
                    spawned,
                    thread as usize,
                    StmtKind::Use {
                        slot,
                        range: AccessRange::Exact { offset, len },
                        token: site,
                        kind,
                        dangling: false,
                    },
                    seq,
                );
            }
            Event::AccessBurst {
                thread,
                slot,
                kind,
                site,
                ..
            } => {
                slot_count = slot_count.max(slot + 1);
                push(
                    &mut threads,
                    spawned,
                    thread as usize,
                    StmtKind::Use {
                        slot,
                        range: AccessRange::FirstWord,
                        token: site,
                        kind,
                        dangling: false,
                    },
                    seq,
                );
            }
            Event::OverflowAccess {
                thread,
                slot,
                kind,
                site,
            }
            | Event::OverflowBurst {
                thread,
                slot,
                kind,
                site,
                ..
            } => {
                slot_count = slot_count.max(slot + 1);
                push(
                    &mut threads,
                    spawned,
                    thread as usize,
                    StmtKind::Use {
                        slot,
                        range: AccessRange::PastEnd,
                        token: site,
                        kind,
                        dangling: false,
                    },
                    seq,
                );
            }
            Event::DanglingAccess {
                thread,
                slot,
                offset,
                kind,
                site,
            } => {
                slot_count = slot_count.max(slot + 1);
                push(
                    &mut threads,
                    spawned,
                    thread as usize,
                    StmtKind::Use {
                        slot,
                        range: AccessRange::Exact { offset, len: 8 },
                        token: site,
                        kind,
                        dangling: true,
                    },
                    seq,
                );
            }
            Event::Compute { .. } | Event::IoWait { .. } => {}
        }
    }

    Program {
        app: registry.app().to_owned(),
        threads,
        generations,
        slot_count,
        alloc_site_count: registry.alloc_site_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;
    use std::sync::Arc;

    fn tiny_registry(sites: usize) -> SiteRegistry {
        let mut reg = SiteRegistry::new("irtest", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(sites);
        reg.add_access_site("irtest", "use.c:1");
        reg
    }

    #[test]
    fn lowering_assigns_generations_and_threads() {
        let reg = tiny_registry(2);
        let t = SiteToken(0);
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 64, 0),
            Event::Malloc {
                thread: 1,
                site: 1,
                size: 32,
                slot: 1,
            },
            Event::access(0, 8, 8, AccessKind::Read, t),
            Event::Compute { thread: 0, ops: 99 },
            Event::free(0),
        ];
        let p = lower(&reg, &trace);
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.generations.len(), 2);
        assert_eq!(p.slot_count, 2);
        assert_eq!(p.generation(GenId(1)).size, 32);
        assert_eq!(p.generation(GenId(1)).thread, 1);
        // Main thread: spawn, alloc, use, free (compute dropped).
        assert_eq!(p.threads[0].len(), 4);
        assert!(matches!(p.threads[0][0].kind, StmtKind::Spawn { child: 1 }));
        assert!(matches!(
            p.threads[0][2].kind,
            StmtKind::Use {
                dangling: false,
                ..
            }
        ));
    }

    #[test]
    fn access_range_ends_match_runner_semantics() {
        assert_eq!(AccessRange::Exact { offset: 8, len: 8 }.end(64), 16);
        assert_eq!(AccessRange::FirstWord.end(4), 4);
        assert_eq!(AccessRange::FirstWord.end(100), 8);
        // 13 bytes round up to a 16-byte watch boundary; the overflow
        // word is the 8 bytes past it.
        assert_eq!(AccessRange::PastEnd.end(13), 24);
        assert_eq!(AccessRange::PastEnd.end(0), 16);
    }

    #[test]
    fn overflow_events_lower_to_past_end_uses() {
        let reg = tiny_registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::overflow(0, AccessKind::Write, t),
            Event::overflow_burst(0, 10, AccessKind::Write, t),
        ];
        let p = lower(&reg, &trace);
        let past_end = p.threads[0]
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    StmtKind::Use {
                        range: AccessRange::PastEnd,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(past_end, 2);
    }
}
