//! The serializable risk report and its bridge to the runtime.
//!
//! [`RiskReport`] is the analyzer's output artifact: one verdict per
//! allocation calling context, addressed by the same `|`-joined frame
//! signature the runtime's [`EvidenceStore`](csod_core::EvidenceStore)
//! and the fleet's priors store use, so reports survive process
//! restarts and site-index reshuffles. Lookup is exact-context first
//! ([`RiskReport::class_of_context`]) with a sound per-function
//! fallback, and the call-string-`k` views
//! ([`RiskReport::call_string_classes`]) expose what the analysis
//! would claim under context cloning truncated to `k` frames — `k = 1`
//! is the old per-function (per-allocation-site) analysis. The
//! [`RiskReport::to_priors`] bridge turns a report into the
//! [`AnalysisPriors`] table [`CsodConfig`](csod_core::CsodConfig)
//! consumes — that is the whole hand-off between the offline analysis
//! and the online sampler.

use crate::classify::rank;
use csod_core::{AnalysisPriors, EvidenceStore, RiskClass};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::str::FromStr;
use workloads::SiteRegistry;

/// The verdict for one allocation calling context, in serializable
/// form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextVerdict {
    /// Allocation-site index in the registry the report was built from.
    pub site: usize,
    /// Frame signature of the calling context (innermost first,
    /// `|`-separated) — the stable cross-run address.
    pub signature: String,
    /// The risk class.
    pub class: RiskClass,
    /// Human-readable justification, if the classifier produced one.
    pub witness: Option<String>,
}

/// Per-application output of [`analyze`](crate::analyze).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiskReport {
    /// The analyzed application's name.
    pub app: String,
    /// One verdict per allocation context, in site-index order.
    pub verdicts: Vec<ContextVerdict>,
}

impl RiskReport {
    /// Assembles a report from classifier outcomes against the registry
    /// that produced the trace.
    pub fn new(
        registry: &SiteRegistry,
        outcomes: Vec<crate::classify::ContextOutcome>,
    ) -> RiskReport {
        let frames = registry.frames();
        let verdicts = outcomes
            .into_iter()
            .map(|o| ContextVerdict {
                site: o.site,
                signature: EvidenceStore::signature(&registry.alloc_site(o.site).context, frames),
                class: o.class,
                witness: o.witness,
            })
            .collect();
        RiskReport {
            app: registry.app().to_owned(),
            verdicts,
        }
    }

    /// The class of allocation context `site`; `Unknown` for sites the
    /// report does not cover.
    pub fn class_of(&self, site: usize) -> RiskClass {
        self.verdicts
            .iter()
            .find(|v| v.site == site)
            .map_or(RiskClass::Unknown, |v| v.class)
    }

    /// Resolves a context signature: exact-context first, then a
    /// *sound* per-function fallback for contexts the report never saw.
    ///
    /// The fallback keys on the signature's innermost frame (the
    /// allocation function). An unseen context was not analyzed, so the
    /// fallback never claims `ProvenSafe`: it answers `Suspicious` if
    /// any analyzed context of the same function is suspicious (the
    /// helper has a dangerous caller), and `Unknown` otherwise —
    /// precision loss only ever moves a context toward suspicious.
    pub fn class_of_context(&self, signature: &str) -> RiskClass {
        if let Some(v) = self.verdicts.iter().find(|v| v.signature == signature) {
            return v.class;
        }
        let function = signature.split('|').next().unwrap_or("");
        let helper_is_dirty = self
            .verdicts
            .iter()
            .filter(|v| v.signature.split('|').next() == Some(function))
            .any(|v| v.class == RiskClass::Suspicious);
        if helper_is_dirty {
            RiskClass::Suspicious
        } else {
            RiskClass::Unknown
        }
    }

    /// Counts of `(proven-safe, suspicious, unknown)` verdicts.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut safe = 0;
        let mut sus = 0;
        let mut unknown = 0;
        for v in &self.verdicts {
            match v.class {
                RiskClass::ProvenSafe => safe += 1,
                RiskClass::Suspicious => sus += 1,
                RiskClass::Unknown => unknown += 1,
            }
        }
        (safe, sus, unknown)
    }

    /// The verdicts merged under call-string-`k` cloning: contexts
    /// sharing their `k` innermost frames collapse into one clone whose
    /// class is the *worst* of the group (merging may only lose
    /// precision toward suspicious). `k` at least the deepest context
    /// reproduces the full context-sensitive verdicts; `k = 1` is the
    /// per-function analysis this crate performed before
    /// context-sensitivity.
    pub fn call_string_classes(&self, k: usize) -> BTreeMap<String, RiskClass> {
        let mut classes: BTreeMap<String, RiskClass> = BTreeMap::new();
        for v in &self.verdicts {
            let prefix = call_string_prefix(&v.signature, k);
            classes
                .entry(prefix)
                .and_modify(|c| {
                    if rank(v.class) > rank(*c) {
                        *c = v.class;
                    }
                })
                .or_insert(v.class);
        }
        classes
    }

    /// Counts of `(proven-safe, suspicious, unknown)` over all
    /// contexts, with each context taking its call-string-`k` clone's
    /// (worst-of-group) class.
    pub fn call_string_census(&self, k: usize) -> (usize, usize, usize) {
        let classes = self.call_string_classes(k);
        let mut safe = 0;
        let mut sus = 0;
        let mut unknown = 0;
        for v in &self.verdicts {
            let class = classes[&call_string_prefix(&v.signature, k)];
            match class {
                RiskClass::ProvenSafe => safe += 1,
                RiskClass::Suspicious => sus += 1,
                RiskClass::Unknown => unknown += 1,
            }
        }
        (safe, sus, unknown)
    }

    /// The census a context-*insensitive* (per-allocation-function)
    /// analysis would report: every context inherits the worst verdict
    /// of its allocation function. The gap between this and
    /// [`census`](RiskReport::census) is what context sensitivity buys.
    pub fn function_census(&self) -> (usize, usize, usize) {
        self.call_string_census(1)
    }

    /// Builds the runtime prior table: each verdict is keyed by the
    /// cheap [`ContextKey`](csod_ctx::ContextKey) the sampler hashes,
    /// looked up from `registry`.
    pub fn to_priors(&self, registry: &SiteRegistry) -> AnalysisPriors {
        AnalysisPriors::from_classes(
            self.verdicts
                .iter()
                .filter(|v| v.site < registry.alloc_site_count())
                .map(|v| (registry.alloc_site(v.site).key, v.class)),
        )
    }

    /// Saves the report as a line-oriented text file
    /// (`class<TAB>signature<TAB>witness`).
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(&format!("# csod-analyze risk report: app {}\n", self.app));
        for v in &self.verdicts {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                v.class,
                v.signature,
                v.witness.as_deref().unwrap_or("-")
            ));
        }
        let mut file = fs::File::create(path)?;
        file.write_all(out.as_bytes())
    }

    /// Loads a report saved by [`save`](RiskReport::save), resolving
    /// signatures against `registry`. Lines whose signature matches no
    /// current allocation site are dropped (the report outlived the
    /// application version it was computed for).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than `NotFound`, which yields an
    /// empty report — absence of a report file means "no priors".
    pub fn load(path: &Path, registry: &SiteRegistry) -> io::Result<RiskReport> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let frames = registry.frames();
        let mut verdicts = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(class), Some(signature)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(class) = RiskClass::from_str(class) else {
                continue;
            };
            let witness = parts.next().filter(|w| *w != "-").map(str::to_owned);
            let found = registry.alloc_sites().find(|site| {
                EvidenceStore::signature(&site.context, frames) == signature
            });
            if let Some(site) = found {
                verdicts.push(ContextVerdict {
                    site: site.index,
                    signature: signature.to_owned(),
                    class,
                    witness,
                });
            }
        }
        Ok(RiskReport {
            app: registry.app().to_owned(),
            verdicts,
        })
    }
}

fn call_string_prefix(signature: &str, k: usize) -> String {
    let k = k.max(1);
    let mut frames = signature.split('|');
    let mut prefix = frames.next().unwrap_or("").to_owned();
    for frame in frames.take(k - 1) {
        prefix.push('|');
        prefix.push_str(frame);
    }
    prefix
}

impl fmt::Display for RiskReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (safe, sus, unknown) = self.census();
        writeln!(
            f,
            "==== risk report: {} ({} context(s): {safe} proven-safe, {sus} suspicious, {unknown} unknown) ====",
            self.app,
            self.verdicts.len()
        )?;
        for v in &self.verdicts {
            let innermost = v.signature.split('|').next().unwrap_or("?");
            write!(f, "ctx {:>3} {:<12} {innermost}", v.site, v.class.to_string())?;
            if let Some(w) = &v.witness {
                write!(f, "  ({w})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ContextOutcome;
    use csod_ctx::FrameTable;
    use std::sync::Arc;

    fn registry() -> SiteRegistry {
        let mut reg = SiteRegistry::new("reptest", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(3);
        reg
    }

    fn report(reg: &SiteRegistry) -> RiskReport {
        RiskReport::new(
            reg,
            vec![
                ContextOutcome {
                    site: 0,
                    class: RiskClass::ProvenSafe,
                    witness: None,
                },
                ContextOutcome {
                    site: 1,
                    class: RiskClass::Suspicious,
                    witness: Some("access [8, 24) exceeds the 16-byte object".to_owned()),
                },
                ContextOutcome {
                    site: 2,
                    class: RiskClass::Unknown,
                    witness: Some("widened".to_owned()),
                },
            ],
        )
    }

    fn helper_registry() -> SiteRegistry {
        let mut reg = SiteRegistry::new("helpers", Arc::new(FrameTable::new()));
        reg.add_alloc_site_via("xmalloc.c:100");
        reg.add_alloc_site_via("xmalloc.c:100");
        reg.add_alloc_site_via("arena.c:50");
        reg
    }

    fn helper_report(reg: &SiteRegistry) -> RiskReport {
        RiskReport::new(
            reg,
            vec![
                ContextOutcome {
                    site: 0,
                    class: RiskClass::ProvenSafe,
                    witness: None,
                },
                ContextOutcome {
                    site: 1,
                    class: RiskClass::Suspicious,
                    witness: Some("planted".to_owned()),
                },
                ContextOutcome {
                    site: 2,
                    class: RiskClass::ProvenSafe,
                    witness: None,
                },
            ],
        )
    }

    #[test]
    fn census_and_class_lookup() {
        let reg = registry();
        let r = report(&reg);
        assert_eq!(r.census(), (1, 1, 1));
        assert_eq!(r.class_of(1), RiskClass::Suspicious);
        // Uncovered sites default to Unknown: no claim, no boost.
        assert_eq!(r.class_of(99), RiskClass::Unknown);
    }

    #[test]
    fn context_lookup_is_exact_first() {
        let reg = registry();
        let r = report(&reg);
        assert_eq!(
            r.class_of_context(&r.verdicts[0].signature),
            RiskClass::ProvenSafe
        );
        assert_eq!(
            r.class_of_context(&r.verdicts[1].signature),
            RiskClass::Suspicious
        );
    }

    #[test]
    fn unseen_context_fallback_is_sound() {
        let reg = helper_registry();
        let r = helper_report(&reg);
        // An unseen context through the helper with a suspicious caller
        // falls back to suspicious — but never to proven-safe.
        let helper_frame = r.verdicts[0].signature.split('|').next().unwrap();
        let unseen = format!("{helper_frame}|helpers/caller/new.c:999|helpers/main.c:42");
        assert_eq!(r.class_of_context(&unseen), RiskClass::Suspicious);
        // An unseen context through a clean function is unknown (it was
        // never analyzed), not proven-safe.
        let clean_frame = r.verdicts[2].signature.split('|').next().unwrap();
        let unseen = format!("{clean_frame}|helpers/caller/new.c:999|helpers/main.c:42");
        assert_eq!(r.class_of_context(&unseen), RiskClass::Unknown);
        // A fully alien signature is unknown.
        assert_eq!(r.class_of_context("no/such.c:1|main.c:1"), RiskClass::Unknown);
    }

    #[test]
    fn call_string_views_interpolate_between_function_and_context() {
        let reg = helper_registry();
        let r = helper_report(&reg);
        // Full context sensitivity: 2 safe, 1 suspicious.
        assert_eq!(r.census(), (2, 1, 0));
        // k = 1 merges both xmalloc contexts under the helper's worst.
        assert_eq!(r.function_census(), (1, 2, 0));
        assert_eq!(r.call_string_classes(1).len(), 2);
        // k = 2 separates them again (the caller frame distinguishes).
        assert_eq!(r.call_string_census(2), (2, 1, 0));
        // Huge k degenerates to the exact census.
        assert_eq!(r.call_string_census(64), r.census());
    }

    #[test]
    fn priors_carry_the_registry_keys() {
        let reg = registry();
        let priors = report(&reg).to_priors(&reg);
        assert_eq!(priors.census(), (1, 1, 1));
        assert_eq!(
            priors.class_of(reg.alloc_site(0).key),
            Some(RiskClass::ProvenSafe)
        );
        assert_eq!(
            priors.class_of(reg.alloc_site(1).key),
            Some(RiskClass::Suspicious)
        );
    }

    #[test]
    fn save_load_round_trips_through_signatures() {
        let reg = registry();
        let r = report(&reg);
        let dir = std::env::temp_dir().join("csod-analyze-report-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("risk.tsv");
        r.save(&path).unwrap();
        let loaded = RiskReport::load(&path, &reg).unwrap();
        assert_eq!(loaded, r);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_file_is_an_empty_report() {
        let reg = registry();
        let loaded =
            RiskReport::load(Path::new("/nonexistent/risk.tsv"), &reg).unwrap();
        assert!(loaded.verdicts.is_empty());
        assert!(loaded.to_priors(&reg).is_empty());
    }

    #[test]
    fn stale_signatures_are_dropped_on_load() {
        let reg = registry();
        let r = report(&reg);
        let dir = std::env::temp_dir().join("csod-analyze-report-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.tsv");
        let mut text = String::from("# header\nsuspicious\tno/such/frame.c:1|main.c:1\t-\n");
        text.push_str(&format!(
            "proven-safe\t{}\t-\n",
            r.verdicts[0].signature
        ));
        fs::write(&path, text).unwrap();
        let loaded = RiskReport::load(&path, &reg).unwrap();
        assert_eq!(loaded.verdicts.len(), 1);
        assert_eq!(loaded.verdicts[0].site, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn display_lists_each_context_once() {
        let reg = registry();
        let text = report(&reg).to_string();
        assert!(text.contains("1 proven-safe, 1 suspicious, 1 unknown"));
        assert!(text.contains("exceeds the 16-byte object"));
    }
}
