//! # csod-analyze — static overflow-risk analysis that primes the sampler
//!
//! CSOD's adaptive sampler starts every allocation calling context at a
//! 50 % watch probability and learns only from what the four
//! watchpoints happen to observe. This crate front-loads that learning:
//! an offline pass over a workload's event trace classifies every
//! allocation site as **proven-safe**, **suspicious** or **unknown**,
//! and hands the verdicts to the runtime as
//! [`AnalysisPriors`](csod_core::AnalysisPriors) so proven-safe
//! contexts start at the probability floor (freeing watch slots) and
//! suspicious ones start boosted and immune to burst throttling.
//!
//! The pipeline, one module per stage:
//!
//! | Stage | Module |
//! |---|---|
//! | Trace → per-thread statement IR | [`ir`] |
//! | Basic blocks + spawn edges | [`cfg`] |
//! | Pointer-slot escape analysis | [`escape`] |
//! | Flow-sensitive binding resolution | [`cfg::resolve_bindings`] |
//! | Interval bounds inference | [`domain`], [`classify`] |
//! | Serializable verdicts + runtime bridge | [`report`] |
//!
//! The classification is *sound* by construction toward the dangerous
//! side: precision loss (escaped slots, widened summaries) can only
//! move a site from proven-safe to unknown/suspicious, never the other
//! way. [`oracle`] provides the reference interpreter the test tiers
//! use to enforce that.
//!
//! # Examples
//!
//! ```
//! use csod_analyze::analyze;
//! use csod_core::RiskClass;
//! use workloads::BuggyApp;
//!
//! let app = &BuggyApp::all()[0];
//! let registry = app.registry();
//! let report = analyze(&registry, &app.trace(1));
//! // The planted overflow's context is flagged; the rest are proven.
//! assert_eq!(report.class_of(app.bug_ctx()), RiskClass::Suspicious);
//! let priors = report.to_priors(&registry);
//! assert!(priors.census().1 >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::missing_panics_doc)]

pub mod cfg;
pub mod classify;
pub mod domain;
pub mod escape;
pub mod ir;
pub mod oracle;
pub mod report;

pub use cfg::{Binding, Bindings, Cfg};
pub use classify::{AccessSummary, SiteOutcome, WIDEN_AFTER};
pub use domain::{Bound, Interval};
pub use escape::{SlotInfo, SlotTable};
pub use ir::{AccessRange, GenId, Generation, Program};
pub use report::{RiskReport, SiteVerdict};

use workloads::{Event, SiteRegistry};

/// Runs the whole pipeline: lowers `trace`, resolves what every access
/// can touch, and classifies each of `registry`'s allocation sites.
pub fn analyze(registry: &SiteRegistry, trace: &[Event]) -> RiskReport {
    let program = ir::lower(registry, trace);
    let cfg = Cfg::build(&program);
    let slots = escape::analyze_slots(&program);
    let bindings = cfg::resolve_bindings(&program, &cfg, &slots);
    let outcomes = classify::classify(&program, &bindings);
    RiskReport::new(registry, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_core::RiskClass;
    use workloads::BuggyApp;

    #[test]
    fn every_buggy_app_flags_its_bug_and_proves_the_rest() {
        for app in BuggyApp::all() {
            let registry = app.registry();
            for seed in 1..=3 {
                let report = analyze(&registry, &app.trace(seed));
                assert_eq!(
                    report.class_of(app.bug_ctx()),
                    RiskClass::Suspicious,
                    "{}: planted overflow context must be suspicious",
                    app.name
                );
                let (safe, sus, _) = report.census();
                assert_eq!(sus, 1, "{}: exactly one suspicious site", app.name);
                assert_eq!(
                    safe,
                    report.verdicts.len() - 1,
                    "{}: every non-bug site is proven safe",
                    app.name
                );
            }
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let app = &BuggyApp::all()[2];
        let registry = app.registry();
        let a = analyze(&registry, &app.trace(7));
        let b = analyze(&registry, &app.trace(7));
        assert_eq!(a, b);
    }
}
