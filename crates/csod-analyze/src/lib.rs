//! # csod-analyze — static overflow-risk analysis that primes the sampler
//!
//! CSOD's adaptive sampler starts every allocation calling context at a
//! 50 % watch probability and learns only from what the four
//! watchpoints happen to observe. This crate front-loads that learning:
//! an offline pass over a workload's event trace classifies every
//! allocation *calling context* as **proven-safe**, **suspicious** or
//! **unknown**, and hands the verdicts to the runtime as
//! [`AnalysisPriors`](csod_core::AnalysisPriors) so proven-safe
//! contexts start at the probability floor (freeing watch slots) and
//! suspicious ones start boosted and immune to burst throttling.
//!
//! The pipeline, one module per stage:
//!
//! | Stage | Module |
//! |---|---|
//! | Trace → per-thread statement IR | [`ir`] |
//! | Basic blocks + spawn edges | [`cfg`] |
//! | Call graph over allocation contexts | [`callgraph`] |
//! | Pointer-slot escape analysis | [`escape`] |
//! | Per-function summaries + incremental cache | [`summary`] |
//! | Interval bounds inference | [`domain`], [`classify`] |
//! | Serializable verdicts + runtime bridge | [`report`] |
//!
//! The analysis is *context-sensitive*: verdicts are keyed by the same
//! `|`-joined frame signature
//! ([`EvidenceStore::signature`](csod_core::EvidenceStore::signature))
//! the runtime's context table and the fleet's priors store use, so two
//! calling contexts funneling through one allocation helper get
//! independent verdicts. [`RiskReport::class_of_context`] resolves
//! exact-context first with a sound per-function fallback, and
//! [`RiskReport::call_string_classes`] exposes the call-string-`k`
//! merged view (k = 1 is the old per-function analysis).
//!
//! The classification is *sound* by construction toward the dangerous
//! side: precision loss (escaped slots, widened summaries, call-string
//! truncation) can only move a context from proven-safe to
//! unknown/suspicious, never the other way. [`oracle`] provides the
//! reference interpreter the test tiers use to enforce that, down to
//! replaying individual calling contexts.
//!
//! # Examples
//!
//! ```
//! use csod_analyze::analyze;
//! use csod_core::RiskClass;
//! use workloads::BuggyApp;
//!
//! let app = &BuggyApp::all()[0];
//! let registry = app.registry();
//! let report = analyze(&registry, &app.trace(1));
//! // The planted overflow's context is flagged; the rest are proven.
//! assert_eq!(report.class_of(app.bug_ctx()), RiskClass::Suspicious);
//! let priors = report.to_priors(&registry);
//! assert!(priors.census().1 >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::missing_panics_doc)]

pub mod callgraph;
pub mod cfg;
pub mod classify;
pub mod domain;
pub mod escape;
pub mod ir;
pub mod oracle;
pub mod report;
pub mod summary;

pub use callgraph::CallGraph;
pub use cfg::{Binding, Bindings, Cfg};
pub use classify::{AccessSummary, ContextOutcome, WIDEN_AFTER};
pub use domain::{Bound, Interval};
pub use escape::{SlotInfo, SlotTable};
pub use ir::{AccessRange, GenId, Generation, Program};
pub use report::{ContextVerdict, RiskReport};
pub use summary::{AnalyzeStats, ModulePartition, ModuleSummary, SummaryCache};

use std::io;
use std::path::Path;
use workloads::{Event, SiteRegistry};

/// Runs the whole pipeline cold: lowers `trace`, partitions slots into
/// per-function modules, summarizes them on the parallel worklist, and
/// classifies each of `registry`'s allocation contexts.
pub fn analyze(registry: &SiteRegistry, trace: &[Event]) -> RiskReport {
    analyze_with_cache(registry, trace, None).0
}

/// Like [`analyze`], but reusing (and refreshing) per-function
/// summaries cached at `cache_path`: modules whose structural hash is
/// unchanged since the cached run are not recomputed. Returns the
/// report and what the incremental layer did.
///
/// # Errors
///
/// Propagates I/O failures reading or writing the cache file (a
/// *missing* cache file is simply a cold run).
pub fn analyze_incremental(
    registry: &SiteRegistry,
    trace: &[Event],
    cache_path: &Path,
) -> io::Result<(RiskReport, AnalyzeStats)> {
    let mut cache = SummaryCache::load(cache_path)?;
    let (report, stats) = analyze_with_cache(registry, trace, Some(&mut cache));
    cache.save(cache_path)?;
    Ok((report, stats))
}

/// The shared pipeline body: `cache = None` computes everything,
/// `Some` reuses hash-clean modules and refreshes the entries in place.
pub fn analyze_with_cache(
    registry: &SiteRegistry,
    trace: &[Event],
    cache: Option<&mut SummaryCache>,
) -> (RiskReport, AnalyzeStats) {
    let program = ir::lower(registry, trace);
    let slots = escape::analyze_slots(&program);
    let graph = CallGraph::build(registry);
    let (outcomes, _summaries, stats) = summary::run(&program, &slots, &graph, cache);
    (RiskReport::new(registry, outcomes), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_core::RiskClass;
    use workloads::{BuggyApp, SharedHelperApp};

    #[test]
    fn every_buggy_app_flags_its_bug_and_proves_the_rest() {
        for app in BuggyApp::all() {
            let registry = app.registry();
            for seed in 1..=3 {
                let report = analyze(&registry, &app.trace(seed));
                assert_eq!(
                    report.class_of(app.bug_ctx()),
                    RiskClass::Suspicious,
                    "{}: planted overflow context must be suspicious",
                    app.name
                );
                let (safe, sus, _) = report.census();
                assert_eq!(sus, 1, "{}: exactly one suspicious site", app.name);
                assert_eq!(
                    safe,
                    report.verdicts.len() - 1,
                    "{}: every non-bug site is proven safe",
                    app.name
                );
            }
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let app = &BuggyApp::all()[2];
        let registry = app.registry();
        let a = analyze(&registry, &app.trace(7));
        let b = analyze(&registry, &app.trace(7));
        assert_eq!(a, b);
    }

    #[test]
    fn context_sensitivity_beats_the_per_function_view() {
        // Through a shared allocation helper, the context-sensitive
        // pass proves every sibling of the buggy context safe; the
        // per-function (call-string-1) view must condemn them all.
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let report = analyze(&registry, &app.trace(1, None));
        let (ctx_safe, ctx_sus, _) = report.census();
        assert_eq!(ctx_sus, 1);
        assert_eq!(ctx_safe, app.contexts() - 1);
        let (fn_safe, fn_sus, _) = report.function_census();
        assert_eq!(
            fn_sus,
            app.contexts_per_helper,
            "per-function view smears the bug over the whole helper"
        );
        assert!(
            ctx_safe > fn_safe,
            "context-sensitive pass must prove strictly more contexts safe"
        );
    }

    #[test]
    fn incremental_reanalysis_recomputes_only_the_dirty_function() {
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let dir = std::env::temp_dir().join("csod-analyze-incremental-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        std::fs::remove_file(&path).ok();

        let (cold, stats) = analyze_incremental(&registry, &app.trace(1, None), &path).unwrap();
        assert_eq!(stats.computed, stats.modules);

        let (warm, stats) = analyze_incremental(&registry, &app.trace(1, Some(3)), &path).unwrap();
        assert_eq!(stats.computed, 1, "one-function change, one module");
        assert_eq!(stats.reused, stats.modules - 1);
        // The warm incremental verdicts match a cold analysis of the
        // same dirty trace exactly.
        let fresh = analyze(&registry, &app.trace(1, Some(3)));
        assert_eq!(warm, fresh);
        assert_eq!(cold.census().1, warm.census().1);
        std::fs::remove_file(&path).ok();
    }
}
