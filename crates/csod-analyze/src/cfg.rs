//! Control-flow graph construction and flow-sensitive binding
//! resolution.
//!
//! Each thread's statement stream is split into basic blocks at thread
//! spawns (the only control transfer the IR has); a spawn block gets
//! two successors — its same-thread fall-through and the spawned
//! thread's entry. A worklist pass then propagates per-slot *reaching
//! allocation* states through the graph, joining at merge points, to
//! resolve every `Use` to the [`Binding`] it can touch:
//!
//! * slots confined to one thread resolve flow-sensitively — the state
//!   at the use names exactly the generations that can be live there;
//! * slots that [escape](crate::escape) resolve flow-insensitively to
//!   the superset of every generation ever stored in them, because the
//!   thread interleaving decides which one is current.

use crate::escape::SlotTable;
use crate::ir::{GenId, Program, StmtKind};
use std::collections::HashMap;

/// A basic block: a half-open statement range within one thread.
#[derive(Debug, Clone)]
pub struct Block {
    /// First statement index (inclusive).
    pub start: usize,
    /// Last statement index (exclusive).
    pub end: usize,
    /// Successor blocks as `(thread, block)` pairs.
    pub succs: Vec<(usize, usize)>,
}

/// The control-flow graph of a lowered program.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks of each thread; every thread has at least one (possibly
    /// empty) block so spawn edges always have a target.
    pub blocks: Vec<Vec<Block>>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let mut blocks: Vec<Vec<Block>> = Vec::with_capacity(program.threads.len());
        for stmts in &program.threads {
            let mut thread_blocks = Vec::new();
            let mut start = 0usize;
            for (i, stmt) in stmts.iter().enumerate() {
                if matches!(stmt.kind, StmtKind::Spawn { .. }) {
                    thread_blocks.push(Block {
                        start,
                        end: i + 1,
                        succs: Vec::new(),
                    });
                    start = i + 1;
                }
            }
            if start < stmts.len() || thread_blocks.is_empty() {
                thread_blocks.push(Block {
                    start,
                    end: stmts.len(),
                    succs: Vec::new(),
                });
            }
            blocks.push(thread_blocks);
        }
        // Wire successors now that every thread has its entry block.
        for t in 0..blocks.len() {
            for b in 0..blocks[t].len() {
                let mut succs = Vec::new();
                let (start, end) = (blocks[t][b].start, blocks[t][b].end);
                if end > start {
                    if let StmtKind::Spawn { child } = program.threads[t][end - 1].kind {
                        if child < blocks.len() {
                            succs.push((child, 0));
                        }
                    }
                }
                if b + 1 < blocks[t].len() {
                    succs.push((t, b + 1));
                }
                blocks[t][b].succs = succs;
            }
        }
        Cfg { blocks }
    }

    /// Total number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }
}

/// The set of allocations a `Use` statement can touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// The slot is provably empty here: the access is a no-op.
    None,
    /// Exactly one generation can be in the slot.
    Definite(GenId),
    /// Any of these generations can be in the slot.
    Ambiguous(Vec<GenId>),
}

/// Resolved bindings for every `Use` statement, keyed by
/// `(thread, statement index)`.
#[derive(Debug, Default)]
pub struct Bindings {
    map: HashMap<(usize, usize), Binding>,
}

impl Bindings {
    /// The binding of the `Use` at `stmt` in `thread`, if that
    /// statement is a reachable `Use`.
    pub fn of(&self, thread: usize, stmt: usize) -> Option<&Binding> {
        self.map.get(&(thread, stmt))
    }

    /// Iterates over all resolved bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &Binding)> {
        self.map.iter()
    }
}

/// Per-slot reaching-allocation state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotState {
    /// Generations that can currently be in the slot (sorted).
    gens: Vec<GenId>,
    /// Whether the slot can be empty here.
    maybe_empty: bool,
}

impl SlotState {
    fn empty() -> SlotState {
        SlotState {
            gens: Vec::new(),
            maybe_empty: true,
        }
    }

    fn join_into(&mut self, other: &SlotState) -> bool {
        let mut changed = false;
        for g in &other.gens {
            if let Err(pos) = self.gens.binary_search(g) {
                self.gens.insert(pos, *g);
                changed = true;
            }
        }
        if other.maybe_empty && !self.maybe_empty {
            self.maybe_empty = true;
            changed = true;
        }
        changed
    }
}

/// Resolves every `Use` statement of `program` to its [`Binding`] by a
/// worklist dataflow over `cfg`, consulting `slots` for escape facts.
pub fn resolve_bindings(program: &Program, cfg: &Cfg, slots: &SlotTable) -> Bindings {
    let entry_state = vec![SlotState::empty(); program.slot_count];
    let mut in_states: Vec<Vec<Option<Vec<SlotState>>>> = cfg
        .blocks
        .iter()
        .map(|tb| vec![None; tb.len()])
        .collect();
    in_states[0][0] = Some(entry_state);

    let mut bindings = Bindings::default();
    let mut worklist = vec![(0usize, 0usize)];
    while let Some((t, b)) = worklist.pop() {
        let Some(state_in) = in_states[t][b].clone() else {
            continue;
        };
        let mut state = state_in;
        let block = &cfg.blocks[t][b];
        for i in block.start..block.end {
            let stmt = &program.threads[t][i];
            match stmt.kind {
                StmtKind::Alloc { gen } => {
                    let slot = program.generation(gen).slot;
                    // Strong update: the slot now holds exactly `gen`.
                    state[slot] = SlotState {
                        gens: vec![gen],
                        maybe_empty: false,
                    };
                }
                StmtKind::Free { slot } => {
                    state[slot] = SlotState::empty();
                }
                StmtKind::Use { slot, .. } => {
                    let info = slots.slot(slot);
                    let binding = if info.shared {
                        // Interleaving-dependent: only the superset of
                        // everything ever stored here is sound.
                        match info.gens.len() {
                            0 => Binding::None,
                            1 => Binding::Definite(info.gens[0]),
                            _ => Binding::Ambiguous(info.gens.clone()),
                        }
                    } else {
                        match state[slot].gens.len() {
                            0 => Binding::None,
                            1 => Binding::Definite(state[slot].gens[0]),
                            _ => Binding::Ambiguous(state[slot].gens.clone()),
                        }
                    };
                    bindings.map.insert((t, i), binding);
                }
                StmtKind::Spawn { .. } => {}
            }
        }
        for &(st, sb) in &block.succs {
            match &mut in_states[st][sb] {
                Some(existing) => {
                    let mut changed = false;
                    for (slot, s) in existing.iter_mut().enumerate() {
                        changed |= s.join_into(&state[slot]);
                    }
                    if changed {
                        worklist.push((st, sb));
                    }
                }
                none => {
                    *none = Some(state.clone());
                    worklist.push((st, sb));
                }
            }
        }
    }
    bindings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escape::analyze_slots;
    use crate::ir::lower;
    use csod_ctx::FrameTable;
    use sim_machine::{AccessKind, SiteToken};
    use std::sync::Arc;
    use workloads::{Event, SiteRegistry};

    fn registry(sites: usize) -> SiteRegistry {
        let mut reg = SiteRegistry::new("cfgtest", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(sites);
        reg.add_access_site("cfgtest", "u.c:1");
        reg
    }

    fn analyze(reg: &SiteRegistry, trace: &[Event]) -> (Program, Bindings) {
        let program = lower(reg, trace);
        let cfg = Cfg::build(&program);
        let slots = analyze_slots(&program);
        let bindings = resolve_bindings(&program, &cfg, &slots);
        (program, bindings)
    }

    #[test]
    fn spawns_split_blocks_and_wire_children() {
        let reg = registry(1);
        let trace = vec![
            Event::malloc(0, 8, 0),
            Event::SpawnThread,
            Event::SpawnThread,
            Event::free(0),
        ];
        let p = lower(&reg, &trace);
        let cfg = Cfg::build(&p);
        // Thread 0: [alloc, spawn] [spawn] [free]; threads 1/2: entry.
        assert_eq!(cfg.blocks[0].len(), 3);
        assert_eq!(cfg.block_count(), 5);
        assert_eq!(cfg.blocks[0][0].succs, vec![(1, 0), (0, 1)]);
        assert_eq!(cfg.blocks[0][1].succs, vec![(2, 0), (0, 2)]);
        assert!(cfg.blocks[0][2].succs.is_empty());
    }

    #[test]
    fn reallocation_rebinds_definitely_in_one_thread() {
        let reg = registry(2);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::access(0, 0, 8, AccessKind::Read, t), // gen 0
            Event::free(0),
            Event::malloc(1, 32, 0),
            Event::access(0, 0, 8, AccessKind::Read, t), // gen 1
        ];
        let (p, b) = analyze(&reg, &trace);
        assert_eq!(b.of(0, 1), Some(&Binding::Definite(crate::ir::GenId(0))));
        assert_eq!(b.of(0, 4), Some(&Binding::Definite(crate::ir::GenId(1))));
        assert_eq!(p.generations.len(), 2);
    }

    #[test]
    fn use_of_an_empty_slot_is_binding_none() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::free(0),
            Event::access(0, 0, 8, AccessKind::Read, t),
        ];
        let (_, b) = analyze(&reg, &trace);
        assert_eq!(b.of(0, 2), Some(&Binding::None));
    }

    #[test]
    fn shared_multi_generation_slot_is_ambiguous_everywhere() {
        let reg = registry(2);
        let t = SiteToken(0);
        // Thread 0 allocates into slot 0 twice; thread 1 reads it. The
        // read makes the slot escape, so even thread 0's own access
        // right after the second malloc is interleaving-ambiguous.
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 16, 0),
            Event::malloc(1, 32, 0),
            Event::Access {
                thread: 1,
                slot: 0,
                offset: 0,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            },
            Event::access(0, 0, 8, AccessKind::Read, t),
        ];
        let (_, b) = analyze(&reg, &trace);
        let amb = Binding::Ambiguous(vec![crate::ir::GenId(0), crate::ir::GenId(1)]);
        assert_eq!(b.of(1, 0), Some(&amb));
        assert_eq!(b.of(0, 3), Some(&amb));
    }

    #[test]
    fn shared_single_generation_slot_stays_definite() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 16, 0),
            Event::Access {
                thread: 1,
                slot: 0,
                offset: 0,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            },
        ];
        let (_, b) = analyze(&reg, &trace);
        // Only one generation ever enters the slot: the cross-thread
        // read can touch it or nothing — still definite for bounds.
        assert_eq!(b.of(1, 0), Some(&Binding::Definite(crate::ir::GenId(0))));
    }
}
