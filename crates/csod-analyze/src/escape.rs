//! Escape and aliasing analysis over pointer slots.
//!
//! Slots are the IR's pointer variables. Before bounds inference can
//! relate an access to the size of the object it touches, it must know
//! *which* allocations can flow into the slot the access reads through
//! — and whether that set can be resolved flow-sensitively at all. A
//! slot written or read by more than one thread *escapes*: its content
//! at any use depends on the thread interleaving, so only the
//! flow-insensitive superset of its generations is sound. A slot
//! confined to one thread is resolved precisely by the dataflow pass in
//! [`cfg`](crate::cfg).

use crate::ir::{GenId, Program, StmtKind};
use std::collections::BTreeSet;

/// Everything the analysis knows about one pointer slot.
#[derive(Debug, Clone)]
pub struct SlotInfo {
    /// All generations ever stored in the slot, in allocation order.
    pub gens: Vec<GenId>,
    /// Threads that store into the slot (alloc).
    pub def_threads: BTreeSet<usize>,
    /// Threads that read through or free the slot.
    pub use_threads: BTreeSet<usize>,
    /// Whether the slot escapes its defining thread: touched by more
    /// than one thread, making its content interleaving-dependent.
    pub shared: bool,
    /// Number of uses-after-free through this slot (out of overflow
    /// scope, but reported for completeness).
    pub dangling_uses: usize,
}

impl SlotInfo {
    fn new() -> SlotInfo {
        SlotInfo {
            gens: Vec::new(),
            def_threads: BTreeSet::new(),
            use_threads: BTreeSet::new(),
            shared: false,
            dangling_uses: 0,
        }
    }
}

/// Per-slot escape facts for a whole program.
#[derive(Debug)]
pub struct SlotTable {
    /// Facts for each slot, indexed by slot number.
    pub slots: Vec<SlotInfo>,
}

impl SlotTable {
    /// The info for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the analyzed program.
    pub fn slot(&self, slot: usize) -> &SlotInfo {
        &self.slots[slot]
    }

    /// Number of slots that escape their defining thread.
    pub fn shared_count(&self) -> usize {
        self.slots.iter().filter(|s| s.shared).count()
    }
}

/// Computes the [`SlotTable`] of a lowered program.
pub fn analyze_slots(program: &Program) -> SlotTable {
    let mut slots = vec![SlotInfo::new(); program.slot_count];
    for gen in &program.generations {
        let info = &mut slots[gen.slot];
        info.gens.push(gen.id);
        info.def_threads.insert(gen.thread);
    }
    for (thread, stmts) in program.threads.iter().enumerate() {
        for stmt in stmts {
            match stmt.kind {
                StmtKind::Use { slot, dangling, .. } => {
                    let info = &mut slots[slot];
                    info.use_threads.insert(thread);
                    if dangling {
                        info.dangling_uses += 1;
                    }
                }
                StmtKind::Free { slot } => {
                    slots[slot].use_threads.insert(thread);
                }
                StmtKind::Alloc { .. } | StmtKind::Spawn { .. } => {}
            }
        }
    }
    for info in &mut slots {
        let mut touching = info.def_threads.clone();
        touching.extend(info.use_threads.iter().copied());
        info.shared = touching.len() > 1;
    }
    SlotTable { slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use csod_ctx::FrameTable;
    use sim_machine::{AccessKind, SiteToken};
    use std::sync::Arc;
    use workloads::{Event, SiteRegistry};

    fn registry() -> SiteRegistry {
        let mut reg = SiteRegistry::new("esc", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(2);
        reg.add_access_site("esc", "u.c:1");
        reg
    }

    #[test]
    fn single_thread_slots_do_not_escape() {
        let reg = registry();
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::access(0, 0, 8, AccessKind::Read, t),
            Event::free(0),
            Event::malloc(1, 32, 0),
        ];
        let table = analyze_slots(&lower(&reg, &trace));
        assert_eq!(table.shared_count(), 0);
        assert_eq!(table.slot(0).gens.len(), 2);
    }

    #[test]
    fn cross_thread_use_marks_the_slot_shared() {
        let reg = registry();
        let t = SiteToken(0);
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 16, 0), // allocated on thread 0
            Event::Access {
                thread: 1,
                slot: 0,
                offset: 0,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            },
        ];
        let table = analyze_slots(&lower(&reg, &trace));
        assert!(table.slot(0).shared);
        assert_eq!(table.shared_count(), 1);
    }

    #[test]
    fn dangling_uses_are_counted() {
        let reg = registry();
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::free(0),
            Event::DanglingAccess {
                thread: 0,
                slot: 0,
                offset: 0,
                kind: AccessKind::Read,
                site: t,
            },
        ];
        let table = analyze_slots(&lower(&reg, &trace));
        assert_eq!(table.slot(0).dangling_uses, 1);
        assert!(!table.slot(0).shared);
    }
}
