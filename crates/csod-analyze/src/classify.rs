//! The classifier: bounds facts in, per-context risk verdicts out.
//!
//! For every `Use` the binding resolution left us, the classifier
//! relates the access's byte range to the size of the object(s) it can
//! touch and folds the result into a per-allocation-context verdict:
//!
//! * **Definite** bindings compare exactly: `offset + len > size` is an
//!   overflow, anything else is proven in bounds for *this* access.
//! * **Ambiguous** bindings go through a per-`(access site, slot)`
//!   [`AccessSummary`] — the interval join of every end offset the
//!   statement produces, switching to widening after
//!   [`WIDEN_AFTER`] occurrences so huge traces summarize in constant
//!   space. A summary bounded below the smallest candidate object is
//!   safe; one that can reach past it is suspicious; one whose bound
//!   was invented by widening proves nothing and yields *Unknown*.
//! * `PastEnd` accesses (the trace's overflow events) are out of
//!   bounds for every possible size and mark every candidate context
//!   suspicious outright.
//!
//! Uses-after-free are out of overflow scope (CSOD removes the
//! watchpoint at `free`) and are skipped. The lattice is
//! `ProvenSafe < Unknown < Suspicious`: a context keeps the worst
//! verdict any of its generations' accesses earned.
//!
//! The core is split in two so the per-function summary stage
//! ([`summary`](crate::summary)) can run it module-by-module:
//! [`classify_stmts`] turns one statement subset into [`Raise`]s, and
//! [`fold_raises`] folds raises from any number of modules into the
//! final per-context outcomes. [`classify`] is the classic whole-program
//! composition of the two.

use crate::cfg::{Binding, Bindings};
use crate::domain::Interval;
use crate::ir::{AccessRange, GenId, Program, StmtKind};
use csod_core::RiskClass;
use std::collections::HashMap;

/// Number of occurrences after which an access summary stops joining
/// and starts widening. Joins of concrete ends are exact; widening
/// bounds the work on access-dense traces at the price of precision.
pub const WIDEN_AFTER: usize = 64;

/// Interval summary of every end offset one access site produces
/// through one slot.
#[derive(Debug, Clone)]
pub struct AccessSummary {
    /// Interval of exclusive end offsets (bytes past object base).
    pub end: Interval,
    /// Number of accesses folded in.
    pub occurrences: usize,
}

impl AccessSummary {
    fn fold(&mut self, end: i128) {
        let point = Interval::point(end);
        self.end = if self.occurrences < WIDEN_AFTER {
            self.end.join(point)
        } else {
            self.end.widen(point)
        };
        self.occurrences += 1;
    }
}

/// The verdict for one allocation calling context.
///
/// In the trace IR every registry allocation site *is* one calling
/// context (the registry stores the full backtrace per site), so the
/// outcome is keyed by the site index and resolves to the context's
/// frame signature in the [report](crate::report).
#[derive(Debug, Clone)]
pub struct ContextOutcome {
    /// Allocation-site (= calling-context) index in the registry.
    pub site: usize,
    /// The risk class this calling context gets.
    pub class: RiskClass,
    /// Human-readable justification (for suspicious/unknown verdicts).
    pub witness: Option<String>,
}

pub(crate) fn rank(class: RiskClass) -> u8 {
    match class {
        RiskClass::ProvenSafe => 0,
        RiskClass::Unknown => 1,
        RiskClass::Suspicious => 2,
    }
}

/// One classification fact: evidence that `site`'s verdict must be at
/// least `class`. Raises are what module summaries record and what the
/// incremental cache persists (keyed by context signature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Raise {
    /// Allocation-site (calling-context) index.
    pub site: usize,
    /// The floor this fact imposes.
    pub class: RiskClass,
    /// Why.
    pub witness: String,
}

/// A borrowed view of a [`Binding`], so module-local binding tables and
/// the whole-program [`Bindings`] feed the same classification core.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BindingRef<'a> {
    /// The slot is provably empty here.
    None,
    /// Exactly one generation can be in the slot.
    Definite(GenId),
    /// Any of these generations can be in the slot.
    Ambiguous(&'a [GenId]),
}

impl<'a> From<&'a Binding> for BindingRef<'a> {
    fn from(b: &'a Binding) -> BindingRef<'a> {
        match b {
            Binding::None => BindingRef::None,
            Binding::Definite(g) => BindingRef::Definite(*g),
            Binding::Ambiguous(gens) => BindingRef::Ambiguous(gens),
        }
    }
}

/// Classifies the `Use` statements named by `stmts` (as
/// `(thread, index)` pairs, in thread-major program order), resolving
/// bindings through `binding_of`. Statements for which `binding_of`
/// returns `None` are skipped — that is how a module restricts the pass
/// to its own slots.
pub(crate) fn classify_stmts<'m, F>(
    program: &Program,
    stmts: &[(usize, usize)],
    binding_of: F,
) -> Vec<Raise>
where
    F: Fn(usize, usize) -> Option<BindingRef<'m>>,
{
    let mut raises = Vec::new();
    let mut raise = |site: usize, class: RiskClass, witness: String| {
        raises.push(Raise {
            site,
            class,
            witness,
        });
    };

    // Pass 1: summarize ambiguous exact accesses per (token, slot).
    // Iterate in program order (not map order) so summary folding —
    // and with it the widening point — is deterministic.
    let mut summaries: HashMap<(u64, usize), AccessSummary> = HashMap::new();
    for &(thread, i) in stmts {
        let StmtKind::Use {
            slot,
            range: AccessRange::Exact { offset, len },
            token,
            dangling: false,
            ..
        } = program.threads[thread][i].kind
        else {
            continue;
        };
        if !matches!(binding_of(thread, i), Some(BindingRef::Ambiguous(_))) {
            continue;
        }
        let end = i128::from(offset.saturating_add(len));
        summaries
            .entry((token.0, slot))
            .and_modify(|s| s.fold(end))
            .or_insert(AccessSummary {
                end: Interval::point(end),
                occurrences: 1,
            });
    }

    // Pass 2: fold every bound access into raises.
    for &(thread, i) in stmts {
        let Some(binding) = binding_of(thread, i) else {
            continue;
        };
        let StmtKind::Use {
            slot,
            range,
            token,
            dangling,
            ..
        } = program.threads[thread][i].kind
        else {
            continue;
        };
        if dangling {
            continue;
        }
        match (range, binding) {
            (_, BindingRef::None) => {}
            (AccessRange::FirstWord, _) => {
                // The runner clamps bursts to the first in-bounds word;
                // safe for every size.
            }
            (AccessRange::PastEnd, BindingRef::Definite(g)) => {
                let gen = program.generation(g);
                raise(
                    gen.site,
                    RiskClass::Suspicious,
                    format!(
                        "statement {} overflows past the boundary of the {}-byte object",
                        token.0, gen.size
                    ),
                );
            }
            (AccessRange::PastEnd, BindingRef::Ambiguous(gens)) => {
                for g in gens {
                    let gen = program.generation(*g);
                    raise(
                        gen.site,
                        RiskClass::Suspicious,
                        format!(
                            "statement {} overflows a possibly-bound object of slot {}",
                            token.0, slot
                        ),
                    );
                }
            }
            (AccessRange::Exact { offset, len }, BindingRef::Definite(g)) => {
                let gen = program.generation(g);
                let end = offset.saturating_add(len);
                if end > gen.size {
                    raise(
                        gen.site,
                        RiskClass::Suspicious,
                        format!(
                            "access [{offset}, {end}) exceeds the {}-byte object",
                            gen.size
                        ),
                    );
                }
            }
            (AccessRange::Exact { .. }, BindingRef::Ambiguous(gens)) => {
                let summary = &summaries[&(token.0, slot)];
                let end_hi = if summary.end.widened {
                    None
                } else {
                    summary.end.hi_finite()
                };
                let Some(end_hi) = end_hi else {
                    for g in gens {
                        let gen = program.generation(*g);
                        raise(
                            gen.site,
                            RiskClass::Unknown,
                            format!(
                                "access summary of statement {} through slot {} widened to {}",
                                token.0, slot, summary.end
                            ),
                        );
                    }
                    continue;
                };
                // Per candidate site, compare against the smallest
                // object this binding can put in the slot.
                let mut min_size: HashMap<usize, u64> = HashMap::new();
                for g in gens {
                    let gen = program.generation(*g);
                    min_size
                        .entry(gen.site)
                        .and_modify(|m| *m = (*m).min(gen.size))
                        .or_insert(gen.size);
                }
                for (site, size) in min_size {
                    if end_hi > i128::from(size) {
                        raise(
                            site,
                            RiskClass::Suspicious,
                            format!(
                                "summarized access end {} can exceed a {size}-byte binding of slot {slot}",
                                summary.end
                            ),
                        );
                    }
                }
            }
        }
    }
    raises
}

/// Folds raises (from any number of modules, in module order) into one
/// [`ContextOutcome`] per allocation site. Every site starts at
/// `ProvenSafe`; the worst raise wins; sites never allocated in the
/// trace stay vacuously safe with an explanatory witness.
pub(crate) fn fold_raises(
    program: &Program,
    raises: impl IntoIterator<Item = Raise>,
) -> Vec<ContextOutcome> {
    let mut outcomes: Vec<ContextOutcome> = (0..program.alloc_site_count)
        .map(|site| ContextOutcome {
            site,
            class: RiskClass::ProvenSafe,
            witness: None,
        })
        .collect();
    for r in raises {
        if r.site < outcomes.len() && rank(r.class) > rank(outcomes[r.site].class) {
            outcomes[r.site].class = r.class;
            outcomes[r.site].witness = Some(r.witness);
        }
    }

    let mut allocated = vec![false; program.alloc_site_count];
    for gen in &program.generations {
        if gen.site < allocated.len() {
            allocated[gen.site] = true;
        }
    }
    for outcome in &mut outcomes {
        if !allocated[outcome.site] && outcome.witness.is_none() {
            outcome.witness = Some("never allocated in the analyzed trace".to_owned());
        }
    }
    outcomes
}

/// Classifies every allocation context of `program` against
/// whole-program `bindings` — the classic single-module composition of
/// [`classify_stmts`] and [`fold_raises`].
pub fn classify(program: &Program, bindings: &Bindings) -> Vec<ContextOutcome> {
    let stmts: Vec<(usize, usize)> = program
        .threads
        .iter()
        .enumerate()
        .flat_map(|(t, s)| (0..s.len()).map(move |i| (t, i)))
        .collect();
    let raises = classify_stmts(program, &stmts, |t, i| {
        bindings.of(t, i).map(BindingRef::from)
    });
    fold_raises(program, raises)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{resolve_bindings, Cfg};
    use crate::escape::analyze_slots;
    use crate::ir::lower;
    use csod_ctx::FrameTable;
    use sim_machine::{AccessKind, SiteToken};
    use std::sync::Arc;
    use workloads::{Event, SiteRegistry};

    fn registry(sites: usize) -> SiteRegistry {
        let mut reg = SiteRegistry::new("clstest", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(sites);
        reg.add_access_site("clstest", "u.c:1");
        reg
    }

    fn run(reg: &SiteRegistry, trace: &[Event]) -> Vec<ContextOutcome> {
        let program = lower(reg, trace);
        let cfg = Cfg::build(&program);
        let slots = analyze_slots(&program);
        let bindings = resolve_bindings(&program, &cfg, &slots);
        classify(&program, &bindings)
    }

    #[test]
    fn in_bounds_accesses_prove_the_site_safe() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 64, 0),
            Event::access(0, 0, 8, AccessKind::Read, t),
            Event::access(0, 56, 8, AccessKind::Write, t),
            Event::burst(0, 1000, AccessKind::Read, t),
            Event::free(0),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn definite_out_of_bounds_intent_is_suspicious() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            // As-written [12, 20) exceeds the 16-byte object.
            Event::access(0, 12, 8, AccessKind::Write, t),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert!(out[0].witness.as_deref().unwrap().contains("exceeds"));
    }

    #[test]
    fn past_end_overflow_is_suspicious() {
        let reg = registry(2);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::malloc(1, 16, 1),
            Event::access(1, 0, 8, AccessKind::Read, t),
            Event::overflow(0, AccessKind::Write, t),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert_eq!(out[1].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn ambiguous_binding_compares_against_the_smallest_candidate() {
        let reg = registry(2);
        let t = SiteToken(0);
        // Slot 0 escapes with two generations: 16 B (site 0) and 64 B
        // (site 1). A 24-byte-end access fits the big one only.
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 16, 0),
            Event::malloc(1, 64, 0),
            Event::Access {
                thread: 1,
                slot: 0,
                offset: 16,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            },
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert_eq!(out[1].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn widened_summary_demotes_to_unknown() {
        let reg = registry(2);
        let t = SiteToken(0);
        let mut trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 100_000, 0),
            Event::malloc(1, 100_000, 0),
        ];
        // One statement, ever-growing in-bounds ends through an escaped
        // slot: past WIDEN_AFTER the summary widens to +inf.
        for i in 0..(WIDEN_AFTER as u64 + 8) {
            trace.push(Event::Access {
                thread: 1,
                slot: 0,
                offset: i * 8,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            });
        }
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Unknown);
        assert_eq!(out[1].class, RiskClass::Unknown);
        assert!(out[0].witness.as_deref().unwrap().contains("widened"));
    }

    #[test]
    fn never_allocated_sites_are_vacuously_safe() {
        let reg = registry(3);
        let trace = vec![Event::malloc(0, 8, 0)];
        let out = run(&reg, &trace);
        assert_eq!(out[2].class, RiskClass::ProvenSafe);
        assert!(out[2].witness.as_deref().unwrap().contains("never allocated"));
    }

    #[test]
    fn suspicious_outranks_unknown() {
        assert!(rank(RiskClass::Suspicious) > rank(RiskClass::Unknown));
        assert!(rank(RiskClass::Unknown) > rank(RiskClass::ProvenSafe));
    }
}
