//! The classifier: bounds facts in, per-site risk verdicts out.
//!
//! For every `Use` the binding resolution left us, the classifier
//! relates the access's byte range to the size of the object(s) it can
//! touch and folds the result into a per-allocation-site verdict:
//!
//! * **Definite** bindings compare exactly: `offset + len > size` is an
//!   overflow, anything else is proven in bounds for *this* access.
//! * **Ambiguous** bindings go through a per-`(access site, slot)`
//!   [`AccessSummary`] — the interval join of every end offset the
//!   statement produces, switching to widening after
//!   [`WIDEN_AFTER`] occurrences so huge traces summarize in constant
//!   space. A summary bounded below the smallest candidate object is
//!   safe; one that can reach past it is suspicious; one whose bound
//!   was invented by widening proves nothing and yields *Unknown*.
//! * `PastEnd` accesses (the trace's overflow events) are out of
//!   bounds for every possible size and mark every candidate site
//!   suspicious outright.
//!
//! Uses-after-free are out of overflow scope (CSOD removes the
//! watchpoint at `free`) and are skipped. The lattice is
//! `ProvenSafe < Unknown < Suspicious`: a site keeps the worst verdict
//! any of its generations' accesses earned.

use crate::cfg::{Binding, Bindings};
use crate::domain::Interval;
use crate::ir::{AccessRange, Program, StmtKind};
use csod_core::RiskClass;
use std::collections::HashMap;

/// Number of occurrences after which an access summary stops joining
/// and starts widening. Joins of concrete ends are exact; widening
/// bounds the work on access-dense traces at the price of precision.
pub const WIDEN_AFTER: usize = 64;

/// Interval summary of every end offset one access site produces
/// through one slot.
#[derive(Debug, Clone)]
pub struct AccessSummary {
    /// Interval of exclusive end offsets (bytes past object base).
    pub end: Interval,
    /// Number of accesses folded in.
    pub occurrences: usize,
}

impl AccessSummary {
    fn fold(&mut self, end: i128) {
        let point = Interval::point(end);
        self.end = if self.occurrences < WIDEN_AFTER {
            self.end.join(point)
        } else {
            self.end.widen(point)
        };
        self.occurrences += 1;
    }
}

/// The verdict for one allocation site.
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// Allocation-site index in the registry.
    pub site: usize,
    /// The risk class every calling context of this site gets.
    pub class: RiskClass,
    /// Human-readable justification (for suspicious/unknown verdicts).
    pub witness: Option<String>,
}

fn rank(class: RiskClass) -> u8 {
    match class {
        RiskClass::ProvenSafe => 0,
        RiskClass::Unknown => 1,
        RiskClass::Suspicious => 2,
    }
}

/// Classifies every allocation site of `program`.
pub fn classify(program: &Program, bindings: &Bindings) -> Vec<SiteOutcome> {
    let mut outcomes: Vec<SiteOutcome> = (0..program.alloc_site_count)
        .map(|site| SiteOutcome {
            site,
            class: RiskClass::ProvenSafe,
            witness: None,
        })
        .collect();
    let raise = |outcomes: &mut Vec<SiteOutcome>, site: usize, class: RiskClass, w: String| {
        if site < outcomes.len() && rank(class) > rank(outcomes[site].class) {
            outcomes[site].class = class;
            outcomes[site].witness = Some(w);
        }
    };

    // Pass 1: summarize ambiguous exact accesses per (token, slot).
    // Iterate in program order (not map order) so summary folding —
    // and with it the widening point — is deterministic.
    let mut summaries: HashMap<(u64, usize), AccessSummary> = HashMap::new();
    for (thread, stmts) in program.threads.iter().enumerate() {
        for (i, stmt) in stmts.iter().enumerate() {
            let StmtKind::Use {
                slot,
                range: AccessRange::Exact { offset, len },
                token,
                dangling: false,
                ..
            } = stmt.kind
            else {
                continue;
            };
            if !matches!(bindings.of(thread, i), Some(Binding::Ambiguous(_))) {
                continue;
            }
            let end = i128::from(offset.saturating_add(len));
            summaries
                .entry((token.0, slot))
                .and_modify(|s| s.fold(end))
                .or_insert(AccessSummary {
                    end: Interval::point(end),
                    occurrences: 1,
                });
        }
    }

    // Pass 2: fold every bound access into its site's verdict.
    let uses = program.threads.iter().enumerate().flat_map(|(t, stmts)| {
        (0..stmts.len()).filter_map(move |i| bindings.of(t, i).map(|b| (t, i, b)))
    });
    for (thread, i, binding) in uses {
        let StmtKind::Use {
            slot,
            range,
            token,
            dangling,
            ..
        } = program.threads[thread][i].kind
        else {
            continue;
        };
        if dangling {
            continue;
        }
        match (range, binding) {
            (_, Binding::None) => {}
            (AccessRange::FirstWord, _) => {
                // The runner clamps bursts to the first in-bounds word;
                // safe for every size.
            }
            (AccessRange::PastEnd, Binding::Definite(g)) => {
                let gen = program.generation(*g);
                raise(
                    &mut outcomes,
                    gen.site,
                    RiskClass::Suspicious,
                    format!(
                        "statement {} overflows past the boundary of the {}-byte object",
                        token.0, gen.size
                    ),
                );
            }
            (AccessRange::PastEnd, Binding::Ambiguous(gens)) => {
                for g in gens {
                    let gen = program.generation(*g);
                    raise(
                        &mut outcomes,
                        gen.site,
                        RiskClass::Suspicious,
                        format!(
                            "statement {} overflows a possibly-bound object of slot {}",
                            token.0, slot
                        ),
                    );
                }
            }
            (AccessRange::Exact { offset, len }, Binding::Definite(g)) => {
                let gen = program.generation(*g);
                let end = offset.saturating_add(len);
                if end > gen.size {
                    raise(
                        &mut outcomes,
                        gen.site,
                        RiskClass::Suspicious,
                        format!(
                            "access [{offset}, {end}) exceeds the {}-byte object",
                            gen.size
                        ),
                    );
                }
            }
            (AccessRange::Exact { .. }, Binding::Ambiguous(gens)) => {
                let summary = &summaries[&(token.0, slot)];
                let end_hi = if summary.end.widened {
                    None
                } else {
                    summary.end.hi_finite()
                };
                let Some(end_hi) = end_hi else {
                    for g in gens {
                        let gen = program.generation(*g);
                        raise(
                            &mut outcomes,
                            gen.site,
                            RiskClass::Unknown,
                            format!(
                                "access summary of statement {} through slot {} widened to {}",
                                token.0, slot, summary.end
                            ),
                        );
                    }
                    continue;
                };
                // Per candidate site, compare against the smallest
                // object this binding can put in the slot.
                let mut min_size: HashMap<usize, u64> = HashMap::new();
                for g in gens {
                    let gen = program.generation(*g);
                    min_size
                        .entry(gen.site)
                        .and_modify(|m| *m = (*m).min(gen.size))
                        .or_insert(gen.size);
                }
                for (site, size) in min_size {
                    if end_hi > i128::from(size) {
                        raise(
                            &mut outcomes,
                            site,
                            RiskClass::Suspicious,
                            format!(
                                "summarized access end {} can exceed a {size}-byte binding of slot {slot}",
                                summary.end
                            ),
                        );
                    }
                }
            }
        }
    }

    // Sites never allocated in the trace stay vacuously safe; note why.
    let mut allocated = vec![false; program.alloc_site_count];
    for gen in &program.generations {
        if gen.site < allocated.len() {
            allocated[gen.site] = true;
        }
    }
    for outcome in &mut outcomes {
        if !allocated[outcome.site] && outcome.witness.is_none() {
            outcome.witness = Some("never allocated in the analyzed trace".to_owned());
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{resolve_bindings, Cfg};
    use crate::escape::analyze_slots;
    use crate::ir::lower;
    use csod_ctx::FrameTable;
    use sim_machine::{AccessKind, SiteToken};
    use std::sync::Arc;
    use workloads::{Event, SiteRegistry};

    fn registry(sites: usize) -> SiteRegistry {
        let mut reg = SiteRegistry::new("clstest", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(sites);
        reg.add_access_site("clstest", "u.c:1");
        reg
    }

    fn run(reg: &SiteRegistry, trace: &[Event]) -> Vec<SiteOutcome> {
        let program = lower(reg, trace);
        let cfg = Cfg::build(&program);
        let slots = analyze_slots(&program);
        let bindings = resolve_bindings(&program, &cfg, &slots);
        classify(&program, &bindings)
    }

    #[test]
    fn in_bounds_accesses_prove_the_site_safe() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 64, 0),
            Event::access(0, 0, 8, AccessKind::Read, t),
            Event::access(0, 56, 8, AccessKind::Write, t),
            Event::burst(0, 1000, AccessKind::Read, t),
            Event::free(0),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn definite_out_of_bounds_intent_is_suspicious() {
        let reg = registry(1);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            // As-written [12, 20) exceeds the 16-byte object.
            Event::access(0, 12, 8, AccessKind::Write, t),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert!(out[0].witness.as_deref().unwrap().contains("exceeds"));
    }

    #[test]
    fn past_end_overflow_is_suspicious() {
        let reg = registry(2);
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::malloc(1, 16, 1),
            Event::access(1, 0, 8, AccessKind::Read, t),
            Event::overflow(0, AccessKind::Write, t),
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert_eq!(out[1].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn ambiguous_binding_compares_against_the_smallest_candidate() {
        let reg = registry(2);
        let t = SiteToken(0);
        // Slot 0 escapes with two generations: 16 B (site 0) and 64 B
        // (site 1). A 24-byte-end access fits the big one only.
        let trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 16, 0),
            Event::malloc(1, 64, 0),
            Event::Access {
                thread: 1,
                slot: 0,
                offset: 16,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            },
        ];
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Suspicious);
        assert_eq!(out[1].class, RiskClass::ProvenSafe);
    }

    #[test]
    fn widened_summary_demotes_to_unknown() {
        let reg = registry(2);
        let t = SiteToken(0);
        let mut trace = vec![
            Event::SpawnThread,
            Event::malloc(0, 100_000, 0),
            Event::malloc(1, 100_000, 0),
        ];
        // One statement, ever-growing in-bounds ends through an escaped
        // slot: past WIDEN_AFTER the summary widens to +inf.
        for i in 0..(WIDEN_AFTER as u64 + 8) {
            trace.push(Event::Access {
                thread: 1,
                slot: 0,
                offset: i * 8,
                len: 8,
                kind: AccessKind::Read,
                site: t,
            });
        }
        let out = run(&reg, &trace);
        assert_eq!(out[0].class, RiskClass::Unknown);
        assert_eq!(out[1].class, RiskClass::Unknown);
        assert!(out[0].witness.as_deref().unwrap().contains("widened"));
    }

    #[test]
    fn never_allocated_sites_are_vacuously_safe() {
        let reg = registry(3);
        let trace = vec![Event::malloc(0, 8, 0)];
        let out = run(&reg, &trace);
        assert_eq!(out[2].class, RiskClass::ProvenSafe);
        assert!(out[2].witness.as_deref().unwrap().contains("never allocated"));
    }

    #[test]
    fn suspicious_outranks_unknown() {
        assert!(rank(RiskClass::Suspicious) > rank(RiskClass::Unknown));
        assert!(rank(RiskClass::Unknown) > rank(RiskClass::ProvenSafe));
    }
}
