//! Analyzer self-test: run the static analysis over every built-in
//! workload and fail if any planted or dynamically observed overflow
//! comes from a context the analysis proved safe.
//!
//! ```text
//! cargo run -p csod-analyze --bin check_workloads -- --check-workloads
//! ```
//!
//! CI runs this as its own job; a non-zero exit means the analysis is
//! unsound on a workload the repo itself ships — the one bug class the
//! priors design cannot tolerate.

use csod_analyze::{analyze, oracle};
use csod_core::RiskClass;
use std::process::ExitCode;
use workloads::{BuggyApp, FuzzWorkload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !(args.is_empty() || args.iter().any(|a| a == "--check-workloads")) {
        eprintln!("usage: check_workloads [--check-workloads]");
        return ExitCode::from(2);
    }

    let mut checked = 0usize;
    let mut failures = 0usize;

    // 1. Every planted overflow in the buggy suite must be flagged.
    for app in BuggyApp::all() {
        let registry = app.registry();
        for seed in 1..=5 {
            let report = analyze(&registry, &app.trace(seed));
            checked += 1;
            let class = report.class_of(app.bug_ctx());
            if class == RiskClass::ProvenSafe {
                failures += 1;
                eprintln!(
                    "FAIL {} (seed {seed}): planted overflow context {} is proven-safe",
                    app.name,
                    app.bug_ctx()
                );
            }
        }
        let (safe, sus, unknown) = analyze(&registry, &app.trace(1)).census();
        println!(
            "{:<28} {safe:>3} proven-safe {sus:>2} suspicious {unknown:>2} unknown",
            app.name
        );
    }

    // 2. Fuzzed workloads: anything the oracle saw overflow must not be
    // proven safe (including the injected FuzzBug context).
    for seed in 0..64 {
        for inject in [false, true] {
            let w = FuzzWorkload::generate(seed, inject);
            let report = analyze(&w.registry, &w.trace);
            checked += 1;
            for site in oracle::overflowed_sites(&w.trace) {
                if report.class_of(site) == RiskClass::ProvenSafe {
                    failures += 1;
                    eprintln!(
                        "FAIL fuzz seed {seed} (inject={inject}): overflowed site {site} is proven-safe"
                    );
                }
            }
            if let Some(bug) = w.bug {
                if report.class_of(bug.ctx) == RiskClass::ProvenSafe {
                    failures += 1;
                    eprintln!(
                        "FAIL fuzz seed {seed}: injected bug context {} is proven-safe",
                        bug.ctx
                    );
                }
            }
        }
    }

    println!("checked {checked} analyses, {failures} soundness failure(s)");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
