//! Analyzer self-test: run the static analysis over every built-in
//! workload and fail if any planted or dynamically observed overflow
//! comes from a context the analysis proved safe.
//!
//! ```text
//! cargo run -p csod-analyze --bin check_workloads -- --check-workloads
//! cargo run -p csod-analyze --bin check_workloads -- --write-golden GOLDEN_census.tsv
//! cargo run -p csod-analyze --bin check_workloads -- --golden GOLDEN_census.tsv
//! ```
//!
//! CI runs this as its own job; a non-zero exit means the analysis is
//! unsound on a workload the repo itself ships — the one bug class the
//! priors design cannot tolerate. The checks, in order:
//!
//! 1. every planted overflow in the buggy suite is flagged;
//! 2. the shared-helper suite proves every sibling of the buggy
//!    context safe and strictly beats the per-function view;
//! 3. the *per-context* differential: every `proven-safe` verdict is
//!    replayed in isolation through the reference interpreter — none
//!    may overflow;
//! 4. fuzzed workloads: anything the oracle saw overflow must not be
//!    proven safe;
//! 5. the incremental cache path produces bit-identical reports to a
//!    cold analysis;
//! 6. (with `--golden`) the per-context verdict census matches the
//!    committed snapshot exactly — any intentional verdict change must
//!    be re-recorded with `--write-golden`.

use csod_analyze::{analyze, analyze_incremental, oracle, RiskReport};
use csod_core::RiskClass;
use std::path::Path;
use std::process::ExitCode;
use workloads::{BuggyApp, FuzzWorkload, SharedHelperApp, SiteRegistry};

/// Renders one app's verdicts as golden-census lines
/// (`app<TAB>signature<TAB>class`), in site order.
fn census_lines(report: &RiskReport) -> String {
    let mut out = String::new();
    for v in &report.verdicts {
        out.push_str(&format!("{}\t{}\t{}\n", report.app, v.signature, v.class));
    }
    out
}

/// The canonical golden corpus: every buggy app plus the shared-helper
/// app, all at seed 1.
fn golden_census() -> String {
    let mut out = String::from("# csod-analyze golden per-context verdict census\n");
    out.push_str("# regenerate: cargo run -p csod-analyze --bin check_workloads -- --write-golden GOLDEN_census.tsv\n");
    for app in BuggyApp::all() {
        let registry = app.registry();
        out.push_str(&census_lines(&analyze(&registry, &app.trace(1))));
    }
    let shared = SharedHelperApp::standard();
    let registry = shared.registry();
    out.push_str(&census_lines(&analyze(&registry, &shared.trace(1, None))));
    out
}

/// Check 3: replay every proven-safe context in isolation; a single
/// overflow is a soundness failure.
fn differential(name: &str, registry: &SiteRegistry, report: &RiskReport, trace: &[workloads::Event]) -> usize {
    let mut failures = 0;
    let overflowed = oracle::overflowed_contexts(registry, trace);
    for v in &report.verdicts {
        if v.class != RiskClass::ProvenSafe {
            continue;
        }
        if overflowed.contains(&v.signature)
            || oracle::context_overflows(registry, trace, &v.signature)
        {
            failures += 1;
            eprintln!(
                "FAIL {name}: context {} is proven-safe but overflows under isolated replay",
                v.signature
            );
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut golden: Option<&Path> = None;
    let mut write_golden: Option<&Path> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check-workloads" => {}
            "--golden" if i + 1 < args.len() => {
                i += 1;
                golden = Some(Path::new(&args[i]));
            }
            "--write-golden" if i + 1 < args.len() => {
                i += 1;
                write_golden = Some(Path::new(&args[i]));
            }
            other => {
                eprintln!(
                    "usage: check_workloads [--check-workloads] [--golden FILE | --write-golden FILE] (got {other:?})"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(path) = write_golden {
        if let Err(e) = std::fs::write(path, golden_census()) {
            eprintln!("FAIL writing golden census {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote golden census to {}", path.display());
        return ExitCode::SUCCESS;
    }

    let mut checked = 0usize;
    let mut failures = 0usize;

    // 1. Every planted overflow in the buggy suite must be flagged.
    for app in BuggyApp::all() {
        let registry = app.registry();
        for seed in 1..=5 {
            let trace = app.trace(seed);
            let report = analyze(&registry, &trace);
            checked += 1;
            let class = report.class_of(app.bug_ctx());
            if class == RiskClass::ProvenSafe {
                failures += 1;
                eprintln!(
                    "FAIL {} (seed {seed}): planted overflow context {} is proven-safe",
                    app.name,
                    app.bug_ctx()
                );
            }
            // 3. Per-context differential over the whole corpus.
            failures += differential(app.name, &registry, &report, &trace);
        }
        let (safe, sus, unknown) = analyze(&registry, &app.trace(1)).census();
        println!(
            "{:<28} {safe:>3} proven-safe {sus:>2} suspicious {unknown:>2} unknown",
            app.name
        );
    }

    // 2. Shared-helper suite: context sensitivity must be doing work.
    let shared = SharedHelperApp::standard();
    let registry = shared.registry();
    for seed in 1..=5 {
        let trace = shared.trace(seed, None);
        let report = analyze(&registry, &trace);
        checked += 1;
        if report.class_of(shared.bug_site()) == RiskClass::ProvenSafe {
            failures += 1;
            eprintln!("FAIL {} (seed {seed}): buggy shared-helper context is proven-safe", shared.name);
        }
        let (ctx_safe, _, _) = report.census();
        let (fn_safe, _, _) = report.function_census();
        if ctx_safe <= fn_safe {
            failures += 1;
            eprintln!(
                "FAIL {} (seed {seed}): context-sensitive pass proves {ctx_safe} contexts safe, \
                 per-function view proves {fn_safe} — no precision gained",
                shared.name
            );
        }
        failures += differential(shared.name, &registry, &report, &trace);
    }
    {
        let report = analyze(&registry, &shared.trace(1, None));
        let (safe, sus, unknown) = report.census();
        let (fn_safe, fn_sus, fn_unknown) = report.function_census();
        println!(
            "{:<28} {safe:>3} proven-safe {sus:>2} suspicious {unknown:>2} unknown \
             (per-function view: {fn_safe} / {fn_sus} / {fn_unknown})",
            shared.name
        );
    }

    // 4. Fuzzed workloads: anything the oracle saw overflow must not be
    // proven safe (including the injected FuzzBug context).
    for seed in 0..64 {
        for inject in [false, true] {
            let w = FuzzWorkload::generate(seed, inject);
            let report = analyze(&w.registry, &w.trace);
            checked += 1;
            for site in oracle::overflowed_sites(&w.trace) {
                if report.class_of(site) == RiskClass::ProvenSafe {
                    failures += 1;
                    eprintln!(
                        "FAIL fuzz seed {seed} (inject={inject}): overflowed site {site} is proven-safe"
                    );
                }
            }
            if let Some(bug) = w.bug {
                if report.class_of(bug.ctx) == RiskClass::ProvenSafe {
                    failures += 1;
                    eprintln!(
                        "FAIL fuzz seed {seed}: injected bug context {} is proven-safe",
                        bug.ctx
                    );
                }
            }
        }
    }

    // 5. Incremental path equivalence: warm re-analysis after a dirty
    // helper must match a cold analysis bit for bit.
    {
        let dir = std::env::temp_dir().join(format!("csod-check-incr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let cache = dir.join("cache.tsv");
        std::fs::remove_file(&cache).ok();
        match analyze_incremental(&registry, &shared.trace(1, None), &cache)
            .and_then(|_| analyze_incremental(&registry, &shared.trace(1, Some(2)), &cache))
        {
            Ok((warm, stats)) => {
                checked += 1;
                let fresh = analyze(&registry, &shared.trace(1, Some(2)));
                if warm != fresh {
                    failures += 1;
                    eprintln!("FAIL incremental: warm report differs from cold analysis");
                }
                if stats.computed >= stats.modules {
                    failures += 1;
                    eprintln!(
                        "FAIL incremental: one-helper change recomputed {}/{} modules",
                        stats.computed, stats.modules
                    );
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL incremental: {e}");
            }
        }
        std::fs::remove_file(&cache).ok();
        std::fs::remove_dir(&dir).ok();
    }

    // 6. Golden census diff, if a snapshot was provided.
    if let Some(path) = golden {
        checked += 1;
        match std::fs::read_to_string(path) {
            Ok(expected) => {
                let actual = golden_census();
                if expected != actual {
                    failures += 1;
                    let expected: Vec<&str> = expected.lines().collect();
                    let actual_lines: Vec<&str> = actual.lines().collect();
                    eprintln!(
                        "FAIL golden census mismatch vs {} ({} vs {} line(s)); \
                         first diverging lines:",
                        path.display(),
                        expected.len(),
                        actual_lines.len()
                    );
                    for i in 0..expected.len().max(actual_lines.len()) {
                        let want = expected.get(i).copied().unwrap_or("<missing>");
                        let got = actual_lines.get(i).copied().unwrap_or("<missing>");
                        if want != got {
                            eprintln!("  - {want}\n  + {got}");
                            break;
                        }
                    }
                    eprintln!(
                        "if the verdict change is intentional, regenerate with --write-golden"
                    );
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL reading golden census {}: {e}", path.display());
            }
        }
    }

    println!("checked {checked} analyses, {failures} soundness failure(s)");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
