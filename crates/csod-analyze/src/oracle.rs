//! A tiny reference interpreter used to *check* the static analysis.
//!
//! The oracle replays a trace concretely — tracking which generation
//! each slot holds at every step — and records the allocation sites
//! whose objects dynamically overflow. The soundness obligation the
//! self-test and property suites enforce is exactly:
//!
//! > no site the oracle saw overflow may be classified `ProvenSafe`.
//!
//! Only `OverflowAccess`/`OverflowBurst` (and `Access`es whose written
//! range exceeds the object) count; the trace runner clamps plain
//! accesses in bounds, but the analyzer judges intent, so the oracle
//! does too.
//!
//! Since verdicts became context-keyed, the oracle can also answer at
//! context granularity: [`overflowed_contexts`] maps the overflowed
//! sites to their frame signatures, and [`context_overflows`] replays
//! the trace with exactly one calling context in scope — the
//! differential the `analysis-soundness` CI job runs per context.

use csod_core::EvidenceStore;
use std::collections::{BTreeSet, HashMap};
use workloads::{Event, SiteRegistry};

/// Replays `trace` and returns the allocation-site indices whose
/// objects are dynamically overflowed (by an overflow event, or by an
/// access whose as-written range exceeds the object size).
pub fn overflowed_sites(trace: &[Event]) -> BTreeSet<usize> {
    let mut live: HashMap<usize, (usize, u64)> = HashMap::new(); // slot -> (site, size)
    let mut hit = BTreeSet::new();
    for event in trace {
        match *event {
            Event::Malloc {
                site, size, slot, ..
            } => {
                live.insert(slot, (site, size));
            }
            Event::Free { slot, .. } => {
                live.remove(&slot);
            }
            Event::OverflowAccess { slot, .. } | Event::OverflowBurst { slot, .. } => {
                if let Some(&(site, _)) = live.get(&slot) {
                    hit.insert(site);
                }
            }
            Event::Access {
                slot, offset, len, ..
            } => {
                if let Some(&(site, size)) = live.get(&slot) {
                    if offset.saturating_add(len) > size {
                        hit.insert(site);
                    }
                }
            }
            _ => {}
        }
    }
    hit
}

/// Replays `trace` and returns the frame *signatures* of every calling
/// context whose object dynamically overflowed. Sites not present in
/// `registry` (a trace from a different app version) are skipped.
pub fn overflowed_contexts(registry: &SiteRegistry, trace: &[Event]) -> BTreeSet<String> {
    let frames = registry.frames();
    overflowed_sites(trace)
        .into_iter()
        .filter(|&site| site < registry.alloc_site_count())
        .map(|site| EvidenceStore::signature(&registry.alloc_site(site).context, frames))
        .collect()
}

/// Replays `trace` with only the calling context named by `signature`
/// in scope and reports whether *that* context overflowed — the
/// per-context differential backing the soundness obligation
///
/// > no context classified `ProvenSafe` may overflow when replayed
/// > in isolation.
///
/// Allocations from other contexts still happen (slot reuse is
/// preserved), but only hits against this context's generations count.
pub fn context_overflows(registry: &SiteRegistry, trace: &[Event], signature: &str) -> bool {
    let frames = registry.frames();
    let matching: BTreeSet<usize> = registry
        .alloc_sites()
        .filter(|site| EvidenceStore::signature(&site.context, frames) == signature)
        .map(|site| site.index)
        .collect();
    if matching.is_empty() {
        return false;
    }
    let mut live: HashMap<usize, (usize, u64)> = HashMap::new();
    for event in trace {
        match *event {
            Event::Malloc {
                site, size, slot, ..
            } => {
                live.insert(slot, (site, size));
            }
            Event::Free { slot, .. } => {
                live.remove(&slot);
            }
            Event::OverflowAccess { slot, .. } | Event::OverflowBurst { slot, .. } => {
                if let Some(&(site, _)) = live.get(&slot) {
                    if matching.contains(&site) {
                        return true;
                    }
                }
            }
            Event::Access {
                slot, offset, len, ..
            } => {
                if let Some(&(site, size)) = live.get(&slot) {
                    if matching.contains(&site) && offset.saturating_add(len) > size {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_machine::{AccessKind, SiteToken};

    #[test]
    fn oracle_sees_overflow_events_and_oversized_accesses() {
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(3, 16, 0),
            Event::malloc(5, 16, 1),
            Event::overflow(0, AccessKind::Write, t),
            Event::access(1, 12, 8, AccessKind::Write, t), // [12, 20) > 16
        ];
        let hit = overflowed_sites(&trace);
        assert!(hit.contains(&3) && hit.contains(&5));
    }

    #[test]
    fn oracle_ignores_freed_slots_and_in_bounds_traffic() {
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::access(0, 0, 16, AccessKind::Read, t),
            Event::free(0),
            // Slot empty: the runner makes this a no-op.
            Event::overflow(0, AccessKind::Write, t),
        ];
        assert!(overflowed_sites(&trace).is_empty());
    }

    #[test]
    fn per_context_replay_isolates_the_buggy_caller() {
        use workloads::SharedHelperApp;
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let trace = app.trace(1, None);
        let overflowed = overflowed_contexts(&registry, &trace);
        assert_eq!(overflowed.len(), 1, "exactly one context overflows");
        let frames = registry.frames();
        for site in registry.alloc_sites() {
            let sig = csod_core::EvidenceStore::signature(&site.context, frames);
            assert_eq!(
                context_overflows(&registry, &trace, &sig),
                site.index == app.bug_site(),
                "context {sig} replay disagrees with the planted bug"
            );
        }
        assert!(!context_overflows(&registry, &trace, "no/such.c:1"));
    }
}
