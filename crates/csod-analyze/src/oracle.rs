//! A tiny reference interpreter used to *check* the static analysis.
//!
//! The oracle replays a trace concretely — tracking which generation
//! each slot holds at every step — and records the allocation sites
//! whose objects dynamically overflow. The soundness obligation the
//! self-test and property suites enforce is exactly:
//!
//! > no site the oracle saw overflow may be classified `ProvenSafe`.
//!
//! Only `OverflowAccess`/`OverflowBurst` (and `Access`es whose written
//! range exceeds the object) count; the trace runner clamps plain
//! accesses in bounds, but the analyzer judges intent, so the oracle
//! does too.

use std::collections::{BTreeSet, HashMap};
use workloads::Event;

/// Replays `trace` and returns the allocation-site indices whose
/// objects are dynamically overflowed (by an overflow event, or by an
/// access whose as-written range exceeds the object size).
pub fn overflowed_sites(trace: &[Event]) -> BTreeSet<usize> {
    let mut live: HashMap<usize, (usize, u64)> = HashMap::new(); // slot -> (site, size)
    let mut hit = BTreeSet::new();
    for event in trace {
        match *event {
            Event::Malloc {
                site, size, slot, ..
            } => {
                live.insert(slot, (site, size));
            }
            Event::Free { slot, .. } => {
                live.remove(&slot);
            }
            Event::OverflowAccess { slot, .. } | Event::OverflowBurst { slot, .. } => {
                if let Some(&(site, _)) = live.get(&slot) {
                    hit.insert(site);
                }
            }
            Event::Access {
                slot, offset, len, ..
            } => {
                if let Some(&(site, size)) = live.get(&slot) {
                    if offset.saturating_add(len) > size {
                        hit.insert(site);
                    }
                }
            }
            _ => {}
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_machine::{AccessKind, SiteToken};

    #[test]
    fn oracle_sees_overflow_events_and_oversized_accesses() {
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(3, 16, 0),
            Event::malloc(5, 16, 1),
            Event::overflow(0, AccessKind::Write, t),
            Event::access(1, 12, 8, AccessKind::Write, t), // [12, 20) > 16
        ];
        let hit = overflowed_sites(&trace);
        assert!(hit.contains(&3) && hit.contains(&5));
    }

    #[test]
    fn oracle_ignores_freed_slots_and_in_bounds_traffic() {
        let t = SiteToken(0);
        let trace = vec![
            Event::malloc(0, 16, 0),
            Event::access(0, 0, 16, AccessKind::Read, t),
            Event::free(0),
            // Slot empty: the runner makes this a no-op.
            Event::overflow(0, AccessKind::Write, t),
        ];
        assert!(overflowed_sites(&trace).is_empty());
    }
}
