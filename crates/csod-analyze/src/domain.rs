//! The interval abstract domain the bounds inference runs over.
//!
//! Classic intervals with infinities ([Cousot & Cousot 1977]): values
//! are approximated by `[lo, hi]` ranges over a signed 128-bit space —
//! wide enough that byte offsets and sizes from the 64-bit workload IR
//! never overflow the arithmetic. A sticky `widened` flag remembers
//! that an interval's bounds were extrapolated rather than observed, so
//! the classifier can demote conclusions drawn from it to
//! [`Unknown`](csod_core::RiskClass::Unknown) instead of trusting a
//! bound the widening operator invented.
//!
//! [Cousot & Cousot 1977]: https://doi.org/10.1145/512950.512973

use std::cmp::Ordering;
use std::fmt;

/// One end of an interval: finite or at infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Minus infinity.
    NegInf,
    /// A finite bound.
    Finite(i128),
    /// Plus infinity.
    PosInf,
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Bound) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Bound) -> Ordering {
        use Bound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (PosInf, _) | (_, NegInf) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl Bound {
    /// Saturating addition of two bounds (infinities absorb).
    ///
    /// # Panics
    ///
    /// Panics on the meaningless `NegInf + PosInf`; the analysis never
    /// adds bounds of opposite infinite sign.
    fn add(self, other: Bound) -> Bound {
        use Bound::*;
        match (self, other) {
            (Finite(a), Finite(b)) => Finite(a.saturating_add(b)),
            (PosInf, NegInf) | (NegInf, PosInf) => {
                panic!("interval arithmetic added opposite infinities")
            }
            (PosInf, _) | (_, PosInf) => PosInf,
            (NegInf, _) | (_, NegInf) => NegInf,
        }
    }
}

/// A non-empty interval `[lo, hi]` with a sticky widening marker.
///
/// The empty interval is not representable; analyses that need "no
/// value" use `Option<Interval>` (as the binding resolution does for
/// slots that are provably empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: Bound,
    /// Upper bound (inclusive).
    pub hi: Bound,
    /// Whether either bound came from widening rather than observation.
    pub widened: bool,
}

impl Interval {
    /// The top element `[-inf, +inf]`.
    pub const TOP: Interval = Interval {
        lo: Bound::NegInf,
        hi: Bound::PosInf,
        widened: false,
    };

    /// The singleton interval `[v, v]`.
    pub fn point(v: i128) -> Interval {
        Interval {
            lo: Bound::Finite(v),
            hi: Bound::Finite(v),
            widened: false,
        }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (the empty interval is not representable).
    pub fn range(lo: i128, hi: i128) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval {
            lo: Bound::Finite(lo),
            hi: Bound::Finite(hi),
            widened: false,
        }
    }

    /// Least upper bound: the smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            widened: self.widened || other.widened,
        }
    }

    /// Standard widening: any bound `other` grows past jumps to
    /// infinity, guaranteeing termination of ascending chains. The
    /// result is marked [`widened`](Interval::widened) only when a
    /// bound actually moved to infinity.
    pub fn widen(self, other: Interval) -> Interval {
        let lo = if other.lo < self.lo {
            Bound::NegInf
        } else {
            self.lo
        };
        let hi = if other.hi > self.hi {
            Bound::PosInf
        } else {
            self.hi
        };
        let moved = lo != self.lo.min(other.lo) || hi != self.hi.max(other.hi);
        Interval {
            lo,
            hi,
            widened: self.widened || other.widened || moved,
        }
    }

    /// Translation by a constant.
    pub fn shift(self, delta: i128) -> Interval {
        self + Interval::point(delta)
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= Bound::Finite(v) && Bound::Finite(v) <= self.hi
    }

    /// Whether the interval is `[-inf, +inf]`.
    pub fn is_top(&self) -> bool {
        self.lo == Bound::NegInf && self.hi == Bound::PosInf
    }

    /// The upper bound if finite.
    pub fn hi_finite(&self) -> Option<i128> {
        match self.hi {
            Bound::Finite(v) => Some(v),
            _ => None,
        }
    }

    /// The lower bound if finite.
    pub fn lo_finite(&self) -> Option<i128> {
        match self.lo {
            Bound::Finite(v) => Some(v),
            _ => None,
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Pointwise sum (interval addition).
    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.add(other.lo),
            hi: self.hi.add(other.hi),
            widened: self.widened || other.widened,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let end = |b: &Bound, f: &mut fmt::Formatter<'_>| match b {
            Bound::NegInf => write!(f, "-inf"),
            Bound::PosInf => write!(f, "+inf"),
            Bound::Finite(v) => write!(f, "{v}"),
        };
        write!(f, "[")?;
        end(&self.lo, f)?;
        write!(f, ", ")?;
        end(&self.hi, f)?;
        write!(f, "]")?;
        if self.widened {
            write!(f, "w")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Add;

    #[test]
    fn join_is_commutative_and_contains_both() {
        let a = Interval::range(1, 5);
        let b = Interval::range(3, 9);
        assert_eq!(a.join(b), b.join(a));
        let j = a.join(b);
        assert_eq!(j, Interval::range(1, 9));
        assert!(j.contains(1) && j.contains(9));
    }

    #[test]
    fn join_is_idempotent_and_associative() {
        let a = Interval::range(-4, 2);
        let b = Interval::point(7);
        let c = Interval::range(0, 100);
        assert_eq!(a.join(a), a);
        assert_eq!(a.join(b).join(c), a.join(b.join(c)));
    }

    #[test]
    fn top_absorbs_everything() {
        let a = Interval::range(3, 4);
        assert_eq!(a.join(Interval::TOP), Interval::TOP);
        assert!(Interval::TOP.is_top());
        assert!(!a.is_top());
    }

    #[test]
    fn widen_is_an_upper_bound_of_join() {
        // Widening must over-approximate the join: x ⊔ y ⊑ x ∇ y.
        let cases = [
            (Interval::range(0, 10), Interval::range(0, 12)),
            (Interval::range(5, 10), Interval::range(3, 10)),
            (Interval::point(1), Interval::point(1)),
            (Interval::range(-2, 2), Interval::range(-9, 9)),
        ];
        for (x, y) in cases {
            let j = x.join(y);
            let w = x.widen(y);
            assert!(w.lo <= j.lo && j.hi <= w.hi, "{x} widen {y} -> {w} vs {j}");
        }
    }

    #[test]
    fn widen_terminates_ascending_chains() {
        // A growing chain must stabilize after finitely many widenings:
        // with interval widening, one step to +inf.
        let mut acc = Interval::point(0);
        let mut changes = 0;
        for i in 1..1000 {
            let next = acc.widen(Interval::point(i));
            if next != acc {
                changes += 1;
            }
            acc = next;
        }
        assert!(changes <= 1, "widening chain changed {changes} times");
        assert_eq!(acc.hi, Bound::PosInf);
        assert!(acc.widened);
    }

    #[test]
    fn widen_of_stable_bounds_stays_exact() {
        let a = Interval::range(0, 64);
        let w = a.widen(Interval::range(0, 64));
        assert_eq!(w, a);
        assert!(!w.widened);
    }

    #[test]
    fn widened_flag_is_sticky_through_join_and_add() {
        let w = Interval::point(0).widen(Interval::point(5));
        assert!(w.widened);
        assert!(w.join(Interval::point(1)).widened);
        assert!(w.add(Interval::point(3)).widened);
    }

    #[test]
    fn arithmetic_shifts_both_bounds() {
        let a = Interval::range(2, 6).shift(10);
        assert_eq!(a, Interval::range(12, 16));
        let b = Interval::range(0, 1).add(Interval::range(5, 7));
        assert_eq!(b, Interval::range(5, 8));
        assert_eq!(Interval::TOP.shift(3), Interval::TOP);
    }

    #[test]
    fn bound_ordering_is_total() {
        assert!(Bound::NegInf < Bound::Finite(i128::MIN));
        assert!(Bound::Finite(i128::MAX) < Bound::PosInf);
        assert!(Bound::Finite(-1) < Bound::Finite(1));
        assert_eq!(Bound::PosInf.max(Bound::Finite(9)), Bound::PosInf);
    }

    #[test]
    fn display_renders_infinities() {
        assert_eq!(Interval::TOP.to_string(), "[-inf, +inf]");
        assert_eq!(Interval::range(1, 2).to_string(), "[1, 2]");
    }
}
