//! Call-graph construction over the registry's calling contexts.
//!
//! Every allocation site in a [`SiteRegistry`] carries its full
//! backtrace; its frame signature (innermost first, `|`-joined — the
//! same rendering [`EvidenceStore::signature`] uses everywhere) *is*
//! the maximal call string of that context. The call graph interns one
//! node per distinct frame and one edge per adjacent caller→callee
//! frame pair, giving the summary stage ([`summary`](crate::summary))
//! its unit of work: the *function* (innermost frame) an allocation
//! funnels through. Contexts sharing an allocation helper share a node
//! but keep distinct signatures — exactly the shape where
//! context-sensitive verdicts beat per-function ones.

use csod_core::EvidenceStore;
use std::collections::{BTreeSet, HashMap};
use workloads::SiteRegistry;

/// The interprocedural call graph of one application's contexts.
#[derive(Debug)]
pub struct CallGraph {
    functions: Vec<String>,
    index: HashMap<String, usize>,
    /// `(caller, callee)` node pairs, deduplicated.
    edges: BTreeSet<(usize, usize)>,
    /// Allocation site → innermost-frame node.
    site_function: Vec<usize>,
    /// Allocation site → full frame signature.
    site_signature: Vec<String>,
}

impl CallGraph {
    /// Builds the graph from every allocation context of `registry`.
    pub fn build(registry: &SiteRegistry) -> CallGraph {
        let frames = registry.frames();
        let mut graph = CallGraph {
            functions: Vec::new(),
            index: HashMap::new(),
            edges: BTreeSet::new(),
            site_function: Vec::new(),
            site_signature: Vec::new(),
        };
        for site in registry.alloc_sites() {
            let signature = EvidenceStore::signature(&site.context, frames);
            let mut callee: Option<usize> = None;
            for frame in signature.split('|') {
                let node = graph.intern(frame);
                if let Some(callee) = callee {
                    // Frames are innermost-first: this frame calls the
                    // previous one.
                    graph.edges.insert((node, callee));
                }
                callee = Some(node);
            }
            let innermost = signature.split('|').next().unwrap_or("");
            let node = graph.intern(innermost);
            graph.site_function.push(node);
            graph.site_signature.push(signature);
        }
        graph
    }

    fn intern(&mut self, frame: &str) -> usize {
        if let Some(&i) = self.index.get(frame) {
            return i;
        }
        let i = self.functions.len();
        self.functions.push(frame.to_owned());
        self.index.insert(frame.to_owned(), i);
        i
    }

    /// Number of distinct functions (frames).
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Number of distinct caller→callee edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The innermost frame (allocation function) of `site`, if the
    /// site exists.
    pub fn function_of_site(&self, site: usize) -> Option<&str> {
        self.site_function
            .get(site)
            .map(|&f| self.functions[f].as_str())
    }

    /// The full frame signature of `site`, if the site exists.
    pub fn signature_of_site(&self, site: usize) -> Option<&str> {
        self.site_signature.get(site).map(String::as_str)
    }

    /// All site signatures, in site-index order.
    pub fn signatures(&self) -> &[String] {
        &self.site_signature
    }

    /// The functions `function` calls (its callees), in node order.
    pub fn callees(&self, function: &str) -> Vec<&str> {
        let Some(&node) = self.index.get(function) else {
            return Vec::new();
        };
        self.edges
            .iter()
            .filter(|&&(caller, _)| caller == node)
            .map(|&(_, callee)| self.functions[callee].as_str())
            .collect()
    }

    /// The functions that call `function` (its callers), in node order.
    pub fn callers(&self, function: &str) -> Vec<&str> {
        let Some(&node) = self.index.get(function) else {
            return Vec::new();
        };
        self.edges
            .iter()
            .filter(|&&(_, callee)| callee == node)
            .map(|&(caller, _)| self.functions[caller].as_str())
            .collect()
    }

    /// All allocation sites whose innermost frame is `function`.
    pub fn sites_of(&self, function: &str) -> Vec<usize> {
        let Some(&node) = self.index.get(function) else {
            return Vec::new();
        };
        self.site_function
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f == node)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;
    use std::sync::Arc;

    #[test]
    fn shared_helpers_collapse_to_one_node_with_many_sites() {
        let mut reg = SiteRegistry::new("cg", Arc::new(FrameTable::new()));
        reg.add_alloc_site_via("xmalloc.c:100");
        reg.add_alloc_site_via("xmalloc.c:100");
        reg.add_alloc_site_via("arena.c:50");
        let g = CallGraph::build(&reg);
        assert_eq!(g.function_of_site(0), g.function_of_site(1));
        assert_ne!(g.function_of_site(0), g.function_of_site(2));
        let helper = g.function_of_site(0).unwrap().to_owned();
        assert_eq!(g.sites_of(&helper), vec![0, 1]);
        // Distinct sites keep distinct full signatures.
        assert_ne!(g.signature_of_site(0), g.signature_of_site(1));
        assert_eq!(g.signatures().len(), 3);
    }

    #[test]
    fn edges_point_from_caller_to_callee() {
        let mut reg = SiteRegistry::new("cg", Arc::new(FrameTable::new()));
        reg.add_alloc_site_via("xmalloc.c:100");
        let g = CallGraph::build(&reg);
        let helper = g.function_of_site(0).unwrap().to_owned();
        // The helper is called by the per-context caller frame, which
        // is in turn called by main.
        let callers = g.callers(&helper);
        assert_eq!(callers.len(), 1);
        assert!(callers[0].contains("caller/ctx_0"));
        let upstream = g.callers(callers[0]);
        assert_eq!(upstream.len(), 1);
        assert!(upstream[0].contains("main.c:42"));
        assert!(g.callees(&helper).is_empty());
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.function_count(), 3);
    }

    #[test]
    fn missing_sites_and_functions_resolve_to_nothing() {
        let reg = SiteRegistry::new("cg", Arc::new(FrameTable::new()));
        let g = CallGraph::build(&reg);
        assert!(g.function_of_site(0).is_none());
        assert!(g.signature_of_site(7).is_none());
        assert!(g.callees("nope").is_empty());
        assert!(g.sites_of("nope").is_empty());
    }
}
