//! Per-function access summaries, the parallel summary worklist, and
//! the on-disk incremental cache.
//!
//! The trace IR's control flow is a *tree*: blocks split only at
//! `Spawn`, every child thread is spawned exactly once, and there are
//! no back edges or merge points. With no joins anywhere, a confined
//! (single-thread) slot's bindings are reproduced exactly by a linear
//! per-thread scan with strong updates, and a shared slot's sound
//! binding is the flow-insensitive superset of its generations — both
//! of which are *local to the slot*. That locality is what this module
//! exploits: slots are partitioned into **modules** by the allocation
//! function (innermost frame) their generations funnel through, each
//! module's statements are classified independently (fanned across OS
//! threads with the workloads parallel driver), and the per-module
//! results — raises, interval bounds hull, escape count — are cached on
//! disk keyed by a structural hash of the module's statement stream.
//! Re-analyzing after a localized change re-derives only the dirtied
//! modules.
//!
//! Soundness is unaffected by the partition: every statement touching a
//! module's slots is in that module, modules' slot sets are disjoint,
//! and the per-module binding rules are exactly the whole-program ones
//! restricted to the module's slots.

use crate::callgraph::CallGraph;
use crate::classify::{classify_stmts, fold_raises, BindingRef, ContextOutcome, Raise};
use crate::cfg::Binding;
use crate::domain::{Bound, Interval};
use crate::escape::SlotTable;
use crate::ir::{AccessRange, GenId, Program, StmtKind};
use csod_core::RiskClass;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::str::FromStr;
use workloads::run_parallel;

/// Name of the catch-all module holding slots whose generations come
/// from more than one allocation function (or from none).
pub const RESIDUAL_MODULE: &str = "<residual>";

/// One unit of incremental work: the slots funneled through one
/// allocation function.
#[derive(Debug, Clone)]
pub struct ModuleDef {
    /// The allocation function (innermost frame), or
    /// [`RESIDUAL_MODULE`].
    pub function: String,
    /// The slots the module owns.
    pub slots: Vec<usize>,
}

/// The partition of a program's slots into per-function modules.
#[derive(Debug)]
pub struct ModulePartition {
    /// Modules in deterministic (function-name) order; the residual
    /// module, when non-empty, is included under [`RESIDUAL_MODULE`].
    pub modules: Vec<ModuleDef>,
    slot_module: Vec<usize>,
}

impl ModulePartition {
    /// Partitions `program`'s slots: a slot belongs to function `F`'s
    /// module iff every generation ever stored in it allocates through
    /// `F`; all other slots land in the residual module.
    pub fn build(program: &Program, slots: &SlotTable, graph: &CallGraph) -> ModulePartition {
        let mut by_function: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (slot, info) in slots.slots.iter().enumerate() {
            let mut function: Option<&str> = None;
            let mut mixed = info.gens.is_empty();
            for &g in &info.gens {
                match graph.function_of_site(program.generation(g).site) {
                    Some(f) if function.is_none() || function == Some(f) => function = Some(f),
                    _ => {
                        mixed = true;
                        break;
                    }
                }
            }
            let name = match function {
                Some(f) if !mixed => f,
                _ => RESIDUAL_MODULE,
            };
            by_function.entry(name.to_owned()).or_default().push(slot);
        }
        let modules: Vec<ModuleDef> = by_function
            .into_iter()
            .map(|(function, slots)| ModuleDef { function, slots })
            .collect();
        let mut slot_module = vec![usize::MAX; program.slot_count];
        for (m, module) in modules.iter().enumerate() {
            for &slot in &module.slots {
                slot_module[slot] = m;
            }
        }
        ModulePartition {
            modules,
            slot_module,
        }
    }

    /// The module owning `slot`, if the slot is used by the program.
    pub fn module_of_slot(&self, slot: usize) -> Option<usize> {
        match self.slot_module.get(slot) {
            Some(&m) if m != usize::MAX => Some(m),
            _ => None,
        }
    }
}

/// The computed summary of one module.
#[derive(Debug, Clone)]
pub struct ModuleSummary {
    /// The module's allocation function.
    pub function: String,
    /// Hull of every exact access end the module performs (bytes past
    /// object base), if it performs any.
    pub hull: Option<Interval>,
    /// How many of the module's slots escape their defining thread.
    pub escaped_slots: usize,
    /// Classification facts, in program order.
    pub(crate) raises: Vec<Raise>,
}

/// What an incremental analysis did: how many modules existed, how many
/// were reused from the cache, and how many had to be recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Total modules in the partition.
    pub modules: usize,
    /// Modules whose cached summary was reused.
    pub reused: usize,
    /// Modules recomputed this run.
    pub computed: usize,
    /// OS threads the summary worklist fanned across.
    pub threads: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

pub(crate) fn hash_str(s: &str) -> u64 {
    s.bytes().fold(FNV_OFFSET, |h, b| mix(h, u64::from(b)))
}

/// Streaming structural hash of every module's statement stream.
///
/// Positions are module-relative (order is captured by the sequential
/// mix, never by global indices), so an edit to one function's
/// statements leaves every other module's hash untouched. Allocation
/// statements mix in their site's full context signature: a context
/// whose frames changed dirties its module even if sizes did not.
fn module_hashes(
    program: &Program,
    partition: &ModulePartition,
    site_sig_hash: &[u64],
) -> Vec<u64> {
    let mut hashes = vec![FNV_OFFSET; partition.modules.len()];
    let mut fold = |module: Option<usize>, thread: usize, words: [u64; 6]| {
        let Some(m) = module else { return };
        let mut h = hashes[m];
        h = mix(h, thread as u64);
        for w in words {
            h = mix(h, w);
        }
        hashes[m] = h;
    };
    for (thread, stmts) in program.threads.iter().enumerate() {
        for stmt in stmts {
            match stmt.kind {
                StmtKind::Alloc { gen } => {
                    let g = program.generation(gen);
                    let sig = site_sig_hash.get(g.site).copied().unwrap_or(0);
                    fold(
                        partition.module_of_slot(g.slot),
                        thread,
                        [1, g.slot as u64, g.site as u64, g.size, sig, 0],
                    );
                }
                StmtKind::Free { slot } => {
                    fold(
                        partition.module_of_slot(slot),
                        thread,
                        [2, slot as u64, 0, 0, 0, 0],
                    );
                }
                StmtKind::Use {
                    slot,
                    range,
                    token,
                    kind,
                    dangling,
                } => {
                    let (rtag, a, b) = match range {
                        AccessRange::Exact { offset, len } => (0u64, offset, len),
                        AccessRange::FirstWord => (1, 0, 0),
                        AccessRange::PastEnd => (2, 0, 0),
                    };
                    let kd = u64::from(matches!(kind, sim_machine::AccessKind::Write)) << 1
                        | u64::from(dangling);
                    fold(
                        partition.module_of_slot(slot),
                        thread,
                        [3, slot as u64, token.0, rtag, a.wrapping_mul(31).wrapping_add(b), kd],
                    );
                }
                // Spawns carry no slot; their effect on bindings is
                // visible through the thread index of every statement.
                StmtKind::Spawn { .. } => {}
            }
        }
    }
    hashes
}

/// How a module use resolves: confined slots carry their own scan
/// result, shared slots defer to the per-slot superset binding.
enum LocalBinding {
    Confined(Binding),
    SharedSlot(usize),
}

/// Summarizes one module: reproduces the whole-program binding rules
/// restricted to the module's slots (linear scan for confined slots —
/// exact on the IR's tree CFG — and generation superset for shared
/// ones), classifies the module's uses, and records the bounds hull
/// and escape count.
fn summarize_module(
    program: &Program,
    slots: &SlotTable,
    function: &str,
    stmts: &[(usize, usize)],
) -> ModuleSummary {
    // Superset bindings for the module's shared slots, built once.
    let mut shared: HashMap<usize, Binding> = HashMap::new();
    // Flow state for confined slots: present = definitely this
    // generation, absent = provably empty.
    let mut state: HashMap<usize, GenId> = HashMap::new();
    let mut uses: HashMap<(usize, usize), LocalBinding> = HashMap::new();
    let mut hull: Option<Interval> = None;
    let mut current_thread = usize::MAX;

    for &(thread, i) in stmts {
        if thread != current_thread {
            // Confined slots never cross threads; the spawn edge hands
            // a child an empty state for every slot confined to it.
            state.clear();
            current_thread = thread;
        }
        match program.threads[thread][i].kind {
            StmtKind::Alloc { gen } => {
                state.insert(program.generation(gen).slot, gen);
            }
            StmtKind::Free { slot } => {
                state.remove(&slot);
            }
            StmtKind::Use { slot, range, .. } => {
                if let AccessRange::Exact { offset, len } = range {
                    let point = Interval::point(i128::from(offset.saturating_add(len)));
                    hull = Some(hull.map_or(point, |h| h.join(point)));
                }
                let info = slots.slot(slot);
                let local = if info.shared {
                    shared.entry(slot).or_insert_with(|| match info.gens.len() {
                        0 => Binding::None,
                        1 => Binding::Definite(info.gens[0]),
                        _ => Binding::Ambiguous(info.gens.clone()),
                    });
                    LocalBinding::SharedSlot(slot)
                } else {
                    LocalBinding::Confined(match state.get(&slot) {
                        Some(&g) => Binding::Definite(g),
                        None => Binding::None,
                    })
                };
                uses.insert((thread, i), local);
            }
            StmtKind::Spawn { .. } => {}
        }
    }

    let raises = classify_stmts(program, stmts, |t, i| {
        uses.get(&(t, i)).map(|local| match local {
            LocalBinding::Confined(b) => BindingRef::from(b),
            LocalBinding::SharedSlot(slot) => BindingRef::from(&shared[slot]),
        })
    });
    let escaped_slots = shared.len();
    ModuleSummary {
        function: function.to_owned(),
        hull,
        escaped_slots,
        raises,
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    hash: u64,
    hull: Option<Interval>,
    escaped_slots: usize,
    /// `(class, signature, witness)` triples, program order.
    raises: Vec<(RiskClass, String, String)>,
}

/// The on-disk incremental summary cache: one entry per module, keyed
/// by allocation function and guarded by the module's structural hash.
/// Raises are stored by *context signature* (never by site index), so
/// a cache survives registry reshuffles — a signature that no longer
/// resolves simply dirties its module.
#[derive(Debug, Default, Clone)]
pub struct SummaryCache {
    entries: BTreeMap<String, CacheEntry>,
}

fn bound_to_str(b: Bound) -> String {
    match b {
        Bound::NegInf => "-inf".to_owned(),
        Bound::PosInf => "+inf".to_owned(),
        Bound::Finite(v) => v.to_string(),
    }
}

fn bound_from_str(s: &str) -> Option<Bound> {
    match s {
        "-inf" => Some(Bound::NegInf),
        "+inf" => Some(Bound::PosInf),
        _ => s.parse::<i128>().ok().map(Bound::Finite),
    }
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    /// Number of cached module summaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Loads a cache written by [`save`](SummaryCache::save). A missing
    /// file is an empty cache; malformed lines are dropped (a corrupt
    /// entry merely costs a recomputation).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than `NotFound`.
    pub fn load(path: &Path) -> io::Result<SummaryCache> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut cache = SummaryCache::new();
        let mut current: Option<(String, CacheEntry)> = None;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            match parts.next() {
                Some("mod") => {
                    if let Some((function, entry)) = current.take() {
                        cache.entries.insert(function, entry);
                    }
                    let (Some(hash), Some(escaped), Some(lo), Some(hi), Some(w), Some(function)) = (
                        parts.next(),
                        parts.next(),
                        parts.next(),
                        parts.next(),
                        parts.next(),
                        parts.next(),
                    ) else {
                        continue;
                    };
                    let Ok(hash) = u64::from_str_radix(hash, 16) else {
                        continue;
                    };
                    let Ok(escaped_slots) = escaped.parse::<usize>() else {
                        continue;
                    };
                    let hull = match (bound_from_str(lo), bound_from_str(hi)) {
                        (Some(lo), Some(hi)) => Some(Interval {
                            lo,
                            hi,
                            widened: w == "w",
                        }),
                        _ => None,
                    };
                    current = Some((
                        function.to_owned(),
                        CacheEntry {
                            hash,
                            hull,
                            escaped_slots,
                            raises: Vec::new(),
                        },
                    ));
                }
                Some("r") => {
                    let Some((_, entry)) = current.as_mut() else {
                        continue;
                    };
                    let (Some(class), Some(sig), Some(witness)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        continue;
                    };
                    let Ok(class) = RiskClass::from_str(class) else {
                        continue;
                    };
                    entry
                        .raises
                        .push((class, sig.to_owned(), witness.to_owned()));
                }
                _ => {}
            }
        }
        if let Some((function, entry)) = current.take() {
            cache.entries.insert(function, entry);
        }
        Ok(cache)
    }

    /// Writes the cache as a line-oriented text file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = String::from("# csod-analyze summary cache v1\n");
        for (function, entry) in &self.entries {
            let (lo, hi, w) = match entry.hull {
                Some(h) => (
                    bound_to_str(h.lo),
                    bound_to_str(h.hi),
                    if h.widened { "w" } else { "-" },
                ),
                None => ("-".to_owned(), "-".to_owned(), "-"),
            };
            let _ = writeln!(
                out,
                "mod\t{:016x}\t{}\t{lo}\t{hi}\t{w}\t{function}",
                entry.hash, entry.escaped_slots
            );
            for (class, sig, witness) in &entry.raises {
                let _ = writeln!(out, "r\t{class}\t{sig}\t{witness}");
            }
        }
        fs::write(path, out)
    }
}

/// Runs the summary stage: partitions slots into per-function modules,
/// reuses every module whose structural hash matches `cache`, fans the
/// dirty ones across the parallel worklist, and folds all raises into
/// per-context outcomes. With `cache = None` every module is computed
/// (the cold path [`analyze`](crate::analyze) takes); with a cache the
/// entries are refreshed in place for the caller to persist.
pub(crate) fn run(
    program: &Program,
    slots: &SlotTable,
    graph: &CallGraph,
    mut cache: Option<&mut SummaryCache>,
) -> (Vec<ContextOutcome>, Vec<ModuleSummary>, AnalyzeStats) {
    let partition = ModulePartition::build(program, slots, graph);
    let site_sig_hash: Vec<u64> = graph.signatures().iter().map(|s| hash_str(s)).collect();
    let hashes = module_hashes(program, &partition, &site_sig_hash);
    let sig_to_site: HashMap<&str, usize> = graph
        .signatures()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();

    // Decide per module: reuse from cache or recompute.
    let mut summaries: Vec<Option<ModuleSummary>> = vec![None; partition.modules.len()];
    let mut dirty: Vec<usize> = Vec::new();
    for (m, module) in partition.modules.iter().enumerate() {
        let cached = cache
            .as_ref()
            .and_then(|c| c.entries.get(&module.function))
            .filter(|e| e.hash == hashes[m]);
        let resolved = cached.and_then(|entry| {
            let mut raises = Vec::with_capacity(entry.raises.len());
            for (class, sig, witness) in &entry.raises {
                let &site = sig_to_site.get(sig.as_str())?;
                raises.push(Raise {
                    site,
                    class: *class,
                    witness: witness.clone(),
                });
            }
            Some(ModuleSummary {
                function: module.function.clone(),
                hull: entry.hull,
                escaped_slots: entry.escaped_slots,
                raises,
            })
        });
        match resolved {
            Some(summary) => summaries[m] = Some(summary),
            None => dirty.push(m),
        }
    }

    // Materialize statement lists for dirty modules only: on a warm
    // run this second pass touches just the changed function's slots.
    let mut is_dirty = vec![false; partition.modules.len()];
    for &m in &dirty {
        is_dirty[m] = true;
    }
    let mut work: HashMap<usize, Vec<(usize, usize)>> = dirty
        .iter()
        .map(|&m| (m, Vec::new()))
        .collect();
    if !dirty.is_empty() {
        for (thread, stmts) in program.threads.iter().enumerate() {
            for (i, stmt) in stmts.iter().enumerate() {
                let slot = match stmt.kind {
                    StmtKind::Alloc { gen } => program.generation(gen).slot,
                    StmtKind::Free { slot } | StmtKind::Use { slot, .. } => slot,
                    StmtKind::Spawn { .. } => continue,
                };
                if let Some(m) = partition.module_of_slot(slot) {
                    if is_dirty[m] {
                        work.get_mut(&m).expect("dirty module").push((thread, i));
                    }
                }
            }
        }
    }

    // The parallel worklist: one job per dirty module, deterministic
    // regardless of thread count (results come back in input order).
    let inputs: Vec<(usize, Vec<(usize, usize)>)> = dirty
        .iter()
        .map(|&m| (m, work.remove(&m).unwrap_or_default()))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs.len().max(1));
    let computed = run_parallel(&inputs, threads, |(m, stmts)| {
        summarize_module(program, slots, &partition.modules[*m].function, stmts)
    });
    for ((m, _), summary) in inputs.iter().zip(computed) {
        summaries[*m] = Some(summary);
    }

    let summaries: Vec<ModuleSummary> = summaries
        .into_iter()
        .map(|s| s.expect("every module summarized"))
        .collect();
    let outcomes = fold_raises(
        program,
        summaries.iter().flat_map(|s| s.raises.iter().cloned()),
    );

    if let Some(cache) = cache.as_mut() {
        cache.entries.clear();
        for (m, summary) in summaries.iter().enumerate() {
            let raises = summary
                .raises
                .iter()
                .filter_map(|r| {
                    graph
                        .signature_of_site(r.site)
                        .map(|sig| (r.class, sig.to_owned(), r.witness.clone()))
                })
                .collect();
            cache.entries.insert(
                summary.function.clone(),
                CacheEntry {
                    hash: hashes[m],
                    hull: summary.hull,
                    escaped_slots: summary.escaped_slots,
                    raises,
                },
            );
        }
    }

    let stats = AnalyzeStats {
        modules: partition.modules.len(),
        reused: partition.modules.len() - dirty.len(),
        computed: dirty.len(),
        threads,
    };
    (outcomes, summaries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escape::analyze_slots;
    use crate::ir::lower;
    use workloads::SharedHelperApp;

    fn pipeline(app: &SharedHelperApp, dirty: Option<usize>) -> (Vec<ContextOutcome>, AnalyzeStats) {
        let registry = app.registry();
        let trace = app.trace(1, dirty);
        let program = lower(&registry, &trace);
        let slots = analyze_slots(&program);
        let graph = CallGraph::build(&registry);
        let (outcomes, _, stats) = run(&program, &slots, &graph, None);
        (outcomes, stats)
    }

    #[test]
    fn partition_groups_slots_by_allocation_function() {
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let program = lower(&registry, &app.trace(1, None));
        let slots = analyze_slots(&program);
        let graph = CallGraph::build(&registry);
        let partition = ModulePartition::build(&program, &slots, &graph);
        // One module per helper; every context keeps its own slot, so
        // nothing lands in the residual.
        assert_eq!(partition.modules.len(), app.helpers);
        for module in &partition.modules {
            assert_ne!(module.function, RESIDUAL_MODULE);
            assert_eq!(module.slots.len(), app.contexts_per_helper);
        }
    }

    #[test]
    fn module_hash_moves_only_for_the_dirtied_function() {
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let graph = CallGraph::build(&registry);
        let site_sig_hash: Vec<u64> = graph.signatures().iter().map(|s| hash_str(s)).collect();
        let hash_all = |dirty: Option<usize>| {
            let program = lower(&registry, &app.trace(1, dirty));
            let slots = analyze_slots(&program);
            let partition = ModulePartition::build(&program, &slots, &graph);
            let hashes = module_hashes(&program, &partition, &site_sig_hash);
            partition
                .modules
                .iter()
                .map(|m| m.function.clone())
                .zip(hashes)
                .collect::<BTreeMap<String, u64>>()
        };
        let clean = hash_all(None);
        let dirty = hash_all(Some(2));
        let changed: Vec<&String> = clean
            .iter()
            .filter(|(f, h)| dirty.get(*f) != Some(h))
            .map(|(f, _)| f)
            .collect();
        assert_eq!(changed.len(), 1, "exactly one module dirtied: {changed:?}");
        assert!(changed[0].contains("helper_2"));
    }

    #[test]
    fn summaries_flag_exactly_the_planted_context() {
        let app = SharedHelperApp::standard();
        let (outcomes, stats) = pipeline(&app, None);
        assert_eq!(stats.modules, app.helpers);
        assert_eq!(stats.computed, app.helpers);
        for outcome in &outcomes {
            let expected = if outcome.site == app.bug_site() {
                RiskClass::Suspicious
            } else {
                RiskClass::ProvenSafe
            };
            assert_eq!(outcome.class, expected, "context {}", outcome.site);
        }
    }

    #[test]
    fn cache_round_trips_and_reuses_clean_modules() {
        let app = SharedHelperApp::standard();
        let registry = app.registry();
        let graph = CallGraph::build(&registry);
        let dir = std::env::temp_dir().join("csod-analyze-summary-cache-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summaries.tsv");

        let run_with = |cache: &mut SummaryCache, dirty: Option<usize>| {
            let program = lower(&registry, &app.trace(1, dirty));
            let slots = analyze_slots(&program);
            run(&program, &slots, &graph, Some(cache))
        };

        let mut cache = SummaryCache::new();
        let (cold_out, _, cold) = run_with(&mut cache, None);
        assert_eq!(cold.computed, app.helpers);
        cache.save(&path).unwrap();

        // Warm, unchanged: everything reused, verdicts identical.
        let mut cache = SummaryCache::load(&path).unwrap();
        assert_eq!(cache.len(), app.helpers);
        let (warm_out, _, warm) = run_with(&mut cache, None);
        assert_eq!(warm.reused, app.helpers);
        assert_eq!(warm.computed, 0);
        assert_eq!(cold_out.len(), warm_out.len());
        for (a, b) in cold_out.iter().zip(&warm_out) {
            assert_eq!(a.class, b.class, "context {}", a.site);
        }

        // Warm after a one-function change: only that module recomputes.
        let (_, _, incr) = run_with(&mut cache, Some(3));
        assert_eq!(incr.computed, 1);
        assert_eq!(incr.reused, app.helpers - 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_cache_lines_only_cost_recomputation() {
        let dir = std::env::temp_dir().join("csod-analyze-summary-cache-corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        fs::write(
            &path,
            "mod\tnothex\t0\t-\t-\t-\tf\nr\tsuspicious\tsig\tw\nmod\t00ff\tzero\t-\t-\t-\tg\ngarbage\n",
        )
        .unwrap();
        let cache = SummaryCache::load(&path).unwrap();
        assert!(cache.is_empty());
        assert!(SummaryCache::load(&dir.join("missing.tsv")).unwrap().is_empty());
        fs::remove_file(&path).ok();
    }
}
