//! Property tests for the classifier's one hard obligation: no access
//! that dynamically overflows may come from a context the analysis
//! proved safe.
//!
//! Two workload generators drive it: the repo's [`FuzzWorkload`]
//! (realistic single-owner slots) and a nastier local generator that
//! deliberately reuses a handful of slots across threads with
//! mismatched sizes and out-of-bounds intent — the shapes that force
//! the escape analysis and interval summaries to earn their keep.

use csod_analyze::{analyze, oracle};
use csod_core::RiskClass;
use csod_ctx::FrameTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_machine::AccessKind;
use std::sync::Arc;
use workloads::{Event, FuzzWorkload, SiteRegistry};

/// A workload built to stress aliasing: few slots, many reuses, random
/// cross-thread traffic, accesses whose written range may exceed the
/// object, and explicit overflow events.
fn hostile_workload(seed: u64) -> (SiteRegistry, Vec<Event>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A5);
    let sites = rng.gen_range(2..=8usize);
    let slots = rng.gen_range(1..=3usize);
    let threads = rng.gen_range(1..=3u8);
    let steps = rng.gen_range(5..=120usize);

    let mut registry = SiteRegistry::new("hostile", Arc::new(FrameTable::new()));
    registry.add_alloc_sites(sites);
    let tokens: Vec<_> = (0..4)
        .map(|i| registry.add_access_site("hostile", &format!("h.c:{i}")))
        .collect();

    let mut trace = Vec::new();
    for _ in 1..threads {
        trace.push(Event::SpawnThread);
    }
    for _ in 0..steps {
        let thread = rng.gen_range(0..threads);
        let slot = rng.gen_range(0..slots);
        let token = tokens[rng.gen_range(0..tokens.len())];
        let kind = if rng.gen_bool(0.5) {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        match rng.gen_range(0..10u32) {
            0..=3 => trace.push(Event::Malloc {
                thread,
                site: rng.gen_range(0..sites),
                size: rng.gen_range(1..=128u64),
                slot,
            }),
            4..=6 => {
                // As-written range may or may not fit whatever object
                // happens to be in the slot.
                let offset = rng.gen_range(0..160u64);
                let len = rng.gen_range(1..=16u64);
                trace.push(Event::Access {
                    thread,
                    slot,
                    offset,
                    len,
                    kind,
                    site: token,
                });
            }
            7 => trace.push(Event::Free { thread, slot }),
            8 => trace.push(Event::OverflowAccess {
                thread,
                slot,
                kind,
                site: token,
            }),
            _ => trace.push(Event::AccessBurst {
                thread,
                slot,
                count: rng.gen_range(1..=1000),
                kind,
                site: token,
            }),
        }
    }
    (registry, trace)
}

fn assert_sound(registry: &SiteRegistry, trace: &[Event]) {
    let report = analyze(registry, trace);
    for site in oracle::overflowed_sites(trace) {
        assert_ne!(
            report.class_of(site),
            RiskClass::ProvenSafe,
            "site {site} dynamically overflows but was proven safe"
        );
    }
}

proptest! {
    #[test]
    fn fuzz_workloads_never_prove_an_overflowing_context_safe(
        seed in 0u64..500,
        inject in any::<bool>(),
    ) {
        let w = FuzzWorkload::generate(seed, inject);
        assert_sound(&w.registry, &w.trace);
        if let Some(bug) = w.bug {
            let report = analyze(&w.registry, &w.trace);
            prop_assert_ne!(report.class_of(bug.ctx), RiskClass::ProvenSafe);
        }
    }

    #[test]
    fn hostile_slot_reuse_never_proves_an_overflowing_context_safe(seed in 0u64..500) {
        let (registry, trace) = hostile_workload(seed);
        assert_sound(&registry, &trace);
    }

    #[test]
    fn clean_fuzz_workloads_get_no_suspicious_verdicts(seed in 0u64..200) {
        // Fuzz traffic is in-bounds by construction when no bug is
        // injected; the analyzer must not cry wolf on it.
        let w = FuzzWorkload::generate(seed, false);
        let report = analyze(&w.registry, &w.trace);
        let (_, sus, _) = report.census();
        prop_assert_eq!(sus, 0, "clean workload produced suspicious sites");
    }
}
