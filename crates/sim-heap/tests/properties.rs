//! Property-based tests of the allocator substrate.

use proptest::prelude::*;
use sim_heap::{HeapConfig, SimHeap, SizeClass, MIN_ALIGN};
use sim_machine::{Machine, VirtAddr};

fn setup() -> (Machine, SimHeap) {
    let mut machine = Machine::new();
    let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    (machine, heap)
}

proptest! {
    /// calloc always returns zeroed memory, even when recycling a block
    /// that previous owners dirtied.
    #[test]
    fn calloc_is_always_zero(sizes in proptest::collection::vec(1u64..2048, 1..30)) {
        let (mut machine, mut heap) = setup();
        for size in sizes {
            let dirty = heap.malloc(&mut machine, size).unwrap();
            machine.raw_fill(dirty, size, 0xEE).unwrap();
            heap.free(&mut machine, dirty).unwrap();
            let clean = heap.calloc(&mut machine, size).unwrap();
            let mut buf = vec![0xAAu8; size as usize];
            machine.raw_read_bytes(clean, &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == 0), "calloc must zero");
            heap.free(&mut machine, clean).unwrap();
        }
    }

    /// realloc preserves the common prefix and tracks the requested
    /// size, for any grow/shrink sequence.
    #[test]
    fn realloc_preserves_prefix(steps in proptest::collection::vec(1u64..4096, 2..12)) {
        let (mut machine, mut heap) = setup();
        let mut addr = heap.malloc(&mut machine, steps[0]).unwrap();
        let mut size = steps[0];
        // A recognizable pattern in the first bytes.
        let stamp = [0xAB, 0xCD, 0xEF, 0x01];
        let stamp_len = (size as usize).min(4);
        machine.raw_write_bytes(addr, &stamp[..stamp_len]).unwrap();
        // Shrinking truncates: only the bytes surviving every
        // intermediate size are guaranteed.
        let mut survivors = stamp_len;
        for &new_size in &steps[1..] {
            addr = heap.realloc(&mut machine, addr, new_size).unwrap();
            survivors = survivors.min(new_size as usize);
            let mut buf = vec![0u8; survivors];
            machine.raw_read_bytes(addr, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &stamp[..survivors], "prefix preserved");
            size = new_size;
            prop_assert_eq!(heap.requested_size(addr), Some(size));
            prop_assert!(heap.usable_size(addr).unwrap() >= size);
        }
        heap.free(&mut machine, addr).unwrap();
        prop_assert_eq!(heap.stats().live_objects(), 0);
    }

    /// memalign honors any power-of-two alignment and the object is
    /// fully usable.
    #[test]
    fn memalign_alignment_holds(align_pow in 4u32..16, size in 1u64..8192) {
        let (mut machine, mut heap) = setup();
        let align = 1u64 << align_pow;
        let addr = heap.memalign(&mut machine, align, size).unwrap();
        prop_assert!(addr.is_aligned(align));
        machine.raw_fill(addr, size, 0x5A).unwrap();
        prop_assert_eq!(heap.free(&mut machine, addr).unwrap(), size);
    }

    /// Freed classed blocks are recycled for same-class requests before
    /// new wilderness is carved.
    #[test]
    fn freelist_recycles_before_carving(size in 1u64..(32u64 << 10)) {
        let (mut machine, mut heap) = setup();
        let a = heap.malloc(&mut machine, size).unwrap();
        heap.free(&mut machine, a).unwrap();
        let carved_before = heap.stats().wilderness_bytes;
        // Any request in the same class must reuse the block.
        let block = SizeClass::for_request(size).block_size();
        let b = heap.malloc(&mut machine, block).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(heap.stats().wilderness_bytes, carved_before);
    }

    /// Accounting invariants hold across arbitrary operation sequences:
    /// in-use never exceeds the wilderness high-water mark, peaks are
    /// monotone upper bounds, and block-rounding never loses bytes.
    #[test]
    fn accounting_invariants(ops in proptest::collection::vec((1u64..4096, any::<bool>()), 1..80)) {
        let (mut machine, mut heap) = setup();
        let mut live: Vec<VirtAddr> = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let addr = live.swap_remove(live.len() / 2);
                heap.free(&mut machine, addr).unwrap();
            } else {
                live.push(heap.malloc(&mut machine, size).unwrap());
            }
            let s = heap.stats();
            prop_assert!(s.in_use_bytes <= s.wilderness_bytes);
            prop_assert!(s.peak_in_use_bytes >= s.in_use_bytes);
            prop_assert!(s.peak_requested_bytes >= s.requested_bytes);
            prop_assert!(s.in_use_bytes >= s.requested_bytes, "blocks >= requests");
            prop_assert_eq!(s.live_objects(), live.len() as u64);
        }
    }

    /// Every handed-out block is MIN_ALIGN-aligned and usable_size
    /// covers the request, whatever the request mix.
    #[test]
    fn alignment_and_usable_size(sizes in proptest::collection::vec(1u64..100_000, 1..40)) {
        let (mut machine, mut heap) = setup();
        for size in sizes {
            let addr = heap.malloc(&mut machine, size).unwrap();
            prop_assert!(addr.is_aligned(MIN_ALIGN));
            prop_assert!(heap.usable_size(addr).unwrap() >= size);
        }
    }
}
