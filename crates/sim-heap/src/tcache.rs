//! A per-thread caching front-end for the heap (tcmalloc/glibc-tcache
//! style).
//!
//! Production allocators avoid central-freelist contention by giving
//! every thread a small cache of recently freed blocks per size class.
//! [`ThreadCachedHeap`] layers that design over [`SimHeap`]: frees park
//! blocks in the freeing thread's cache; same-class allocations from the
//! same thread reuse them without touching the central heap. The cache
//! is bounded per class; overflow flushes half the entries back.
//!
//! Detection tools interpose *around* whichever allocator the program
//! uses — this layer exists so the substrate credibly covers the
//! multithreaded-allocator designs the paper's server workloads
//! (MySQL, Memcached) actually run on.

use crate::heap::{HeapConfig, HeapError, SimHeap};
use crate::size_class::{SizeClass, NUM_CLASSES};
use sim_machine::{CostDomain, Machine, ThreadId, VirtAddr};
use std::collections::HashMap;

/// Configuration of the per-thread caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcacheConfig {
    /// Maximum cached blocks per size class per thread (glibc's tcache
    /// keeps 7).
    pub entries_per_class: usize,
}

impl Default for TcacheConfig {
    fn default() -> Self {
        TcacheConfig {
            entries_per_class: 7,
        }
    }
}

/// Counters for the cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcacheStats {
    /// Allocations served from a thread cache.
    pub hits: u64,
    /// Allocations that fell through to the central heap.
    pub misses: u64,
    /// Frees parked in a thread cache.
    pub cached_frees: u64,
    /// Blocks flushed back to the central heap.
    pub flushed: u64,
}

/// Per-thread cached blocks, one stack per size class.
#[derive(Debug)]
struct ThreadCache {
    classes: Vec<Vec<(VirtAddr, u64)>>, // (block start, cached requested size)
}

impl ThreadCache {
    fn new() -> Self {
        ThreadCache {
            classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
        }
    }
}

/// A [`SimHeap`] fronted by per-thread caches.
///
/// # Examples
///
/// ```
/// use sim_heap::{HeapConfig, TcacheConfig, ThreadCachedHeap};
/// use sim_machine::{Machine, ThreadId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new();
/// let mut heap = ThreadCachedHeap::new(
///     &mut machine,
///     HeapConfig::default(),
///     TcacheConfig::default(),
/// )?;
/// let p = heap.malloc(&mut machine, ThreadId::MAIN, 64)?;
/// heap.free(&mut machine, ThreadId::MAIN, p)?;
/// // Same thread, same class: served from the cache.
/// let q = heap.malloc(&mut machine, ThreadId::MAIN, 60)?;
/// assert_eq!(p, q);
/// assert_eq!(heap.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadCachedHeap {
    heap: SimHeap,
    config: TcacheConfig,
    caches: HashMap<ThreadId, ThreadCache>,
    stats: TcacheStats,
}

impl ThreadCachedHeap {
    /// Creates the layered heap, mapping the underlying region.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from the underlying heap.
    pub fn new(
        machine: &mut Machine,
        heap_config: HeapConfig,
        config: TcacheConfig,
    ) -> Result<Self, sim_machine::MemoryError> {
        Ok(ThreadCachedHeap {
            heap: SimHeap::new(machine, heap_config)?,
            config,
            caches: HashMap::new(),
            stats: TcacheStats::default(),
        })
    }

    /// Allocates `size` bytes for `tid`, trying the thread cache first.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn malloc(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        size: u64,
    ) -> Result<VirtAddr, HeapError> {
        let class = SizeClass::for_request(size);
        if let Some(index) = class.index() {
            let cache = self.caches.entry(tid).or_insert_with(ThreadCache::new);
            if let Some((addr, _cached_size)) = cache.classes[index].pop() {
                // A cache hit is a handful of instructions — the whole
                // point of the design.
                machine.charge(CostDomain::App, machine.costs().rng_draw);
                self.stats.hits += 1;
                // Update the central book-keeping to the new requested
                // size (the block stayed live throughout).
                self.heap
                    .realloc(machine, addr, size)
                    .expect("cached block is live and fits its class");
                return Ok(addr);
            }
        }
        self.stats.misses += 1;
        self.heap.malloc(machine, size)
    }

    /// Frees the allocation at `addr` into `tid`'s cache (or the central
    /// heap for large blocks and overflowing caches).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidPointer`] for wild or double frees.
    pub fn free(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        addr: VirtAddr,
    ) -> Result<(), HeapError> {
        let Some(requested) = self.heap.requested_size(addr) else {
            return Err(HeapError::InvalidPointer(addr));
        };
        let class = SizeClass::for_request(requested);
        let Some(index) = class.index() else {
            // Large blocks go straight back.
            self.heap.free(machine, addr)?;
            return Ok(());
        };
        // Double-free through the cache: the block may already be parked.
        let cache = self.caches.entry(tid).or_insert_with(ThreadCache::new);
        if cache.classes[index].iter().any(|&(a, _)| a == addr) {
            return Err(HeapError::InvalidPointer(addr));
        }
        cache.classes[index].push((addr, requested));
        self.stats.cached_frees += 1;
        if cache.classes[index].len() > self.config.entries_per_class {
            // Flush the older half back to the central heap.
            let keep = self.config.entries_per_class / 2;
            let surplus = cache.classes[index].len() - keep;
            let drain: Vec<(VirtAddr, u64)> =
                cache.classes[index].drain(..surplus).collect();
            for (block, _) in drain {
                self.heap.free(machine, block)?;
                self.stats.flushed += 1;
            }
        }
        Ok(())
    }

    /// Flushes every thread cache back to the central heap (thread exit
    /// or program end).
    ///
    /// # Errors
    ///
    /// Propagates central-heap errors (an invariant violation).
    pub fn flush_all(&mut self, machine: &mut Machine) -> Result<(), HeapError> {
        for (_, cache) in self.caches.drain() {
            for class in cache.classes {
                for (block, _) in class {
                    self.heap.free(machine, block)?;
                    self.stats.flushed += 1;
                }
            }
        }
        Ok(())
    }

    /// Cache-layer counters.
    pub fn stats(&self) -> TcacheStats {
        self.stats
    }

    /// The central heap underneath (cached blocks count as live there).
    pub fn inner(&self) -> &SimHeap {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, ThreadCachedHeap) {
        let mut machine = Machine::new();
        let heap =
            ThreadCachedHeap::new(&mut machine, HeapConfig::default(), TcacheConfig::default())
                .unwrap();
        (machine, heap)
    }

    #[test]
    fn same_thread_same_class_hits() {
        let (mut m, mut h) = setup();
        let p = h.malloc(&mut m, ThreadId::MAIN, 64).unwrap();
        h.free(&mut m, ThreadId::MAIN, p).unwrap();
        let q = h.malloc(&mut m, ThreadId::MAIN, 50).unwrap(); // same class (64)
        assert_eq!(p, q);
        let s = h.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        // Book-keeping follows the new request.
        assert_eq!(h.inner().requested_size(q), Some(50));
    }

    #[test]
    fn other_thread_does_not_see_the_cache() {
        let (mut m, mut h) = setup();
        let worker = m.spawn_thread();
        let p = h.malloc(&mut m, ThreadId::MAIN, 64).unwrap();
        h.free(&mut m, ThreadId::MAIN, p).unwrap();
        let q = h.malloc(&mut m, worker, 64).unwrap();
        assert_ne!(p, q, "worker misses MAIN's cache");
        assert_eq!(h.stats().hits, 0);
    }

    #[test]
    fn different_class_misses() {
        let (mut m, mut h) = setup();
        let p = h.malloc(&mut m, ThreadId::MAIN, 64).unwrap();
        h.free(&mut m, ThreadId::MAIN, p).unwrap();
        let q = h.malloc(&mut m, ThreadId::MAIN, 2_000).unwrap();
        assert_ne!(p, q);
        assert_eq!(h.stats().hits, 0);
    }

    #[test]
    fn cache_overflow_flushes_half() {
        let (mut m, mut h) = setup();
        let mut blocks = Vec::new();
        for _ in 0..16 {
            blocks.push(h.malloc(&mut m, ThreadId::MAIN, 64).unwrap());
        }
        for b in blocks {
            h.free(&mut m, ThreadId::MAIN, b).unwrap();
        }
        let s = h.stats();
        assert!(s.flushed > 0, "cap of 7 forces flushes");
        assert_eq!(s.cached_frees, 16);
    }

    #[test]
    fn double_free_detected_even_when_cached() {
        let (mut m, mut h) = setup();
        let p = h.malloc(&mut m, ThreadId::MAIN, 64).unwrap();
        h.free(&mut m, ThreadId::MAIN, p).unwrap();
        assert_eq!(
            h.free(&mut m, ThreadId::MAIN, p),
            Err(HeapError::InvalidPointer(p))
        );
    }

    #[test]
    fn large_blocks_bypass_the_cache() {
        let (mut m, mut h) = setup();
        let p = h.malloc(&mut m, ThreadId::MAIN, 100_000).unwrap();
        h.free(&mut m, ThreadId::MAIN, p).unwrap();
        assert_eq!(h.stats().cached_frees, 0);
        assert_eq!(h.inner().stats().live_objects(), 0);
    }

    #[test]
    fn flush_all_returns_everything() {
        let (mut m, mut h) = setup();
        let worker = m.spawn_thread();
        for tid in [ThreadId::MAIN, worker] {
            for _ in 0..3 {
                let p = h.malloc(&mut m, tid, 64).unwrap();
                h.free(&mut m, tid, p).unwrap();
            }
        }
        h.flush_all(&mut m).unwrap();
        assert_eq!(h.inner().stats().live_objects(), 0);
    }

    #[test]
    fn wild_free_rejected() {
        let (mut m, mut h) = setup();
        let bogus = VirtAddr::new(0x1234);
        assert_eq!(
            h.free(&mut m, ThreadId::MAIN, bogus),
            Err(HeapError::InvalidPointer(bogus))
        );
    }
}
