//! # sim-heap — heap allocator substrate
//!
//! A segregated-freelist `malloc`/`free`/`calloc`/`realloc`/`memalign`
//! implementation over the [`sim_machine`] virtual address space. It plays
//! the role glibc's allocator plays under the real CSOD: detection tools
//! interpose *around* it (adding headers, canaries or redzones) without the
//! allocator knowing.
//!
//! ```
//! use sim_heap::{HeapConfig, SimHeap};
//! use sim_machine::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new();
//! let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
//! let p = heap.calloc(&mut machine, 64)?;
//! assert_eq!(machine.raw_load_u64(p)?, 0);
//! heap.free(&mut machine, p)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::perf)]

mod heap;
mod size_class;
mod stats;
mod tcache;

pub use heap::{HeapConfig, HeapError, SimHeap};
pub use size_class::{SizeClass, MEDIUM_MAX, MIN_ALIGN, NUM_CLASSES, PAGE, SMALL_MAX};
pub use stats::HeapStats;
pub use tcache::{TcacheConfig, TcacheStats, ThreadCachedHeap};
