//! Size classes for the segregated-freelist allocator.
//!
//! Requests are rounded up to one of a fixed set of block sizes so freed
//! blocks can be recycled exactly, glibc-style:
//!
//! * 16-byte granularity up to 512 bytes (32 small classes),
//! * power-of-two classes from 1 KiB to 32 KiB (6 medium classes),
//! * anything larger is a *large* allocation carved directly from the
//!   wilderness at page granularity.

/// Minimum alignment (and granularity) of every allocation, matching the
/// 16-byte alignment `malloc` guarantees on x86-64.
pub const MIN_ALIGN: u64 = 16;

/// Largest small-class block (16-byte steps up to here).
pub const SMALL_MAX: u64 = 512;

/// Largest medium-class block (power-of-two classes up to here);
/// anything bigger goes to page-rounded large allocations, like the
/// mmap threshold of real allocators.
pub const MEDIUM_MAX: u64 = 32 << 10;

/// Page size used to round large allocations.
pub const PAGE: u64 = 4096;

/// Number of distinct recycled size classes.
pub const NUM_CLASSES: usize = 32 + 6;

/// The block size class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Recycled through per-class free lists; payload is the class index.
    Classed(usize),
    /// Carved from the wilderness at page granularity; payload is the
    /// rounded byte size.
    Large(u64),
}

impl SizeClass {
    /// Classifies a request of `size` bytes (zero behaves like 1, as
    /// `malloc(0)` returns a unique pointer on glibc).
    ///
    /// # Examples
    ///
    /// ```
    /// use sim_heap::SizeClass;
    ///
    /// assert_eq!(SizeClass::for_request(1).block_size(), 16);
    /// assert_eq!(SizeClass::for_request(512).block_size(), 512);
    /// assert_eq!(SizeClass::for_request(513).block_size(), 1024);
    /// assert_eq!(SizeClass::for_request(3 << 20).block_size(), 3 << 20);
    /// ```
    pub fn for_request(size: u64) -> SizeClass {
        let size = size.max(1);
        if size <= SMALL_MAX {
            let rounded = size.div_ceil(MIN_ALIGN) * MIN_ALIGN;
            SizeClass::Classed((rounded / MIN_ALIGN - 1) as usize)
        } else if size <= MEDIUM_MAX {
            let rounded = size.next_power_of_two();
            // 1 KiB is class 32; each doubling adds one.
            let index = 32 + (rounded.trailing_zeros() as usize - 10);
            SizeClass::Classed(index)
        } else {
            SizeClass::Large(size.div_ceil(PAGE) * PAGE)
        }
    }

    /// The actual block size backing this class.
    pub fn block_size(self) -> u64 {
        match self {
            SizeClass::Classed(i) if i < 32 => (i as u64 + 1) * MIN_ALIGN,
            SizeClass::Classed(i) => 1u64 << (i - 32 + 10),
            SizeClass::Large(bytes) => bytes,
        }
    }

    /// The free-list index for recycled classes, `None` for large blocks.
    pub fn index(self) -> Option<usize> {
        match self {
            SizeClass::Classed(i) => Some(i),
            SizeClass::Large(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_classes_are_16_byte_steps() {
        assert_eq!(SizeClass::for_request(0).block_size(), 16);
        assert_eq!(SizeClass::for_request(16).block_size(), 16);
        assert_eq!(SizeClass::for_request(17).block_size(), 32);
        assert_eq!(SizeClass::for_request(500).block_size(), 512);
    }

    #[test]
    fn medium_classes_are_powers_of_two() {
        assert_eq!(SizeClass::for_request(513).block_size(), 1024);
        assert_eq!(SizeClass::for_request(1024).block_size(), 1024);
        assert_eq!(SizeClass::for_request(1025).block_size(), 2048);
        assert_eq!(SizeClass::for_request(32 << 10).block_size(), 32 << 10);
    }

    #[test]
    fn large_is_page_rounded() {
        let c = SizeClass::for_request((32 << 10) + 1);
        assert_eq!(c.block_size(), (32 << 10) + PAGE);
        assert_eq!(c.index(), None);
        // Page rounding keeps big objects tight: a 153 KiB object wastes
        // less than one page instead of doubling to 256 KiB.
        let big = SizeClass::for_request(153 * 1024);
        assert!(big.block_size() < 153 * 1024 + PAGE);
    }

    #[test]
    fn block_size_always_covers_request() {
        for size in (1..5000).chain([1 << 14, (32 << 10) - 1, (1 << 22) + 7]) {
            let c = SizeClass::for_request(size);
            assert!(c.block_size() >= size, "class too small for {size}");
            assert_eq!(c.block_size() % MIN_ALIGN, 0);
        }
    }

    #[test]
    fn class_indices_are_dense_and_stable() {
        // The largest classed index must fit NUM_CLASSES.
        let top = SizeClass::for_request(MEDIUM_MAX);
        assert_eq!(top.index(), Some(NUM_CLASSES - 1));
        // Round-tripping through the index preserves block size.
        for size in [1, 16, 17, 512, 513, 4096, 32 << 10] {
            let c = SizeClass::for_request(size);
            let i = c.index().unwrap();
            assert_eq!(SizeClass::Classed(i).block_size(), c.block_size());
        }
    }
}
