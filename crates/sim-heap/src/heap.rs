//! The segregated-freelist heap.

use crate::size_class::{SizeClass, MIN_ALIGN, NUM_CLASSES};
use crate::stats::HeapStats;
use sim_machine::{CostDomain, Machine, VirtAddr};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// One fxhash round for the live-object table. The default SipHash
/// hasher costs more than the rest of `malloc`/`free` bookkeeping put
/// together; addresses are already high-entropy in the low bits, so a
/// single multiply mixes plenty.
#[derive(Debug, Default)]
struct AddrHasher(u64);

/// The 64-bit `fxhash` multiplier (golden-ratio based).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for AddrHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; tolerate other widths anyway.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0.rotate_left(5) ^ value).wrapping_mul(FX_SEED);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type AddrMap<V> = HashMap<u64, V, BuildHasherDefault<AddrHasher>>;

/// Errors produced by heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The heap region is exhausted.
    OutOfMemory {
        /// The request that could not be satisfied.
        requested: u64,
    },
    /// `free`/`usable_size` was given a pointer that is not the start of
    /// a live allocation (wild pointer or double free).
    InvalidPointer(VirtAddr),
    /// `memalign` was given a non-power-of-two alignment.
    BadAlignment(u64),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of heap memory (requested {requested} bytes)")
            }
            HeapError::InvalidPointer(p) => write!(f, "invalid heap pointer {p}"),
            HeapError::BadAlignment(a) => write!(f, "alignment {a} is not a power of two"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Configuration of a [`SimHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Base virtual address of the heap region.
    pub base: VirtAddr,
    /// Size of the heap region in bytes.
    pub size: u64,
}

impl Default for HeapConfig {
    /// 256 MiB at `0x7f00_0000_0000`, loosely mimicking a glibc arena.
    fn default() -> Self {
        HeapConfig {
            base: VirtAddr::new(0x7f00_0000_0000),
            size: 256 << 20,
        }
    }
}

/// Metadata for one live allocation.
#[derive(Debug, Clone, Copy)]
struct LiveObject {
    requested: u64,
    class: SizeClass,
}

/// A segregated-freelist allocator over a [`Machine`] memory region.
///
/// The heap stores only metadata; every operation takes `&mut Machine` so
/// tools and workloads share one machine. Baseline allocator work is
/// charged to the *application* cost bucket — in the paper's measurements
/// the stock allocator is part of the uninstrumented program.
///
/// # Examples
///
/// ```
/// use sim_heap::{HeapConfig, SimHeap};
/// use sim_machine::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new();
/// let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
/// let p = heap.malloc(&mut machine, 100)?;
/// assert!(heap.usable_size(p).unwrap() >= 100);
/// heap.free(&mut machine, p)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimHeap {
    config: HeapConfig,
    /// Bump cursor into untouched heap space.
    wilderness: VirtAddr,
    /// Recycled blocks per size class.
    free_lists: Vec<Vec<VirtAddr>>,
    /// Freed large blocks, linear first-fit.
    large_free: Vec<(VirtAddr, u64)>,
    live: AddrMap<LiveObject>,
    stats: HeapStats,
}

impl SimHeap {
    /// Creates a heap, mapping its region on `machine`.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures (overlapping or invalid region) as
    /// [`HeapError::OutOfMemory`]-style mapping errors from the machine.
    pub fn new(machine: &mut Machine, config: HeapConfig) -> Result<Self, sim_machine::MemoryError> {
        machine.map_region(config.base, config.size, "sim-heap")?;
        Ok(SimHeap {
            config,
            wilderness: config.base,
            free_lists: vec![Vec::new(); NUM_CLASSES],
            large_free: Vec::new(),
            live: AddrMap::default(),
            stats: HeapStats::default(),
        })
    }

    /// The heap configuration.
    pub fn config(&self) -> HeapConfig {
        self.config
    }

    /// Allocates `size` bytes, 16-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the region is exhausted or
    /// when the machine's fault plan injects allocator pressure.
    #[inline]
    pub fn malloc(&mut self, machine: &mut Machine, size: u64) -> Result<VirtAddr, HeapError> {
        machine.charge(CostDomain::App, machine.costs().malloc_base);
        if machine.fault_alloc_fails() {
            self.stats.failed_allocs += 1;
            return Err(HeapError::OutOfMemory { requested: size });
        }
        self.allocate(size)
    }

    /// Allocates `size` zeroed bytes (`calloc(1, size)`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn calloc(&mut self, machine: &mut Machine, size: u64) -> Result<VirtAddr, HeapError> {
        let addr = self.malloc(machine, size)?;
        machine
            .raw_fill(addr, size.max(1), 0)
            .expect("fresh allocation must be mapped");
        Ok(addr)
    }

    /// Resizes the allocation at `addr` to `new_size`, copying the common
    /// prefix like `realloc`.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidPointer`] if `addr` is not live;
    /// [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn realloc(
        &mut self,
        machine: &mut Machine,
        addr: VirtAddr,
        new_size: u64,
    ) -> Result<VirtAddr, HeapError> {
        let old = *self
            .live
            .get(&addr.as_u64())
            .ok_or(HeapError::InvalidPointer(addr))?;
        if new_size <= old.class.block_size() {
            // Fits in place; update requested-byte accounting.
            self.stats.on_free(old.requested, old.class.block_size());
            self.stats.on_alloc(new_size, old.class.block_size());
            // on_alloc/on_free above also bump the alloc/free counters;
            // realloc-in-place is not a new object, undo that.
            self.stats.allocs -= 1;
            self.stats.frees -= 1;
            self.live.insert(
                addr.as_u64(),
                LiveObject {
                    requested: new_size,
                    class: old.class,
                },
            );
            return Ok(addr);
        }
        let new_addr = self.malloc(machine, new_size)?;
        let copy_len = old.requested.min(new_size) as usize;
        let mut buf = vec![0u8; copy_len];
        machine.raw_read_bytes(addr, &mut buf).expect("old object mapped");
        machine.raw_write_bytes(new_addr, &buf).expect("new object mapped");
        self.free(machine, addr)?;
        Ok(new_addr)
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAlignment`] for non-power-of-two alignments;
    /// [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn memalign(
        &mut self,
        machine: &mut Machine,
        align: u64,
        size: u64,
    ) -> Result<VirtAddr, HeapError> {
        if !align.is_power_of_two() {
            return Err(HeapError::BadAlignment(align));
        }
        machine.charge(CostDomain::App, machine.costs().malloc_base);
        if machine.fault_alloc_fails() {
            self.stats.failed_allocs += 1;
            return Err(HeapError::OutOfMemory { requested: size });
        }
        if align <= MIN_ALIGN {
            return self.allocate(size);
        }
        // Carve an aligned block straight from the wilderness.
        let start = self.wilderness.align_up(align);
        let class = SizeClass::for_request(size);
        let block = class.block_size();
        let end = start
            .checked_add(block)
            .ok_or(HeapError::OutOfMemory { requested: size })?;
        if end > self.config.base + self.config.size {
            self.stats.failed_allocs += 1;
            return Err(HeapError::OutOfMemory { requested: size });
        }
        self.wilderness = end;
        self.stats.wilderness_bytes = self.wilderness - self.config.base;
        self.finish_alloc(start, size, class);
        Ok(start)
    }

    /// Frees the allocation at `addr`, returning its requested size.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidPointer`] for wild pointers and double
    /// frees.
    #[inline]
    pub fn free(&mut self, machine: &mut Machine, addr: VirtAddr) -> Result<u64, HeapError> {
        machine.charge(CostDomain::App, machine.costs().free_base);
        let obj = self
            .live
            .remove(&addr.as_u64())
            .ok_or(HeapError::InvalidPointer(addr))?;
        let block = obj.class.block_size();
        match obj.class.index() {
            Some(i) => self.free_lists[i].push(addr),
            None => self.large_free.push((addr, block)),
        }
        self.stats.on_free(obj.requested, block);
        Ok(obj.requested)
    }

    /// The caller-visible size of the live allocation at `addr`
    /// (`malloc_usable_size`): the full block size.
    pub fn usable_size(&self, addr: VirtAddr) -> Option<u64> {
        self.live
            .get(&addr.as_u64())
            .map(|o| o.class.block_size())
    }

    /// The size originally requested for the live allocation at `addr`.
    pub fn requested_size(&self, addr: VirtAddr) -> Option<u64> {
        self.live.get(&addr.as_u64()).map(|o| o.requested)
    }

    /// Returns `true` if `addr` is the start of a live allocation.
    pub fn is_live(&self, addr: VirtAddr) -> bool {
        self.live.contains_key(&addr.as_u64())
    }

    /// Iterates over the starting addresses of all live allocations, in
    /// unspecified order.
    pub fn live_addrs(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.live.keys().map(|&raw| VirtAddr::new(raw))
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    fn allocate(&mut self, size: u64) -> Result<VirtAddr, HeapError> {
        let class = SizeClass::for_request(size);
        let block = class.block_size();
        let addr = match class.index() {
            Some(i) => match self.free_lists[i].pop() {
                Some(addr) => addr,
                None => self.carve(block, size)?,
            },
            None => {
                // First-fit over freed large blocks.
                if let Some(pos) = self.large_free.iter().position(|&(_, len)| len >= block) {
                    let (addr, _) = self.large_free.swap_remove(pos);
                    addr
                } else {
                    self.carve(block, size)?
                }
            }
        };
        self.finish_alloc(addr, size, class);
        Ok(addr)
    }

    fn carve(&mut self, block: u64, requested: u64) -> Result<VirtAddr, HeapError> {
        let start = self.wilderness;
        let end = start
            .checked_add(block)
            .ok_or(HeapError::OutOfMemory { requested })?;
        if end > self.config.base + self.config.size {
            self.stats.failed_allocs += 1;
            return Err(HeapError::OutOfMemory { requested });
        }
        self.wilderness = end;
        self.stats.wilderness_bytes = self.wilderness - self.config.base;
        Ok(start)
    }

    fn finish_alloc(&mut self, addr: VirtAddr, requested: u64, class: SizeClass) {
        self.stats.on_alloc(requested, class.block_size());
        let prev = self.live.insert(addr.as_u64(), LiveObject { requested, class });
        debug_assert!(prev.is_none(), "allocator handed out a live address");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, SimHeap) {
        let mut m = Machine::new();
        let heap = SimHeap::new(&mut m, HeapConfig::default()).unwrap();
        (m, heap)
    }

    #[test]
    fn malloc_returns_aligned_disjoint_objects() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 24).unwrap();
        let b = h.malloc(&mut m, 24).unwrap();
        assert!(a.is_aligned(MIN_ALIGN));
        assert!(b.is_aligned(MIN_ALIGN));
        assert!(b.as_u64() >= a.as_u64() + 32, "blocks must not overlap");
    }

    #[test]
    fn free_recycles_block() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 64).unwrap();
        h.free(&mut m, a).unwrap();
        let b = h.malloc(&mut m, 64).unwrap();
        assert_eq!(a, b, "same class should recycle the freed block");
    }

    #[test]
    fn double_free_is_detected() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 8).unwrap();
        h.free(&mut m, a).unwrap();
        assert_eq!(h.free(&mut m, a), Err(HeapError::InvalidPointer(a)));
    }

    #[test]
    fn wild_free_is_detected() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 8).unwrap();
        assert_eq!(
            h.free(&mut m, a + 8),
            Err(HeapError::InvalidPointer(a + 8))
        );
    }

    #[test]
    fn calloc_zeroes() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 32).unwrap();
        m.raw_fill(a, 32, 0xFF).unwrap();
        h.free(&mut m, a).unwrap();
        let b = h.calloc(&mut m, 32).unwrap();
        assert_eq!(b, a, "recycled the dirty block");
        assert_eq!(m.raw_load_u64(b).unwrap(), 0);
    }

    #[test]
    fn realloc_grows_and_copies() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 16).unwrap();
        m.raw_store_u64(a, 0x1122_3344).unwrap();
        let b = h.realloc(&mut m, a, 4096).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.raw_load_u64(b).unwrap(), 0x1122_3344);
        assert!(!h.is_live(a));
        assert!(h.is_live(b));
    }

    #[test]
    fn realloc_in_place_when_block_fits() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 10).unwrap(); // 16-byte block
        let b = h.realloc(&mut m, a, 14).unwrap();
        assert_eq!(a, b);
        assert_eq!(h.requested_size(b), Some(14));
        assert_eq!(h.stats().live_objects(), 1);
    }

    #[test]
    fn realloc_wild_pointer_fails() {
        let (mut m, mut h) = setup();
        let bogus = VirtAddr::new(0x1234);
        assert_eq!(
            h.realloc(&mut m, bogus, 10),
            Err(HeapError::InvalidPointer(bogus))
        );
    }

    #[test]
    fn memalign_honors_alignment() {
        let (mut m, mut h) = setup();
        // Unbalance the cursor first.
        let _ = h.malloc(&mut m, 16).unwrap();
        let a = h.memalign(&mut m, 4096, 100).unwrap();
        assert!(a.is_aligned(4096));
        assert!(h.usable_size(a).unwrap() >= 100);
        assert_eq!(
            h.memalign(&mut m, 48, 8),
            Err(HeapError::BadAlignment(48))
        );
    }

    #[test]
    fn usable_size_is_block_size() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 100).unwrap();
        assert_eq!(h.usable_size(a), Some(112));
        assert_eq!(h.requested_size(a), Some(100));
        assert_eq!(h.usable_size(a + 16), None);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut m = Machine::new();
        let mut h = SimHeap::new(
            &mut m,
            HeapConfig {
                base: VirtAddr::new(0x10_0000),
                size: 4096,
            },
        )
        .unwrap();
        let _a = h.malloc(&mut m, 2048).unwrap();
        let err = h.malloc(&mut m, 4096).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert_eq!(h.stats().failed_allocs, 1);
    }

    #[test]
    fn large_blocks_recycled_first_fit() {
        let (mut m, mut h) = setup();
        let big = h.malloc(&mut m, 2 << 20).unwrap();
        h.free(&mut m, big).unwrap();
        let again = h.malloc(&mut m, (2 << 20) - 100).unwrap();
        assert_eq!(big, again);
    }

    #[test]
    fn stats_track_peaks() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 100).unwrap(); // 112-byte block
        let b = h.malloc(&mut m, 100).unwrap();
        h.free(&mut m, a).unwrap();
        h.free(&mut m, b).unwrap();
        let s = h.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.in_use_bytes, 0);
        assert_eq!(s.peak_in_use_bytes, 224);
        assert_eq!(s.peak_requested_bytes, 200);
        assert_eq!(s.wilderness_bytes, 224);
    }

    #[test]
    fn allocator_work_charged_to_app() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 8).unwrap();
        h.free(&mut m, a).unwrap();
        let c = m.counter();
        assert_eq!(c.app_ns(), m.costs().malloc_base + m.costs().free_base);
        assert_eq!(c.tool_ns(), 0);
    }

    #[test]
    fn live_addrs_enumerates_live_objects() {
        let (mut m, mut h) = setup();
        let a = h.malloc(&mut m, 8).unwrap();
        let b = h.malloc(&mut m, 8).unwrap();
        h.free(&mut m, a).unwrap();
        let live: Vec<_> = h.live_addrs().collect();
        assert_eq!(live, vec![b]);
    }
}
