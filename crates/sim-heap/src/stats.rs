//! Allocation statistics.
//!
//! Table V of the paper compares the *maximum resident memory* of each
//! application under the default allocator, CSOD, and ASan. The simulated
//! heap tracks the equivalents: bytes currently and maximally in use
//! (block-rounded, as an RSS proxy) and the wilderness high-water mark
//! (footprint actually carved out of the mapped region).

use std::fmt;

/// Counters maintained by [`SimHeap`](crate::SimHeap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Bytes currently allocated, rounded to block size.
    pub in_use_bytes: u64,
    /// High-water mark of [`HeapStats::in_use_bytes`] — the RSS proxy
    /// Table V reports.
    pub peak_in_use_bytes: u64,
    /// Bytes currently allocated as requested by the caller (un-rounded).
    pub requested_bytes: u64,
    /// High-water mark of [`HeapStats::requested_bytes`].
    pub peak_requested_bytes: u64,
    /// Bytes ever carved from the wilderness (never shrinks).
    pub wilderness_bytes: u64,
    /// Allocations that failed for lack of space.
    pub failed_allocs: u64,
}

impl HeapStats {
    /// Records a successful allocation of `requested` bytes in a
    /// `block`-byte block.
    pub(crate) fn on_alloc(&mut self, requested: u64, block: u64) {
        self.allocs += 1;
        self.in_use_bytes += block;
        self.requested_bytes += requested;
        self.peak_in_use_bytes = self.peak_in_use_bytes.max(self.in_use_bytes);
        self.peak_requested_bytes = self.peak_requested_bytes.max(self.requested_bytes);
    }

    /// Records a successful free of an allocation made with `requested`
    /// bytes in a `block`-byte block.
    pub(crate) fn on_free(&mut self, requested: u64, block: u64) {
        self.frees += 1;
        self.in_use_bytes -= block;
        self.requested_bytes -= requested;
    }

    /// Number of objects currently live.
    pub fn live_objects(&self) -> u64 {
        self.allocs - self.frees
    }

    /// Internal fragmentation ratio: rounded bytes over requested bytes at
    /// the peak, or 1.0 when nothing was allocated.
    pub fn peak_overhead_ratio(&self) -> f64 {
        if self.peak_requested_bytes == 0 {
            1.0
        } else {
            self.peak_in_use_bytes as f64 / self.peak_requested_bytes as f64
        }
    }
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocs / {} frees, {} live, peak {} KiB (requested {} KiB)",
            self.allocs,
            self.frees,
            self.live_objects(),
            self.peak_in_use_bytes / 1024,
            self.peak_requested_bytes / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_track_high_water() {
        let mut s = HeapStats::default();
        s.on_alloc(10, 16);
        s.on_alloc(100, 112);
        assert_eq!(s.peak_in_use_bytes, 128);
        s.on_free(10, 16);
        s.on_alloc(20, 32);
        assert_eq!(s.in_use_bytes, 144);
        assert_eq!(s.peak_in_use_bytes, 144);
        assert_eq!(s.live_objects(), 2);
    }

    #[test]
    fn overhead_ratio() {
        let mut s = HeapStats::default();
        assert_eq!(s.peak_overhead_ratio(), 1.0);
        s.on_alloc(10, 16);
        assert!((s.peak_overhead_ratio() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_live_objects() {
        let mut s = HeapStats::default();
        s.on_alloc(8, 16);
        assert!(s.to_string().contains("1 live"));
    }
}
