//! Cost of the context hash table and the per-thread generator — the two
//! data structures on CSOD's allocation fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csod_ctx::{ContextKey, ContextTable, FrameTable};
use csod_rng::Arc4Random;

fn bench_context_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_table_lookup");
    for &contexts in &[10usize, 100, 1_000, 10_000] {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::new();
        let keys: Vec<ContextKey> = (0..contexts)
            .map(|i| ContextKey::new(frames.intern(&format!("site{i}.c:1")), 0x40))
            .collect();
        for &k in &keys {
            table.with_entry(k, || 0, |_| ());
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(contexts),
            &contexts,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let k = keys[i % keys.len()];
                    i += 1;
                    table.with_entry(k, || 0, |v| *v += 1)
                });
            },
        );
    }
    group.finish();

    c.bench_function("context_key_bucket_hash", |b| {
        let frames = FrameTable::new();
        let key = ContextKey::new(frames.intern("hot.c:1"), 0x1240);
        b.iter(|| key.bucket(4096));
    });
}

fn bench_context_tree(c: &mut Criterion) {
    use csod_ctx::{CallingContext, ContextTree};
    let frames = FrameTable::new();
    let tree = ContextTree::new();
    let contexts: Vec<CallingContext> = (0..500)
        .map(|i| {
            CallingContext::from_locations(
                &frames,
                [
                    format!("leaf_{i}.c:1"),
                    format!("layer{}.c:2", i % 11),
                    "dispatch.c:3".to_string(),
                    "main.c:4".to_string(),
                ]
                .iter()
                .map(String::as_str),
            )
        })
        .collect();
    for ctx in &contexts {
        tree.intern(ctx);
    }
    c.bench_function("context_tree_intern_hot", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = tree.intern(&contexts[i % contexts.len()]);
            i += 1;
            id
        });
    });
    let id = tree.intern(&contexts[0]);
    c.bench_function("context_tree_materialize_depth4", |b| {
        b.iter(|| tree.materialize(id));
    });
}

fn bench_tcache(c: &mut Criterion) {
    use sim_heap::{HeapConfig, SimHeap, TcacheConfig, ThreadCachedHeap};
    use sim_machine::{Machine, ThreadId};

    c.bench_function("tcache_hit_malloc_free", |b| {
        let mut machine = Machine::new();
        let mut heap =
            ThreadCachedHeap::new(&mut machine, HeapConfig::default(), TcacheConfig::default())
                .unwrap();
        // Prime the cache.
        let p = heap.malloc(&mut machine, ThreadId::MAIN, 64).unwrap();
        heap.free(&mut machine, ThreadId::MAIN, p).unwrap();
        b.iter(|| {
            let p = heap.malloc(&mut machine, ThreadId::MAIN, 64).unwrap();
            heap.free(&mut machine, ThreadId::MAIN, p).unwrap();
        });
    });
    c.bench_function("central_heap_malloc_free", |b| {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        b.iter(|| {
            let p = heap.malloc(&mut machine, 64).unwrap();
            heap.free(&mut machine, p).unwrap();
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("arc4random_next_u32", |b| {
        let mut rng = Arc4Random::from_seed(1, 0);
        b.iter(|| rng.next_u32());
    });
    c.bench_function("arc4random_chance_ppm", |b| {
        let mut rng = Arc4Random::from_seed(1, 0);
        b.iter(|| rng.chance_ppm(500_000));
    });
}

criterion_group!(benches, bench_context_table, bench_context_tree, bench_tcache, bench_rng);
criterion_main!(benches);
