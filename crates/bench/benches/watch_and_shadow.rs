//! Watchpoint install/remove cycles (CSOD's slow path) and shadow-memory
//! checks (ASan's fast path).

use asan_sim::ShadowMemory;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csod_core::{CtxId, ReplacementPolicy, WatchCandidate, WatchpointManager};
use csod_ctx::{ContextKey, FrameTable};
use csod_rng::Arc4Random;
use sim_machine::{Machine, VirtAddr, VirtDuration};

fn bench_watchpoints(c: &mut Criterion) {
    let mut group = c.benchmark_group("watchpoint_cycle");
    for &threads in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("install_remove", threads), &threads, |b, &t| {
            let frames = FrameTable::new();
            let mut machine = Machine::new();
            machine.map_region(VirtAddr::new(0x10_0000), 1 << 16, "heap").unwrap();
            for _ in 1..t {
                machine.spawn_thread();
            }
            let mut manager =
                WatchpointManager::new(ReplacementPolicy::NearFifo, VirtDuration::from_secs(10));
            let mut rng = Arc4Random::from_seed(1, 0);
            let candidate = WatchCandidate {
                object_start: VirtAddr::new(0x10_0000),
                canary_addr: VirtAddr::new(0x10_0040),
                key: ContextKey::new(frames.intern("a.c:1"), 0x40),
                ctx_id: CtxId::from_index(0),
                probability_ppm: 500_000,
            };
            b.iter(|| {
                manager.consider(&mut machine, candidate, &mut rng, |_| None);
                manager.remove_by_object(&mut machine, candidate.object_start);
            });
        });
    }
    group.finish();

    c.bench_function("watchpoint_replacement_full_slots", |b| {
        let frames = FrameTable::new();
        let mut machine = Machine::new();
        machine.map_region(VirtAddr::new(0x10_0000), 1 << 16, "heap").unwrap();
        let mut manager =
            WatchpointManager::new(ReplacementPolicy::Random, VirtDuration::from_secs(10));
        let mut rng = Arc4Random::from_seed(1, 0);
        let cand = |i: u64, prob: u32| WatchCandidate {
            object_start: VirtAddr::new(0x10_0000 + i * 64),
            canary_addr: VirtAddr::new(0x10_0038 + i * 64),
            key: ContextKey::new(frames.intern(&format!("s{i}.c:1")), 0x40),
            ctx_id: CtxId::from_index(i as u32),
            probability_ppm: prob,
        };
        for i in 0..4 {
            manager.consider(&mut machine, cand(i, 100), &mut rng, |_| None);
        }
        let mut n = 4u64;
        b.iter(|| {
            // Alternate winning replacements so each iteration replaces.
            let prob = if n.is_multiple_of(2) { 200 } else { 300 };
            let outcome = manager.consider(&mut machine, cand(n % 64, prob), &mut rng, |_| None);
            n += 1;
            outcome
        });
    });
}

fn bench_shadow(c: &mut Criterion) {
    let mut shadow = ShadowMemory::new();
    let obj = VirtAddr::new(0x7f00_0000_0000);
    shadow.unpoison_object(obj, 4096);
    shadow.poison_redzone(obj + 4096, 16);

    c.bench_function("shadow_check_clean_8b", |b| {
        b.iter(|| shadow.check(obj + 128, 8));
    });
    c.bench_function("shadow_check_clean_64b", |b| {
        b.iter(|| shadow.check(obj + 128, 64));
    });
    c.bench_function("shadow_check_redzone_hit", |b| {
        b.iter(|| shadow.check(obj + 4090, 16));
    });
    c.bench_function("shadow_poison_unpoison_64b_object", |b| {
        let mut s = ShadowMemory::new();
        b.iter(|| {
            s.unpoison_object(obj, 64);
            s.poison_redzone(obj, 64);
            s.clear(obj, 64);
        });
    });
}

criterion_group!(benches, bench_watchpoints, bench_shadow);
criterion_main!(benches);
