//! Real wall-clock cost of the allocation fast path — the component the
//! paper identifies as CSOD's major overhead source (Section V-B).

use asan_sim::{Asan, AsanConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csod_core::{Csod, CsodConfig};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{Machine, ThreadId};
use std::sync::Arc;

fn bench_alloc_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("malloc_free_pair");

    group.bench_function("baseline", |b| {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        b.iter(|| {
            let p = heap.malloc(&mut machine, 64).unwrap();
            heap.free(&mut machine, p).unwrap();
        });
    });

    group.bench_function("csod_evidence", |b| {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
        let ctx = CallingContext::from_locations(&frames, ["a.c:1", "main.c:2"]);
        let key = ContextKey::new(ctx.first_level().unwrap(), 0x40);
        b.iter(|| {
            let p = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &ctx)
                .unwrap();
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, p).unwrap();
        });
    });

    group.bench_function("csod_no_evidence", |b| {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(CsodConfig::without_evidence(), Arc::clone(&frames));
        let ctx = CallingContext::from_locations(&frames, ["a.c:1", "main.c:2"]);
        let key = ContextKey::new(ctx.first_level().unwrap(), 0x40);
        b.iter(|| {
            let p = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &ctx)
                .unwrap();
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, p).unwrap();
        });
    });

    group.bench_function("asan", |b| {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut asan = Asan::new(AsanConfig {
            quarantine_bytes: 0, // immediate reuse keeps the bench steady
            ..AsanConfig::default()
        });
        b.iter(|| {
            let p = asan.malloc(&mut machine, &mut heap, 64).unwrap();
            asan.free(&mut machine, &mut heap, p).unwrap();
        });
    });

    group.finish();

    // First-seen contexts pay the full-backtrace path once.
    c.bench_function("csod_malloc_first_seen_context", |b| {
        b.iter_batched(
            || {
                let frames = Arc::new(FrameTable::new());
                let mut machine = Machine::new();
                let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
                let csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
                let ctx = CallingContext::from_locations(&frames, ["fresh.c:1", "main.c:2"]);
                let key = ContextKey::new(ctx.first_level().unwrap(), 0x40);
                (machine, heap, csod, ctx, key)
            },
            |(mut machine, mut heap, mut csod, ctx, key)| {
                csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &ctx)
                    .unwrap()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_alloc_path);
criterion_main!(benches);
