//! Secondary tool paths: canary imprint/verify, evidence-store
//! operations, and report rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use csod_core::{CanaryUnit, CtxId, DetectionMethod, EvidenceStore, ObjectLayout, OverflowReport};
use csod_ctx::{CallingContext, FrameTable};
use sim_machine::{AccessKind, Machine, ThreadId, VirtAddr, VirtInstant};

fn bench_canary(c: &mut Criterion) {
    let mut machine = Machine::new();
    let base = VirtAddr::new(0x10_0000);
    machine.map_region(base, 1 << 16, "heap").unwrap();
    let unit = CanaryUnit::new(0xDEAD_BEEF_1234_5678);
    let layout = ObjectLayout::new(true, 64);

    c.bench_function("canary_imprint_64b_object", |b| {
        b.iter(|| unit.imprint(&mut machine, layout, base, CtxId::from_index(3)).unwrap());
    });
    unit.imprint(&mut machine, layout, base, CtxId::from_index(3)).unwrap();
    let canary_addr = layout.canary_addr(layout.user_ptr(base));
    c.bench_function("canary_check", |b| {
        b.iter(|| unit.check(&machine, canary_addr).unwrap());
    });
    c.bench_function("canary_read_header", |b| {
        b.iter(|| unit.read_header(&machine, layout.user_ptr(base)).unwrap());
    });
}

fn bench_evidence(c: &mut Criterion) {
    let frames = FrameTable::new();
    let contexts: Vec<CallingContext> = (0..200)
        .map(|i| {
            CallingContext::from_locations(
                &frames,
                [
                    format!("alloc/site_{i}.c:10"),
                    format!("logic/layer{}.c:20", i % 7),
                    "main.c:1".to_string(),
                ]
                .iter()
                .map(String::as_str),
            )
        })
        .collect();
    let mut store = EvidenceStore::new();
    for ctx in &contexts {
        store.record(ctx, &frames);
    }

    c.bench_function("evidence_contains_hit", |b| {
        b.iter(|| store.contains(&contexts[100], &frames));
    });
    let path = std::env::temp_dir().join(format!("csod-bench-evidence-{}.txt", std::process::id()));
    c.bench_function("evidence_save_200", |b| {
        b.iter(|| store.save(&path).unwrap());
    });
    c.bench_function("evidence_load_200", |b| {
        b.iter(|| EvidenceStore::load(&path).unwrap());
    });
    let _ = std::fs::remove_file(&path);
}

fn bench_report(c: &mut Criterion) {
    let frames = FrameTable::new();
    let report = OverflowReport {
        kind: AccessKind::Read,
        method: DetectionMethod::Watchpoint,
        thread: ThreadId::MAIN,
        object_start: VirtAddr::new(0x1000),
        boundary_addr: VirtAddr::new(0x1040),
        overflow_site: Some(CallingContext::from_locations(
            &frames,
            [
                "GLIBC/memcpy-sse2-unaligned.S:81",
                "OPENSSL/ssl/t1_lib.c:2588",
                "OPENSSL/ssl/s3_pkt.c:1095",
                "NGINX/os/unix/ngx_process_cycle.c:138",
                "NGINX/core/nginx.c:415",
            ],
        )),
        alloc_context: CallingContext::from_locations(
            &frames,
            [
                "OPENSSL/crypto/mem.c:312",
                "OPENSSL/crypto/bn/bn_ctx.c:217",
                "NGINX/http/ngx_http_request.c:577",
            ],
        ),
        ctx_id: CtxId::from_index(0),
        at: VirtInstant::BOOT,
    };
    c.bench_function("report_render_figure6", |b| {
        b.iter(|| report.render(&frames));
    });
}

criterion_group!(benches, bench_canary, bench_evidence, bench_report);
criterion_main!(benches);
