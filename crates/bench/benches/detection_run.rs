//! End-to-end throughput: one full effectiveness execution per iteration
//! (the unit Table II repeats 1,000 times) and one scaled performance
//! run (the unit Figure 7 measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csod_core::CsodConfig;
use workloads::{BuggyApp, PerfApp, ToolSpec, TraceRunner};

fn bench_effectiveness_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("effectiveness_execution");
    group.sample_size(20);
    for name in ["zziplib", "memcached", "libdwarf"] {
        let app = BuggyApp::by_name(name).expect("known app");
        let registry = app.registry();
        let trace = app.trace(42);
        group.bench_with_input(BenchmarkId::from_parameter(app.name), &(), |b, ()| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut config = CsodConfig::with_seed(seed);
                config.evidence_path = None;
                TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied())
            });
        });
    }
    group.finish();
}

fn bench_perf_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_execution");
    group.sample_size(10);
    for name in ["streamcluster", "freqmine"] {
        let mut app = PerfApp::by_name(name).expect("known app");
        // Trimmed base work keeps the benchmark itself quick.
        app.base_accesses /= 10;
        app.base_compute /= 10;
        let registry = app.registry();
        group.bench_with_input(BenchmarkId::from_parameter(app.name), &(), |b, ()| {
            b.iter(|| app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effectiveness_run, bench_perf_run);
criterion_main!(benches);
