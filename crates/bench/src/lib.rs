//! # csod-bench — experiment harnesses
//!
//! One binary per table and figure of the paper's evaluation (Section V),
//! plus ablation studies and Criterion microbenchmarks. See DESIGN.md for
//! the per-experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.

#![warn(missing_docs)]
#![warn(clippy::perf)]

use std::num::NonZeroUsize;
use std::thread;

/// Formats a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(12);
        if i == 0 {
            out.push_str(&format!("{cell:<width$}"));
        } else {
            out.push_str(&format!("  {cell:>width$}"));
        }
    }
    out
}

/// Prints a titled rule line.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses `--runs N` (or the `CSOD_RUNS` env var), defaulting to
/// `default`.
pub fn runs_arg(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--runs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    std::env::var("CSOD_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Maps `f` over `0..n` on all available cores and collects the results
/// in index order.
pub fn parallel_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers.max(1)).max(1);
    thread::scope(|scope| {
        for (w, slice) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + i));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i), vec![0]);
    }

    #[test]
    fn row_is_aligned() {
        let r = row(&["a".into(), "1".into()], &[8, 4]);
        assert!(r.starts_with("a       "));
        assert!(r.ends_with("   1"));
    }
}
