//! Priors on/off comparison: what the static pre-analysis buys the
//! sampler on the buggy-application suite.
//!
//! For each application, runs CSOD with the default schedule and with
//! `csod-analyze` priors over the same executions and reports detection
//! rate, installs spent on proven-safe contexts, watch slots saved
//! outright, and the soundness counter (must stay 0).
//!
//! ```bash
//! cargo run --release -p csod-bench --bin priors [-- --runs N]
//! ```

use csod_analyze::analyze;
use csod_bench::{header, row, runs_arg};
use csod_core::{CsodConfig, RiskClass};
use workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() {
    let runs = runs_arg(20);
    header("Static priors: default schedule vs analyze-then-run");
    let widths = [14, 9, 9, 12, 12, 9, 7];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "det(off)".into(),
                "det(on)".into(),
                "safeWT(off)".into(),
                "safeWT(on)".into(),
                "skips".into(),
                "sound".into(),
            ],
            &widths
        )
    );

    let mut total_off = 0u64;
    let mut total_on = 0u64;
    for app in BuggyApp::all() {
        let registry = app.registry();
        let trace = app.trace(42);
        let priors = analyze(&registry, &trace).to_priors(&registry);

        let mut det = [0u64; 2];
        let mut safe_installs = [0u64; 2];
        let mut skips = 0u64;
        let mut violations = 0u64;
        for seed in 0..runs as u64 {
            for (i, primed) in [false, true].into_iter().enumerate() {
                let mut config = if primed {
                    CsodConfig::with_priors(priors.clone())
                } else {
                    CsodConfig::default()
                };
                config.seed = seed;
                let outcome = TraceRunner::new(&registry, ToolSpec::Csod(config))
                    .run(trace.iter().copied());
                det[i] += u64::from(outcome.watchpoint_detected);
                // Attribute installs to the analyzer's verdicts in both
                // modes so the columns are comparable.
                safe_installs[i] += outcome
                    .context_watch_counts
                    .iter()
                    .filter(|(key, _)| priors.class_of(*key) == Some(RiskClass::ProvenSafe))
                    .map(|(_, count)| count)
                    .sum::<u64>();
                if primed {
                    skips += outcome.prior_availability_skips;
                    violations += outcome.proven_safe_overflows;
                }
            }
        }
        total_off += safe_installs[0];
        total_on += safe_installs[1];
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    format!("{}/{runs}", det[0]),
                    format!("{}/{runs}", det[1]),
                    safe_installs[0].to_string(),
                    safe_installs[1].to_string(),
                    skips.to_string(),
                    if violations == 0 { "ok".into() } else { format!("{violations}!") },
                ],
                &widths
            )
        );
    }
    let saved = if total_off > 0 {
        100.0 * (1.0 - total_on as f64 / total_off as f64)
    } else {
        0.0
    };
    println!(
        "\ninstalls on proven-safe contexts: {total_off} -> {total_on} ({saved:.1}% saved)"
    );
    println!("a nonzero 'sound' column would mean the static analysis is broken.");
}
