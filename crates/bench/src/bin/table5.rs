//! Table V: memory usage — peak resident memory of the unprotected run,
//! CSOD (evidence mode, as in the paper), and ASan with minimal
//! redzones, plus percentages relative to the original.

use asan_sim::AsanConfig;
use csod_bench::{header, row};
use csod_core::CsodConfig;
use workloads::{PerfApp, ToolSpec};

/// CSOD's allocator-independent runtime footprint: the context hash
/// table, per-object records and the runtime itself. Modelled as a fixed
/// 16 KiB plus a small per-context cost, matching the magnitudes the
/// paper reports for small-footprint applications (Aget: 7 -> 23 Kb).
fn csod_runtime_kb(contexts: usize) -> u64 {
    16 + (contexts as u64) / 50
}

fn main() {
    header("Table V: peak memory usage (KiB, % of original)");
    let widths = [14, 10, 10, 7, 10, 7];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "Original".into(),
                "CSOD".into(),
                "%".into(),
                "ASan".into(),
                "%".into(),
            ],
            &widths
        )
    );
    let mut totals = [0u64; 3];
    for app in PerfApp::all() {
        let registry = app.registry();
        let base = app.run(&registry, ToolSpec::Baseline, 1);
        let csod = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 1);
        let asan = app.run(
            &registry,
            ToolSpec::Asan {
                config: AsanConfig {
                    redzone_size: 16,
                    quarantine_bytes: 256 << 10,
                },
                instrumented: app.asan_instrumented(),
            },
            1,
        );
        let original_kb = base.peak_heap_kb.max(1);
        let csod_kb = csod.peak_heap_kb + csod_runtime_kb(app.contexts);
        let asan_kb = asan.peak_heap_kb + asan.tool_extra_kb;
        totals[0] += original_kb;
        totals[1] += csod_kb;
        totals[2] += asan_kb;
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    original_kb.to_string(),
                    csod_kb.to_string(),
                    format!("{}", 100 * csod_kb / original_kb),
                    asan_kb.to_string(),
                    format!("{}", 100 * asan_kb / original_kb),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "Total".into(),
                totals[0].to_string(),
                totals[1].to_string(),
                format!("{}", 100 * totals[1] / totals[0]),
                totals[2].to_string(),
                format!("{}", 100 * totals[2] / totals[0]),
            ],
            &widths
        )
    );
    println!("\npaper totals: original 13,439 Kb; CSOD 14,167 Kb (105%); ASan 17,386 Kb (143%)");
}
