//! Tracked tracing-overhead benchmark: the cost of the always-on event
//! tracer on the allocation fast path.
//!
//! One binary measures both states through the *runtime* toggle
//! (`config.trace.events`): ns/alloc and ns/free through the full
//! runtime with event emission on versus off, plus the drain cost per
//! event. The JSON also records whether the `trace-off` feature compiled
//! the tracer out entirely (`trace_compiled_off`), so the CI leg that
//! builds with the feature can assert the stub is truly free.
//!
//! ```bash
//! cargo run --release -p csod-bench --bin tracing            # writes BENCH_tracing.json
//! cargo run --release -p csod-bench --bin tracing -- --check
//! ```
//!
//! `--check` re-runs the measurement and exits non-zero when tracing-on
//! costs more than [`OVERHEAD_LIMIT`] over tracing-off on either the
//! alloc or the free path — the observability perf gate. It needs no
//! baseline file: the invariant is a ratio between two fresh
//! measurements of the same binary on the same host.

use csod_core::{Csod, CsodConfig};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{Machine, ThreadId};
use std::sync::Arc;
use std::time::Instant;

/// Contexts cycled through, mirroring the fastpath bench.
const CONTEXTS: usize = 64;
/// Live objects per timed round.
const ROUND_ALLOCS: usize = 8_192;
/// Timed rounds (the fastest is reported, Criterion-style).
const ROUNDS: usize = 12;
/// Whole-measurement attempts; ratios keep their best attempt.
const ATTEMPTS: usize = 3;
/// Allowed tracing-on cost over tracing-off before `--check` fails
/// (the issue's 10% observability budget).
const OVERHEAD_LIMIT: f64 = 1.10;

fn contexts(frames: &FrameTable) -> Vec<(ContextKey, CallingContext)> {
    (0..CONTEXTS)
        .map(|i| {
            let ctx = CallingContext::from_locations(
                frames,
                [format!("hot_{i}.c:1").as_str(), "driver.c:7", "main.c:1"],
            );
            (ContextKey::new(ctx.first_level().expect("non-empty"), 0x40), ctx)
        })
        .collect()
}

/// ns/alloc and ns/free through the full runtime with event emission
/// toggled by `trace_on`, plus the events drained per round (0 when
/// emission is off either way).
fn runtime_pair(trace_on: bool) -> (f64, f64, u64) {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).expect("fresh heap");
    let mut config = CsodConfig::default();
    config.trace.events = trace_on;
    let mut csod = Csod::new(config, Arc::clone(&frames));
    let sites = contexts(&frames);

    let mut best_alloc = f64::INFINITY;
    let mut best_free = f64::INFINITY;
    let mut drained = 0u64;
    let mut ptrs = Vec::with_capacity(ROUND_ALLOCS);
    // One untimed warm-up round settles first-sight interning, the
    // initial flurry of watch installs, and burst throttling.
    for round in 0..=ROUNDS {
        let start = Instant::now();
        for i in 0..ROUND_ALLOCS {
            let (key, ctx) = &sites[i % CONTEXTS];
            let p = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, 16, *key, ctx)
                .expect("heap has room");
            ptrs.push(p);
        }
        let alloc_ns = start.elapsed().as_nanos() as f64 / ROUND_ALLOCS as f64;
        let start = Instant::now();
        for p in ptrs.drain(..) {
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, p)
                .expect("was allocated");
        }
        let free_ns = start.elapsed().as_nanos() as f64 / ROUND_ALLOCS as f64;
        if round > 0 {
            best_alloc = best_alloc.min(alloc_ns);
            best_free = best_free.min(free_ns);
        }
        // Drain between rounds, like a metrics scraper would, so the
        // rings never sit saturated for the whole bench.
        let stream = csod.drain_trace();
        drained += stream.events.len() as u64;
    }
    (best_alloc, best_free, drained / (ROUNDS as u64 + 1))
}

struct Results {
    metrics: Vec<(&'static str, f64)>,
}

impl Results {
    fn get(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {key} missing"))
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.2}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn measure() -> Results {
    let compiled_off = csod_trace::trace_compiled_off();
    // The on/off runs execute at different moments, so frequency drift
    // or a background burst on one side skews the ratio in either
    // direction. Each attempt runs the two modes back to back and forms
    // its own ratio; the reported ratio is the best attempt's, because
    // only a pair measured under comparable conditions says anything
    // about the tracer. Minima of the raw ns across attempts would not:
    // one lucky tracing-off round in attempt 1 against a routine
    // tracing-on round in attempt 3 manufactures phantom overhead.
    let (mut on_alloc, mut on_free) = (f64::INFINITY, f64::INFINITY);
    let (mut off_alloc, mut off_free) = (f64::INFINITY, f64::INFINITY);
    let (mut alloc_ratio, mut free_ratio) = (f64::INFINITY, f64::INFINITY);
    let mut events = 0;
    for attempt in 1..=ATTEMPTS {
        eprintln!("tracing bench: attempt {attempt}/{ATTEMPTS}, event emission on...");
        let (a_on, f_on, e) = runtime_pair(true);
        events = e;
        eprintln!("tracing bench: attempt {attempt}/{ATTEMPTS}, event emission off...");
        let (a_off, f_off, _) = runtime_pair(false);
        alloc_ratio = alloc_ratio.min(a_on / a_off);
        free_ratio = free_ratio.min(f_on / f_off);
        on_alloc = on_alloc.min(a_on);
        on_free = on_free.min(f_on);
        off_alloc = off_alloc.min(a_off);
        off_free = off_free.min(f_off);
    }
    Results {
        metrics: vec![
            ("trace_compiled_off", f64::from(u8::from(compiled_off))),
            ("traced_ns_per_alloc", on_alloc),
            ("traced_ns_per_free", on_free),
            ("untraced_ns_per_alloc", off_alloc),
            ("untraced_ns_per_free", off_free),
            ("alloc_overhead_ratio", alloc_ratio),
            ("free_overhead_ratio", free_ratio),
            ("events_per_round", events as f64),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut results = measure();
    println!("\n=== event tracing overhead ===");
    for (k, v) in &results.metrics {
        println!("{k:>36}  {v:10.2}");
    }

    let mut failed = false;
    if args.iter().any(|a| a == "--check") {
        let keys = ["alloc_overhead_ratio", "free_overhead_ratio"];
        // The ratio is noisy in both directions on shared CI hardware;
        // a single attempt under the limit proves the invariant, so
        // re-measure (twice at most) keeping each ratio's best.
        for retry in 0..=2 {
            if keys.iter().all(|k| results.get(k) <= OVERHEAD_LIMIT) || retry == 2 {
                break;
            }
            eprintln!("tracing bench: over budget, re-measuring (noisy host?)...");
            let again = measure();
            for (k, v) in &mut results.metrics {
                if keys.contains(k) {
                    *v = v.min(again.get(k));
                }
            }
        }
        for key in keys {
            let ratio = results.get(key);
            let verdict = if ratio > OVERHEAD_LIMIT {
                failed = true;
                "OVER BUDGET"
            } else {
                "ok"
            };
            println!("check {key}: {ratio:.3} vs limit {OVERHEAD_LIMIT:.2} ({verdict})");
        }
        if !failed {
            println!("tracing overhead within budget");
        }
    }
    if !args.iter().any(|a| a == "--check") || args.iter().any(|a| a == "--out") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|p| args.get(p + 1).cloned())
            .unwrap_or_else(|| "BENCH_tracing.json".into());
        std::fs::write(&out, results.to_json()).expect("baseline written");
        println!("wrote {out}");
    }
    if failed {
        eprintln!("perf smoke FAILED: tracing costs more than {OVERHEAD_LIMIT}x on the fast path");
        std::process::exit(1);
    }
}
