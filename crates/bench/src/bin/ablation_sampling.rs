//! Ablation: sensitivity of the detection probability to the sampling
//! constants of Section III-B2.
//!
//! The paper fixes the constants at compile time ("these numbers
//! generally work well"); this harness sweeps each one on the two
//! hardest workloads (Heartbleed and MySQL, near-FIFO policy) to show
//! where the defaults sit on the curve.

use csod_bench::{header, parallel_map, row, runs_arg};
use csod_core::{CsodConfig, ReplacementPolicy, SamplingParams};
use csod_rng::PPM_SCALE;
use workloads::{BuggyApp, ToolSpec, TraceRunner};

fn detection_rate(app: &BuggyApp, params: SamplingParams, runs: usize) -> f64 {
    let registry = app.registry();
    let trace = app.trace(42);
    let detections: usize = parallel_map(runs, |seed| {
        let mut config = CsodConfig::with_policy(ReplacementPolicy::NearFifo);
        config.sampling = params;
        config.seed = seed as u64;
        let outcome =
            TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied());
        usize::from(outcome.watchpoint_detected)
    })
    .into_iter()
    .sum();
    detections as f64 / runs as f64
}

fn main() {
    let runs = runs_arg(200);
    let apps: Vec<BuggyApp> = ["heartbleed", "mysql"]
        .iter()
        .map(|n| BuggyApp::by_name(n).expect("known app"))
        .collect();
    let widths = [26, 12, 12];

    header(&format!(
        "Ablation: initial probability sweep ({runs} runs, near-FIFO)"
    ));
    println!(
        "{}",
        row(
            &["initial prob".into(), "Heartbleed".into(), "MySQL".into()],
            &widths
        )
    );
    for pct in [10u32, 25, 50, 75, 100] {
        let params = SamplingParams {
            initial_ppm: PPM_SCALE / 100 * pct,
            ..SamplingParams::default()
        };
        let cells: Vec<String> = apps
            .iter()
            .map(|a| format!("{:.1}%", 100.0 * detection_rate(a, params, runs)))
            .collect();
        println!(
            "{}",
            row(
                &[
                    format!("{pct}%{}", if pct == 50 { " (paper)" } else { "" }),
                    cells[0].clone(),
                    cells[1].clone()
                ],
                &widths
            )
        );
    }

    header("Ablation: per-allocation degradation sweep");
    println!(
        "{}",
        row(
            &["degradation/alloc".into(), "Heartbleed".into(), "MySQL".into()],
            &widths
        )
    );
    for (label, ppm) in [("0", 0u32), ("0.001% (paper)", 10), ("0.01%", 100), ("0.1%", 1_000)] {
        let params = SamplingParams {
            degrade_per_alloc_ppm: ppm,
            ..SamplingParams::default()
        };
        let cells: Vec<String> = apps
            .iter()
            .map(|a| format!("{:.1}%", 100.0 * detection_rate(a, params, runs)))
            .collect();
        println!(
            "{}",
            row(&[label.into(), cells[0].clone(), cells[1].clone()], &widths)
        );
    }

    header("Ablation: probability floor sweep");
    println!(
        "{}",
        row(
            &["floor".into(), "Heartbleed".into(), "MySQL".into()],
            &widths
        )
    );
    for (label, ppm) in [("0.0001%", 1u32), ("0.001% (paper)", 10), ("0.1%", 1_000), ("1%", 10_000)] {
        let params = SamplingParams {
            floor_ppm: ppm,
            ..SamplingParams::default()
        };
        let cells: Vec<String> = apps
            .iter()
            .map(|a| format!("{:.1}%", 100.0 * detection_rate(a, params, runs)))
            .collect();
        println!(
            "{}",
            row(&[label.into(), cells[0].clone(), cells[1].clone()], &widths)
        );
    }

    header("Ablation: burst threshold sweep (allocations per 10s window)");
    println!(
        "{}",
        row(
            &["burst threshold".into(), "Heartbleed".into(), "MySQL".into()],
            &widths
        )
    );
    for (label, threshold) in [("500", 500u32), ("5000 (paper)", 5_000), ("50000", 50_000)] {
        let params = SamplingParams {
            burst_threshold: threshold,
            ..SamplingParams::default()
        };
        let cells: Vec<String> = apps
            .iter()
            .map(|a| format!("{:.1}%", 100.0 * detection_rate(a, params, runs)))
            .collect();
        println!(
            "{}",
            row(&[label.into(), cells[0].clone(), cells[1].clone()], &widths)
        );
    }
}
