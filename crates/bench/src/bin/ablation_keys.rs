//! Ablation: context-key collisions (Section III-A1).
//!
//! CSOD identifies a calling context by the cheap pair *(first-level
//! call site, stack offset)*. Two different full contexts can collide on
//! that pair; the paper argues this "will not affect the detection
//! correctness … However, CSOD may treat two different contexts as the
//! same, which may affect the sampling probability." This harness builds
//! a workload where a hot context and the buggy context share one key
//! and measures the detection-probability damage, plus verifies that the
//! failure report still shows the correct overflow site.

use csod_bench::{header, parallel_map, row, runs_arg};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use csod_rng::Arc4Random;
use csod_core::SamplingUnit;
use sim_machine::VirtInstant;

/// Detection-probability proxy: the probability the sampler assigns the
/// bug context's decisive allocation after `hot_allocs` allocations that
/// either share its key (collision) or use their own key (no collision).
fn decisive_probability(collide: bool, hot_allocs: u64, seed: u64) -> f64 {
    let frames = FrameTable::new();
    let hot_ctx = CallingContext::from_locations(&frames, ["wrapper.c:10", "hot_caller.c:5"]);
    let bug_ctx = CallingContext::from_locations(&frames, ["wrapper.c:10", "buggy_caller.c:9"]);
    // Both contexts call malloc through the same wrapper statement; with
    // identical stack offsets the cheap keys collide.
    let site = hot_ctx.first_level().expect("non-empty");
    let hot_key = ContextKey::new(site, 0x40);
    let bug_key = if collide {
        hot_key
    } else {
        ContextKey::new(site, 0x80)
    };

    let sampling = SamplingUnit::new(Default::default());
    let mut rng = Arc4Random::from_seed(seed, 0);
    for _ in 0..hot_allocs {
        let d = sampling.on_allocation(
            hot_key,
            VirtInstant::BOOT,
            &mut rng,
            &hot_ctx,
            |_| false,
        );
        if d.wants_watch {
            sampling.on_watched(hot_key);
        }
    }
    let decision = sampling.on_allocation(
        bug_key,
        VirtInstant::BOOT,
        &mut rng,
        &bug_ctx,
        |_| false,
    );
    f64::from(decision.probability_ppm) / 1e6
}

fn main() {
    let runs = runs_arg(100);
    header("Ablation: (first-level site, stack offset) key collisions");
    let widths = [22, 14, 14, 10];
    println!(
        "{}",
        row(
            &[
                "hot-context allocs".into(),
                "no collision".into(),
                "collision".into(),
                "damage".into(),
            ],
            &widths
        )
    );
    for hot_allocs in [0u64, 10, 100, 1_000, 10_000] {
        let avg = |collide: bool| {
            parallel_map(runs, |seed| decisive_probability(collide, hot_allocs, seed as u64))
                .iter()
                .sum::<f64>()
                / runs as f64
        };
        let clean = avg(false);
        let collided = avg(true);
        println!(
            "{}",
            row(
                &[
                    hot_allocs.to_string(),
                    format!("{:.2}%", clean * 100.0),
                    format!("{:.2}%", collided * 100.0),
                    format!("{:.1}x", clean / collided.max(1e-9)),
                ],
                &widths
            )
        );
    }
    println!("\nA collision makes the buggy context inherit the hot context's");
    println!("degraded/halved probability instead of starting at 50% — lower");
    println!("detection probability, but never a wrong or false report: the");
    println!("failure context is captured at trap time (Section III-A1).");
}
