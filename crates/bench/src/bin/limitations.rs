//! Section VI, executable: the bug classes each tool can and cannot see.
//!
//! The paper is explicit about CSOD's blind spots — non-continuous
//! overflows that skip the watched boundary word, stack/global
//! variables, over-reads under evidence-only detection — and about where
//! ASan's redzones do better (any stride within the redzone) and where
//! they do not (beyond the redzone). Each cell of the table below is an
//! actual run of the scenario against the real tool implementations.

use asan_sim::{Asan, AsanConfig};
use csod_bench::{header, row};
use csod_core::{Csod, CsodConfig};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{AccessKind, Machine, SiteToken, ThreadId, VirtAddr};
use std::sync::Arc;

struct Scenario {
    name: &'static str,
    paper_expectation: &'static str,
    csod: bool,
    asan: bool,
}

fn main() {
    header("Section VI: what each tool detects (live runs)");
    let widths = [34, 8, 8, 30];
    println!(
        "{}",
        row(
            &[
                "Scenario".into(),
                "CSOD".into(),
                "ASan".into(),
                "paper expectation".into(),
            ],
            &widths
        )
    );

    let mut results: Vec<Scenario> = Vec::new();

    // --- 1. Continuous one-word heap overflow (the design target). ----
    {
        let (csod, asan) = heap_scenario(|m, tid, obj_end| {
            let _ = m.app_access(tid, obj_end, 8, AccessKind::Write);
        });
        results.push(Scenario {
            name: "continuous heap over-write",
            paper_expectation: "both detect",
            csod,
            asan,
        });
    }

    // --- 2. Continuous heap over-read. ---------------------------------
    {
        let (csod, asan) = heap_scenario(|m, tid, obj_end| {
            let _ = m.app_access(tid, obj_end, 8, AccessKind::Read);
        });
        results.push(Scenario {
            name: "continuous heap over-read",
            paper_expectation: "both detect",
            csod,
            asan,
        });
    }

    // --- 3. Non-continuous, skips boundary, lands in redzone. ----------
    {
        let (csod, asan) = heap_scenario(|m, tid, obj_end| {
            // Skip the watched word; +8 is still inside ASan's 16-byte
            // redzone.
            let _ = m.app_access(tid, obj_end + 8, 4, AccessKind::Write);
        });
        results.push(Scenario {
            name: "strided overflow within redzone",
            paper_expectation: "ASan only",
            csod,
            asan,
        });
    }

    // --- 4. Non-continuous, far beyond the redzone. ---------------------
    {
        let (csod, asan) = heap_scenario(|m, tid, obj_end| {
            let _ = m.app_access(tid, obj_end + 4096, 8, AccessKind::Write);
        });
        results.push(Scenario {
            name: "far non-continuous overflow",
            paper_expectation: "neither detects",
            csod,
            asan,
        });
    }

    // --- 5. Global-variable overflow. -----------------------------------
    {
        // CSOD interposes only the heap: it never even sees globals.
        let csod = false;
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let _ = &mut heap;
        let data = VirtAddr::new(0x5_0000_0000);
        machine.map_region(data, 4096, "data").unwrap();
        let mut asan_tool = Asan::new(AsanConfig::default());
        asan_tool.instrument_module("app");
        let global = data + 64;
        asan_tool.add_global(global, 40);
        asan_tool
            .access(
                &mut machine,
                ThreadId::MAIN,
                global + 40,
                4,
                AccessKind::Write,
                "app",
                SiteToken(0),
            )
            .unwrap();
        results.push(Scenario {
            name: "global-variable overflow",
            paper_expectation: "ASan only",
            csod,
            asan: asan_tool.detected(),
        });
    }

    // --- 6. Stack-variable overflow. -------------------------------------
    {
        // Same story as globals: CSOD interposes only the heap; ASan's
        // instrumentation redzones stack frames exactly like globals
        // (modelled with the same mechanism).
        let mut machine = Machine::new();
        let stack = VirtAddr::new(0x7ffd_0000_0000);
        machine.map_region(stack, 8192, "stack").unwrap();
        let mut asan_tool = Asan::new(AsanConfig::default());
        asan_tool.instrument_module("app");
        let local = stack + 256;
        asan_tool.add_global(local, 64); // frame redzoning = same layout
        asan_tool
            .access(
                &mut machine,
                ThreadId::MAIN,
                local + 64,
                8,
                AccessKind::Write,
                "app",
                SiteToken(1),
            )
            .unwrap();
        results.push(Scenario {
            name: "stack-variable overflow",
            paper_expectation: "ASan only",
            csod: false,
            asan: asan_tool.detected(),
        });
    }

    for s in &results {
        println!(
            "{}",
            row(
                &[
                    s.name.into(),
                    yn(s.csod),
                    yn(s.asan),
                    s.paper_expectation.into(),
                ],
                &widths
            )
        );
    }
    println!("\n(the CSOD column uses a watched object — its best case; sampling");
    println!("means real detection is probabilistic on top of these capabilities)");
}

fn yn(b: bool) -> String {
    if b { "yes".into() } else { "no".into() }
}

/// Runs one heap scenario: a 64-byte object, guaranteed watched under
/// CSOD (first allocation) and redzoned under ASan; `act` performs the
/// accesses given (machine, thread, first address past the object).
fn heap_scenario(
    act: impl Fn(&mut Machine, ThreadId, VirtAddr),
) -> (bool, bool) {
    // CSOD.
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
    let ctx = CallingContext::from_locations(&frames, ["obj.c:1", "main.c:1"]);
    let key = ContextKey::new(frames.intern("obj.c:1"), 0x40);
    let p = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &ctx)
        .unwrap();
    assert!(csod.is_watched(p), "first object is always watched");
    machine.set_current_site(ThreadId::MAIN, SiteToken(0));
    act(&mut machine, ThreadId::MAIN, p + 64);
    csod.poll(&mut machine);
    csod.finish(&mut machine);
    let csod_detected = csod.detected();

    // ASan.
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let mut asan = Asan::new(AsanConfig::default());
    asan.instrument_module("app");
    let q = asan.malloc(&mut machine, &mut heap, 64).unwrap();
    let end = q + 64;
    // Perform the same access pattern; the scenario calls raw machine
    // accesses, so replay them through asan.access by interposing here.
    let mut recorded: Vec<(VirtAddr, u64, AccessKind)> = Vec::new();
    {
        let mut rec_machine = Machine::new();
        rec_machine.map_region(VirtAddr::new(0x100_0000), 1 << 20, "rec").unwrap();
        // Record against a scratch machine with the same offsets.
        let scratch_end = VirtAddr::new(0x100_0000) + 64;
        rec_machine.recorder_enable(64);
        act(&mut rec_machine, ThreadId::MAIN, scratch_end);
        if let Some(recorder) = rec_machine.recorder() {
            for (_, event) in recorder.events() {
                if let sim_machine::LogEvent::Access { addr, len, kind, .. } = event {
                    let offset = *addr - VirtAddr::new(0x100_0000);
                    recorded.push((end - 64 + offset, *len, *kind));
                }
            }
        }
    }
    for (addr, len, kind) in recorded {
        let _ = asan.access(&mut machine, ThreadId::MAIN, addr, len, kind, "app", SiteToken(0));
    }
    (csod_detected, asan.detected())
}
