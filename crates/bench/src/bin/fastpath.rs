//! Tracked fast-path benchmark: ns/alloc and ns/free through the full
//! runtime, plus a 16-thread contended run against the shared sampling
//! unit, comparing the per-thread decision cache (the default,
//! `refresh = 64`) against the pre-cache behaviour (`refresh = 1`, every
//! decision goes to the striped context table).
//!
//! ```bash
//! cargo run --release -p csod-bench --bin fastpath            # writes BENCH_fastpath.json
//! cargo run --release -p csod-bench --bin fastpath -- --check BENCH_fastpath.json
//! ```
//!
//! The default mode writes `BENCH_fastpath.json` (flat keys, one number
//! each) to the current directory; `--check <baseline>` re-runs the
//! measurements and exits non-zero when any tracked cached-mode metric
//! regressed to more than twice the committed baseline — the CI
//! perf-smoke gate.

use csod_core::{Csod, CsodConfig, DecisionCache, SamplingUnit};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use csod_rng::Arc4Random;
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{Machine, ThreadId, VirtInstant};
use std::sync::Arc;
use std::time::Instant;

/// Contexts cycled through by every scenario: enough to exercise the
/// probe sequences, few enough that each stays hot.
const CONTEXTS: usize = 64;
/// Live objects per timed round of the runtime scenario.
const ROUND_ALLOCS: usize = 8_192;
/// Timed rounds (the fastest is reported, Criterion-style).
const ROUNDS: usize = 12;
/// OS threads in the contended scenario.
const THREADS: usize = 16;
/// Sampling decisions per thread in the contended scenario.
const CONTENDED_OPS: usize = 200_000;
/// Allowed slowdown versus the committed baseline before `--check` fails.
const REGRESSION_FACTOR: f64 = 2.0;

fn contexts(frames: &FrameTable) -> Vec<(ContextKey, CallingContext)> {
    (0..CONTEXTS)
        .map(|i| {
            let ctx = CallingContext::from_locations(
                frames,
                [format!("hot_{i}.c:1").as_str(), "driver.c:7", "main.c:1"],
            );
            (ContextKey::new(ctx.first_level().expect("non-empty"), 0x40), ctx)
        })
        .collect()
}

/// ns/alloc and ns/free through the full `Csod` runtime (malloc
/// interposition, canary layout, sampling, watch installs).
fn runtime_pair(refresh: u32) -> (f64, f64) {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).expect("fresh heap");
    let mut config = CsodConfig::default();
    config.fast_path.decision_cache_refresh = refresh;
    let mut csod = Csod::new(config, Arc::clone(&frames));
    let sites = contexts(&frames);

    let mut best_alloc = f64::INFINITY;
    let mut best_free = f64::INFINITY;
    let mut ptrs = Vec::with_capacity(ROUND_ALLOCS);
    // One untimed warm-up round settles first-sight interning, the
    // initial flurry of watch installs, and burst throttling.
    for round in 0..=ROUNDS {
        let start = Instant::now();
        for i in 0..ROUND_ALLOCS {
            let (key, ctx) = &sites[i % CONTEXTS];
            let p = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, 16, *key, ctx)
                .expect("heap has room");
            ptrs.push(p);
        }
        let alloc_ns = start.elapsed().as_nanos() as f64 / ROUND_ALLOCS as f64;
        let start = Instant::now();
        for p in ptrs.drain(..) {
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, p)
                .expect("was allocated");
        }
        let free_ns = start.elapsed().as_nanos() as f64 / ROUND_ALLOCS as f64;
        if round > 0 {
            best_alloc = best_alloc.min(alloc_ns);
            best_free = best_free.min(free_ns);
        }
    }
    (best_alloc, best_free)
}

/// ns per sampling decision with 16 threads hammering one shared
/// `SamplingUnit`, each through its own per-thread decision cache.
fn contended_ns(refresh: u32) -> f64 {
    let frames = FrameTable::new();
    let unit = SamplingUnit::new(CsodConfig::default().sampling);
    let sites = contexts(&frames);
    // Untimed warm-up drives every context past first sight and into a
    // steady probability so the timed section measures the fast path.
    {
        let mut rng = Arc4Random::from_seed(7, u64::MAX);
        let mut cache = DecisionCache::new(refresh);
        for _ in 0..200 {
            for (key, ctx) in &sites {
                cache.on_allocation(&unit, *key, VirtInstant::BOOT, &mut rng, ctx, |_| false);
            }
        }
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let unit = &unit;
            let sites = &sites;
            scope.spawn(move || {
                let mut rng = Arc4Random::from_seed(7, t as u64);
                let mut cache = DecisionCache::new(refresh);
                for i in 0..CONTENDED_OPS {
                    let (key, ctx) = &sites[(i + t) % CONTEXTS];
                    let d = cache.on_allocation(
                        &unit,
                        *key,
                        VirtInstant::BOOT,
                        &mut rng,
                        ctx,
                        |_| false,
                    );
                    std::hint::black_box(d.wants_watch);
                }
                cache.flush(unit);
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (THREADS * CONTENDED_OPS) as f64
}

struct Results {
    metrics: Vec<(&'static str, f64)>,
}

impl Results {
    fn get(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {key} missing"))
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.2}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn measure() -> Results {
    let cached = CsodConfig::default().fast_path.decision_cache_refresh;
    eprintln!("fastpath bench: runtime malloc/free, cached (refresh={cached})...");
    let (ca, cf) = runtime_pair(cached);
    eprintln!("fastpath bench: runtime malloc/free, uncached (refresh=1)...");
    let (ua, uf) = runtime_pair(1);
    eprintln!("fastpath bench: contended {THREADS}-thread sampling, cached...");
    let cc = contended_ns(cached);
    eprintln!("fastpath bench: contended {THREADS}-thread sampling, uncached...");
    let uc = contended_ns(1);
    Results {
        metrics: vec![
            ("threads_contended", THREADS as f64),
            ("cached_refresh", f64::from(cached)),
            ("uncontended_cached_ns_per_alloc", ca),
            ("uncontended_cached_ns_per_free", cf),
            ("uncontended_uncached_ns_per_alloc", ua),
            ("uncontended_uncached_ns_per_free", uf),
            ("contended_cached_ns_per_alloc", cc),
            ("contended_uncached_ns_per_alloc", uc),
            ("contended_speedup", uc / cc),
        ],
    }
}

/// Pulls `"key": <number>` out of the flat baseline JSON — the file is
/// written by this binary, so a full parser would be overkill.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = measure();
    println!("\n=== allocation fast path ===");
    for (k, v) in &results.metrics {
        println!("{k:>36}  {v:10.2}");
    }

    let check_pos = args.iter().position(|a| a == "--check");
    let mut failed = false;
    if let Some(pos) = check_pos {
        let baseline_path = args.get(pos + 1).map_or("BENCH_fastpath.json", |s| s.as_str());
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        for key in [
            "uncontended_cached_ns_per_alloc",
            "uncontended_cached_ns_per_free",
            "contended_cached_ns_per_alloc",
        ] {
            let base = extract(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks {key}"));
            let fresh = results.get(key);
            let verdict = if fresh > base * REGRESSION_FACTOR {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("check {key}: {fresh:.2} vs baseline {base:.2} ({verdict})");
        }
        if !failed {
            println!("perf smoke passed");
        }
    }
    // `--out` combines with `--check`: CI gates and refreshes the
    // artifact in one run. Without either flag the default path is
    // written, preserving the original baseline-refresh behaviour.
    if check_pos.is_none() || args.iter().any(|a| a == "--out") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|p| args.get(p + 1).cloned())
            .unwrap_or_else(|| "BENCH_fastpath.json".into());
        std::fs::write(&out, results.to_json()).expect("baseline written");
        println!("wrote {out}");
    }
    if failed {
        eprintln!("perf smoke FAILED: cached fast path slower than {REGRESSION_FACTOR}x baseline");
        std::process::exit(1);
    }
}
