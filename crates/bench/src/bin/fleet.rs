//! Tracked fleet-aggregation benchmark: JSONL ingest throughput and
//! crash-recovery latency of the durable priors store.
//!
//! ```bash
//! cargo run --release -p csod-bench --bin fleet            # writes BENCH_fleet.json
//! cargo run --release -p csod-bench --bin fleet -- --check BENCH_fleet.json
//! ```
//!
//! The default mode writes `BENCH_fleet.json` (flat keys, one number
//! each) to the current directory; `--check <baseline>` re-runs the
//! measurements and exits non-zero when any tracked metric regressed to
//! more than twice the committed baseline — the CI perf-smoke gate.

use csod_fleet::{FleetPriors, Ingestor, PriorsStore};
use std::path::PathBuf;
use std::time::Instant;

/// Lines per synthesized stream.
const STREAM_LINES: usize = 40_000;
/// Distinct contexts the stream cycles through.
const CONTEXTS: usize = 256;
/// Contexts in the recovery-bench checkpoint.
const CKPT_CONTEXTS: usize = 5_000;
/// WAL records replayed on top of the checkpoint at recovery.
const WAL_RECORDS: usize = 10_000;
/// Timed rounds (the fastest is reported, Criterion-style).
const ROUNDS: usize = 8;
/// Allowed slowdown versus the committed baseline before `--check` fails.
const REGRESSION_FACTOR: f64 = 2.0;

fn report_line(i: usize) -> String {
    let ctx = i % CONTEXTS;
    format!(
        "{{\"method\":\"canary_free\",\"kind\":\"write\",\"thread\":0,\"ctx_id\":{ctx},\
         \"object_start\":\"0x{:x}\",\"access_addr\":\"0x{:x}\",\"requested_size\":32,\
         \"offset_past_end\":4,\"object_age_ns\":1200,\"at_ns\":{i},\
         \"alloc_context\":[\"hot_{ctx}.c:9\",\"driver.c:7\",\"main.c:1\"],\
         \"overflow_site\":[\"memcpy.S:81\"]}}",
        0x10_0000 + i * 64,
        0x10_0000 + i * 64 + 32,
    )
}

/// A realistic stream: unique records, a sprinkle of torn lines, a
/// terminator.
fn synthesize_stream(corrupt_every: usize) -> String {
    let mut out = String::with_capacity(STREAM_LINES * 220);
    for i in 0..STREAM_LINES {
        if corrupt_every != 0 && i % corrupt_every == 0 {
            out.push_str("{\"method\":\"watchpoint\",\"kind\":\"wr");
            out.push('\n');
            continue;
        }
        out.push_str(&report_line(i));
        out.push('\n');
    }
    out.push_str(&format!(
        "{{\"csod_stream_end\":true,\"records\":{STREAM_LINES}}}\n"
    ));
    out
}

/// ns per line through the corruption-tolerant ingest path.
fn ingest_ns_per_line(corrupt_every: usize) -> f64 {
    let stream = synthesize_stream(corrupt_every);
    let lines = stream.lines().count();
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        // A fresh ingestor per round: dedupe state must not turn later
        // rounds into pure hash hits.
        let mut ingestor = Ingestor::new();
        let mut priors = FleetPriors::new();
        let start = Instant::now();
        let summary = ingestor.ingest_str(&stream, &mut priors);
        let ns = start.elapsed().as_nanos() as f64 / lines as f64;
        assert!(summary.terminated);
        std::hint::black_box(priors.len());
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csod-bench-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Milliseconds to recover a store carrying a checkpoint of
/// `CKPT_CONTEXTS` contexts plus `WAL_RECORDS` WAL frames.
fn recovery_ms() -> f64 {
    let dir = bench_dir("recovery");
    {
        let mut store = PriorsStore::open(&dir).expect("bench dir");
        for i in 0..CKPT_CONTEXTS {
            store.observe(&format!("ckpt_{i}.c:1|main.c:1"), 1);
        }
        store.checkpoint().expect("checkpoint");
        for i in 0..WAL_RECORDS {
            store.observe(&format!("wal_{}.c:2|main.c:1", i % CKPT_CONTEXTS), 1);
        }
    }
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let start = Instant::now();
        let store = PriorsStore::open(&dir).expect("recover");
        let ms = start.elapsed().as_nanos() as f64 / 1e6;
        assert!(store.priors().len() >= CKPT_CONTEXTS);
        std::hint::black_box(store.priors().len());
        if round > 0 {
            best = best.min(ms);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

/// Milliseconds to write one checkpoint of `CKPT_CONTEXTS` contexts.
fn checkpoint_ms() -> f64 {
    let dir = bench_dir("checkpoint");
    let mut store = PriorsStore::open(&dir).expect("bench dir");
    for i in 0..CKPT_CONTEXTS {
        store.observe(&format!("ckpt_{i}.c:1|main.c:1"), 1);
    }
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let start = Instant::now();
        store.checkpoint().expect("checkpoint");
        let ms = start.elapsed().as_nanos() as f64 / 1e6;
        if round > 0 {
            best = best.min(ms);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

struct Results {
    metrics: Vec<(&'static str, f64)>,
}

impl Results {
    fn get(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {key} missing"))
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.2}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn measure() -> Results {
    eprintln!("fleet bench: clean-stream ingest ({STREAM_LINES} lines)...");
    let clean = ingest_ns_per_line(0);
    eprintln!("fleet bench: corrupt-heavy ingest (every 8th line torn)...");
    let corrupt = ingest_ns_per_line(8);
    eprintln!("fleet bench: recovery ({CKPT_CONTEXTS} ckpt contexts + {WAL_RECORDS} WAL records)...");
    let recovery = recovery_ms();
    eprintln!("fleet bench: checkpoint ({CKPT_CONTEXTS} contexts)...");
    let checkpoint = checkpoint_ms();
    Results {
        metrics: vec![
            ("stream_lines", STREAM_LINES as f64),
            ("ingest_clean_ns_per_line", clean),
            ("ingest_corrupt_ns_per_line", corrupt),
            ("ingest_clean_mlines_per_s", 1e3 / clean),
            ("recovery_ms", recovery),
            ("checkpoint_ms", checkpoint),
        ],
    }
}

/// Pulls `"key": <number>` out of the flat baseline JSON — the file is
/// written by this binary, so a full parser would be overkill.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = measure();
    println!("\n=== fleet aggregation ===");
    for (k, v) in &results.metrics {
        println!("{k:>36}  {v:10.2}");
    }

    let check_pos = args.iter().position(|a| a == "--check");
    let mut failed = false;
    if let Some(pos) = check_pos {
        let baseline_path = args.get(pos + 1).map_or("BENCH_fleet.json", |s| s.as_str());
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        for key in [
            "ingest_clean_ns_per_line",
            "ingest_corrupt_ns_per_line",
            "recovery_ms",
            "checkpoint_ms",
        ] {
            let base = extract(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks {key}"));
            let fresh = results.get(key);
            let verdict = if fresh > base * REGRESSION_FACTOR {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("check {key}: {fresh:.2} vs baseline {base:.2} ({verdict})");
        }
        if !failed {
            println!("perf smoke passed");
        }
    }
    // `--out` combines with `--check`: CI gates and refreshes the
    // artifact in one run. Without either flag the default path is
    // written, preserving the baseline-refresh behaviour.
    if check_pos.is_none() || args.iter().any(|a| a == "--out") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|p| args.get(p + 1).cloned())
            .unwrap_or_else(|| "BENCH_fleet.json".into());
        std::fs::write(&out, results.to_json()).expect("baseline written");
        println!("wrote {out}");
    }
    if failed {
        eprintln!("perf smoke FAILED: fleet aggregation slower than {REGRESSION_FACTOR}x baseline");
        std::process::exit(1);
    }
}
