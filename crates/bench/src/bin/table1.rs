//! Table I: applications used for effectiveness evaluation.

use csod_bench::{header, row};
use workloads::BuggyApp;

fn main() {
    header("Table I: Applications used for effectiveness evaluation");
    let widths = [18, 10, 16];
    println!(
        "{}",
        row(
            &["Application".into(), "Vulnerability".into(), "Reference".into()],
            &widths
        )
    );
    for app in BuggyApp::all() {
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    app.vulnerability.to_string(),
                    app.reference.into()
                ],
                &widths
            )
        );
    }
}
