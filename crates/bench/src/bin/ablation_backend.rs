//! Ablation: watchpoint installation backends.
//!
//! Section II-A explains why CSOD drives the debug registers through
//! `perf_event_open` instead of the traditional `ptrace` route ("a
//! separate process should be created … which incurs significant
//! performance overhead due to communication between processes"), and
//! Section V-B sketches a further optimization: "combining these system
//! calls into one custom system call, but this requires modification of
//! the underlying OS". This harness measures all three on the
//! watch-heaviest performance workloads.

use csod_bench::{header, row};
use csod_core::{CsodConfig, WatchBackend};
use workloads::{PerfApp, ToolSpec};

fn main() {
    header("Ablation: watchpoint backend overhead (normalized, CSOD w/ evidence)");
    let widths = [14, 14, 12, 18, 10];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "ptrace".into(),
                "perf_event".into(),
                "combined syscall".into(),
                "installs".into(),
            ],
            &widths
        )
    );
    let backends = [
        WatchBackend::Ptrace,
        WatchBackend::PerfEvent,
        WatchBackend::CombinedSyscall,
    ];
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    // The watch-heavy subset: high context counts drive installs.
    for name in ["Mysql", "Vips", "Ferret", "Facesim", "Dedup", "Bodytrack"] {
        let app = PerfApp::by_name(name).expect("known app");
        let registry = app.registry();
        let mut cells = vec![app.name.to_string()];
        let mut installs = 0;
        for (i, backend) in backends.into_iter().enumerate() {
            let config = CsodConfig {
                backend,
                ..CsodConfig::default()
            };
            let outcome = app.run(&registry, ToolSpec::Csod(config), 1);
            sums[i] += outcome.overhead;
            cells.push(format!("{:.3}", outcome.overhead));
            installs = outcome.watched_times;
        }
        count += 1;
        cells.push(installs.to_string());
        println!("{}", row(&cells, &widths));
    }
    println!(
        "{}",
        row(
            &[
                "Average".into(),
                format!("{:.3}", sums[0] / count as f64),
                format!("{:.3}", sums[1] / count as f64),
                format!("{:.3}", sums[2] / count as f64),
                String::new(),
            ],
            &widths
        )
    );
    println!("\nexpected ordering: ptrace >> perf_event_open > combined syscall,");
    println!("reproducing the paper's Section II-A argument and V-B projection.");
}
