//! Table IV: characteristics of the performance applications — lines of
//! code, allocation contexts, allocations, and watched times (WT), the
//! latter measured from a CSOD run of the model.

use csod_bench::{header, row};
use csod_core::CsodConfig;
use workloads::{PerfApp, ToolSpec};

fn main() {
    header("Table IV: application characteristics (paper spec + measured run)");
    let widths = [14, 10, 6, 12, 10, 8, 10];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "LOC".into(),
                "CC".into(),
                "Allocations".into(),
                "WT(paper)".into(),
                "CC(run)".into(),
                "WT(run)".into(),
            ],
            &widths
        )
    );
    for app in PerfApp::all() {
        let registry = app.registry();
        let outcome = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 1);
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    app.loc.to_string(),
                    app.contexts.to_string(),
                    app.allocations.to_string(),
                    app.paper_watched_times.to_string(),
                    outcome.distinct_contexts.to_string(),
                    outcome.watched_times.to_string(),
                ],
                &widths
            )
        );
    }
    println!("\nnote: runs execute min(allocations, 150k) allocations; CC(run) and");
    println!("WT(run) are measured on the scaled run (see EXPERIMENTS.md).");
}
