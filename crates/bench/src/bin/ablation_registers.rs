//! Ablation: how many hardware watchpoints would CSOD want?
//!
//! The paper's central constraint is that "there are only four available"
//! debug registers (Section I). The simulator can ask the what-if
//! question: with hypothetical hardware offering 1..32 registers, how
//! does the per-execution detection probability of the hard workloads
//! change, and what does the extra install traffic cost? (Spoiler: with
//! the adaptive sampling doing its job, surprisingly little — see the
//! closing note.)

use csod_bench::{header, parallel_map, row, runs_arg};
use csod_core::{CsodConfig, ReplacementPolicy};
use workloads::{BuggyApp, PerfApp, ToolSpec, TraceRunner};

fn main() {
    let runs = runs_arg(200);
    let apps: Vec<BuggyApp> = ["heartbleed", "memcached", "mysql", "zziplib"]
        .iter()
        .map(|n| BuggyApp::by_name(n).expect("known app"))
        .collect();
    header(&format!(
        "Ablation: watchpoint-register count vs detection ({runs} runs, near-FIFO)"
    ));
    let widths = [12, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "registers".into(),
                "Heartbleed".into(),
                "Memcached".into(),
                "MySQL".into(),
                "Zziplib".into(),
            ],
            &widths
        )
    );
    for slots in [1usize, 2, 4, 8, 16, 32] {
        let mut cells = vec![if slots == 4 {
            "4 (x86-64)".to_string()
        } else {
            slots.to_string()
        }];
        for app in &apps {
            let registry = app.registry();
            let trace = app.trace(42);
            let detections: usize = parallel_map(runs, |seed| {
                let mut config = CsodConfig::with_policy(ReplacementPolicy::NearFifo);
                config.watchpoint_slots = slots;
                config.seed = seed as u64;
                usize::from(
                    TraceRunner::new(&registry, ToolSpec::Csod(config))
                        .run(trace.iter().copied())
                        .watchpoint_detected,
                )
            })
            .into_iter()
            .sum();
            cells.push(format!("{:.0}%", 100.0 * detections as f64 / runs as f64));
        }
        println!("{}", row(&cells, &widths));
    }

    header("...and what the extra registers cost (MySQL perf model)");
    let app = PerfApp::by_name("mysql").expect("known app");
    let registry = app.registry();
    println!(
        "{}",
        row(
            &["registers".into(), "overhead".into(), "installs".into()],
            &[12, 12, 12]
        )
    );
    for slots in [1usize, 4, 16] {
        let config = CsodConfig {
            watchpoint_slots: slots,
            ..CsodConfig::default()
        };
        let outcome = app.run(&registry, ToolSpec::Csod(config), 1);
        println!(
            "{}",
            row(
                &[
                    slots.to_string(),
                    format!("{:.3}", outcome.overhead),
                    outcome.watched_times.to_string(),
                ],
                &[12, 12, 12]
            )
        );
    }
    println!("\nreading: once the adaptive sampling is in place, detection is nearly");
    println!("FLAT in the register count — the binding constraint is the per-context");
    println!("sampling decision at the buggy allocation, not register pressure.");
    println!("That is the paper's design working as intended: the context-sensitive");
    println!("probabilities are what squeeze millions of objects through four");
    println!("registers; more registers would mostly buy more install traffic.");
}
