//! Figure 7: performance overhead of CSOD vs ASan, normalized to the
//! unprotected execution, on the nineteen performance applications.
//!
//! Four series, as in the paper: CSOD without evidence-based detection,
//! full CSOD, ASan with minimal (16-byte) redzones, and ASan with its
//! larger default redzones. Freqmine is omitted for ASan ("due to a
//! program crash in our evaluation environment").

use asan_sim::AsanConfig;
use csod_bench::{header, row};
use csod_core::CsodConfig;
use workloads::{PerfApp, ToolSpec};

fn main() {
    // `--csv` prints machine-readable rows for plotting instead of the
    // aligned table.
    let csv = std::env::args().any(|a| a == "--csv");
    if csv {
        println!("application,csod_no_evidence,csod,asan_min_redzone,asan");
    } else {
        header("Figure 7: normalized overhead (1.00 = unprotected baseline)");
    }
    let widths = [14, 14, 8, 12, 8];
    if !csv {
        println!(
            "{}",
            row(
                &[
                    "Application".into(),
                    "CSOD w/o Evi".into(),
                    "CSOD".into(),
                    "ASan minRZ".into(),
                    "ASan".into(),
                ],
                &widths
            )
        );
    }
    let mut sums = [0.0f64; 4];
    let mut counts = [0usize; 4];
    for app in PerfApp::all() {
        let registry = app.registry();
        let asan_crashes = app.name == "Freqmine";
        let mut cells = vec![app.name.to_string()];
        let specs: Vec<Option<ToolSpec>> = vec![
            Some(ToolSpec::Csod(CsodConfig::without_evidence())),
            Some(ToolSpec::Csod(CsodConfig::default())),
            (!asan_crashes).then(|| ToolSpec::Asan {
                config: AsanConfig {
                    redzone_size: 16,
                    ..AsanConfig::default()
                },
                instrumented: app.asan_instrumented(),
            }),
            (!asan_crashes).then(|| ToolSpec::Asan {
                config: AsanConfig {
                    redzone_size: 64,
                    ..AsanConfig::default()
                },
                instrumented: app.asan_instrumented(),
            }),
        ];
        for (i, spec) in specs.into_iter().enumerate() {
            match spec {
                Some(spec) => {
                    let outcome = app.run(&registry, spec, 1);
                    sums[i] += outcome.overhead;
                    counts[i] += 1;
                    cells.push(format!("{:.3}", outcome.overhead));
                }
                None => cells.push("-".into()),
            }
        }
        if csv {
            println!("{}", cells.join(","));
        } else {
            println!("{}", row(&cells, &widths));
        }
    }
    let avg: Vec<String> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| format!("{:.3}", s / c as f64))
        .collect();
    if csv {
        println!("average,{},{},{},{}", avg[0], avg[1], avg[2], avg[3]);
    } else {
        println!(
            "{}",
            row(
                &[
                    "Average".into(),
                    avg[0].clone(),
                    avg[1].clone(),
                    avg[2].clone(),
                    avg[3].clone()
                ],
                &widths
            )
        );
        println!(
            "\npaper: CSOD w/o evidence 4.3% avg, CSOD 6.7% avg, ASan ~39% (ASan figures\nexclude external-library instrumentation; see EXPERIMENTS.md for shape notes)"
        );
    }
}
