//! Table II: effectiveness results for 1,000 executions.
//!
//! Each buggy application is executed `--runs` times (default 1,000, the
//! paper's count) under each watchpoint-replacement policy; a run counts
//! as a detection when a hardware watchpoint fires on the overflow. The
//! workload trace is fixed (same buggy input); only CSOD's sampling seed
//! varies across runs, exactly as in repeated real executions.

use csod_bench::{header, parallel_map, row, runs_arg};
use csod_core::{CsodConfig, ReplacementPolicy};
use workloads::{BuggyApp, ToolSpec, TraceRunner};

fn main() {
    let runs = runs_arg(1_000);
    header(&format!(
        "Table II: detections over {runs} executions per policy"
    ));
    let widths = [18, 8, 8, 11];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "Naive".into(),
                "Random".into(),
                "Near-FIFO".into()
            ],
            &widths
        )
    );
    let mut totals = [0usize; 3];
    let apps = BuggyApp::all();
    for app in &apps {
        let registry = app.registry();
        let trace = app.trace(42);
        let mut cells = vec![app.name.to_string()];
        for (i, policy) in ReplacementPolicy::ALL.into_iter().enumerate() {
            let detections: usize = parallel_map(runs, |seed| {
                let mut config = CsodConfig::with_policy(policy);
                config.seed = seed as u64;
                let outcome =
                    TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied());
                usize::from(outcome.watchpoint_detected)
            })
            .into_iter()
            .sum();
            totals[i] += detections;
            cells.push(detections.to_string());
        }
        println!("{}", row(&cells, &widths));
    }
    println!(
        "{}",
        row(
            &[
                "(total)".into(),
                totals[0].to_string(),
                totals[1].to_string(),
                totals[2].to_string()
            ],
            &widths
        )
    );
    let denom = (runs * apps.len()) as f64;
    println!(
        "\naverage detection probability: naive {:.1}%, random {:.1}%, near-FIFO {:.1}%",
        100.0 * totals[0] as f64 / denom,
        100.0 * totals[1] as f64 / denom,
        100.0 * totals[2] as f64 / denom,
    );
}
