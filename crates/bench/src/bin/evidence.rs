//! Section V-A2: evidence-based over-write detection.
//!
//! "CSOD can always detect these over-write problems during their second
//! execution, if missed in the first." For each of the six over-write
//! applications, the harness hunts for first executions whose watchpoints
//! miss the bug, verifies the canary evidence catches it anyway, persists
//! the evidence file, and checks that a second execution detects the
//! overflow with a watchpoint every time.

use csod_bench::{header, row, runs_arg};
use csod_core::CsodConfig;
use workloads::{BuggyApp, OverflowKind, ToolSpec, TraceRunner};

fn main() {
    let attempts = runs_arg(200);
    header("Evidence-based over-write detection (Section V-A2)");
    let widths = [18, 12, 14, 14];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "1st missed".into(),
                "1st evidence".into(),
                "2nd detected".into(),
            ],
            &widths
        )
    );
    let dir = std::env::temp_dir().join("csod-evidence-harness");
    std::fs::create_dir_all(&dir).expect("temp dir usable");

    for app in BuggyApp::all() {
        if app.vulnerability != OverflowKind::OverWrite {
            continue;
        }
        let registry = app.registry();
        let trace = app.trace(42);
        let mut first_missed = 0u32;
        let mut first_evidence = 0u32;
        let mut second_detected = 0u32;
        for seed in 0..attempts as u64 {
            let path = dir.join(format!("{}-{seed}.evidence", app.name));
            let _ = std::fs::remove_file(&path);
            let mut config = CsodConfig::with_seed(seed);
            config.evidence_path = Some(path.clone());
            let first =
                TraceRunner::new(&registry, ToolSpec::Csod(config.clone())).run(trace.iter().copied());
            if first.watchpoint_detected {
                let _ = std::fs::remove_file(&path);
                continue; // only misses are interesting here
            }
            first_missed += 1;
            if first.evidence_detected {
                first_evidence += 1;
            }
            // Second execution, same evidence file, fresh seed.
            let mut config2 = CsodConfig::with_seed(seed ^ 0xFFFF);
            config2.evidence_path = Some(path.clone());
            let second =
                TraceRunner::new(&registry, ToolSpec::Csod(config2)).run(trace.iter().copied());
            if second.watchpoint_detected {
                second_detected += 1;
            }
            let _ = std::fs::remove_file(&path);
        }
        let cell = |n: u32| {
            if first_missed == 0 {
                "n/a (0 miss)".to_string()
            } else {
                format!("{n}/{first_missed}")
            }
        };
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    first_missed.to_string(),
                    cell(first_evidence),
                    cell(second_detected),
                ],
                &widths
            )
        );
    }
    println!("\nexpected: every missed first run still records canary evidence, and");
    println!("every second run detects the overflow with a watchpoint (paper V-A2).");
}
