//! Tracked free-path benchmark: the deallocation and watchpoint-lifecycle
//! hot paths overhauled in the free-path PR.
//!
//! Four scenarios:
//!
//! 1. **Unwatched free** through the full runtime with all four debug
//!    registers pinned elsewhere — every free hits the compact
//!    watched-address filter and skips the WMU and the retry queue
//!    entirely. This is the common case (sampling watches a handful of
//!    objects out of millions).
//! 2. **Watched free**, deferred vs. synchronous: the manager-level
//!    install/remove churn where the deferred path only unlinks and
//!    queues the Figure-4 teardown for the next batched drain, while the
//!    paper-faithful path pays `ioctl(Disable)` + `close` per descriptor
//!    on the spot. Also reports the average teardown batch size.
//! 3. **Trap dispatch**: resolving a firing descriptor through the fd
//!    index vs. the paper's Section III-D1 one-by-one comparison, with
//!    16 threads alive (64 live descriptors).
//! 4. **Parallel scenario driver**: a batch of effectiveness traces
//!    fanned across OS threads vs. run serially.
//!
//! ```bash
//! cargo run --release -p csod-bench --bin freepath            # writes BENCH_freepath.json
//! cargo run --release -p csod-bench --bin freepath -- --check BENCH_freepath.json
//! ```
//!
//! `--check <baseline>` re-runs the measurements and exits non-zero when
//! any tracked ns metric regressed to more than twice the committed
//! baseline — the CI perf-smoke gate.

use csod_core::{
    Csod, CsodConfig, CtxId, ReplacementPolicy, WatchCandidate, WatchpointManager,
};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use csod_rng::Arc4Random;
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{Machine, ThreadId, VirtAddr, VirtDuration};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::{run_traces_parallel, BuggyApp, Event, ToolSpec, TraceRunner};

/// Allocation contexts cycled through by the unwatched-free scenario.
const CONTEXTS: usize = 64;
/// Live objects per timed round of the unwatched-free scenario.
const ROUND_ALLOCS: usize = 8_192;
/// Timed rounds (the fastest is reported, Criterion-style).
const ROUNDS: usize = 12;
/// Install/remove cycles per timed round of the watched churn.
const CHURN_CYCLES: usize = 512;
/// Threads alive during the trap-dispatch scenario.
const DISPATCH_THREADS: usize = 16;
/// Descriptor lookups per dispatch measurement.
const DISPATCH_LOOKUPS: usize = 200_000;
/// Traces fanned out by the parallel-driver scenario.
const PARALLEL_TRACES: usize = 12;
/// Worker-thread cap for the parallel-driver scenario; the actual pool
/// is `min(this, available cores)` — fanning 12 traces across 4 threads
/// on a 1-core CI box would only measure scheduler overhead.
const PARALLEL_THREADS: usize = 4;

/// Worker threads the parallel-driver scenario actually uses.
fn parallel_pool() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(PARALLEL_THREADS)
}
/// Allowed slowdown versus the committed baseline before `--check` fails.
const REGRESSION_FACTOR: f64 = 2.0;

/// ns per *unwatched* free through the full runtime: the four slots are
/// pinned by never-freed allocations under the naive policy, so every
/// timed free misses the watched-address filter and takes the fast path.
fn unwatched_free_ns() -> f64 {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).expect("fresh heap");
    let mut csod = Csod::new(
        CsodConfig::with_policy(ReplacementPolicy::Naive),
        Arc::clone(&frames),
    );
    // Pin all four debug registers; naive never preempts, so everything
    // allocated afterwards is guaranteed unwatched.
    for i in 0..4 {
        let ctx = CallingContext::from_locations(
            &frames,
            [format!("pin_{i}.c:1").as_str(), "main.c:1"],
        );
        let key = ContextKey::new(ctx.first_level().expect("non-empty"), 0x40);
        csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 16, key, &ctx)
            .expect("heap has room");
    }
    let sites: Vec<(ContextKey, CallingContext)> = (0..CONTEXTS)
        .map(|i| {
            let ctx = CallingContext::from_locations(
                &frames,
                [format!("cold_{i}.c:1").as_str(), "driver.c:7", "main.c:1"],
            );
            (ContextKey::new(ctx.first_level().expect("non-empty"), 0x40), ctx)
        })
        .collect();

    let mut best = f64::INFINITY;
    let mut ptrs = Vec::with_capacity(ROUND_ALLOCS);
    // One untimed warm-up round settles context interning and heap state.
    for round in 0..=ROUNDS {
        for i in 0..ROUND_ALLOCS {
            let (key, ctx) = &sites[i % CONTEXTS];
            let p = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, 16, *key, ctx)
                .expect("heap has room");
            ptrs.push(p);
        }
        let start = Instant::now();
        for p in ptrs.drain(..) {
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, p)
                .expect("was allocated");
        }
        let free_ns = start.elapsed().as_nanos() as f64 / ROUND_ALLOCS as f64;
        if round > 0 {
            best = best.min(free_ns);
        }
    }
    assert!(
        csod.stats().frees_fast_filtered >= (ROUNDS * ROUND_ALLOCS) as u64,
        "the timed frees were supposed to take the filtered fast path"
    );
    best
}

fn churn_candidate(frames: &FrameTable, base: VirtAddr, n: u64) -> WatchCandidate {
    WatchCandidate {
        object_start: base + n * 64,
        canary_addr: base + n * 64 + 56,
        // The conversion is exact: the churn uses four slots.
        key: ContextKey::new(frames.intern(&format!("churn{n}")), 0),
        ctx_id: CtxId::from_index(u32::try_from(n).expect("few slots")),
        probability_ppm: 500,
    }
}

/// ns per *watched* free at the manager level: fill the four slots, then
/// remove all four by object address. Deferred mode only unlinks (the
/// drain happens inside the next round's installs, off the free path);
/// synchronous mode pays the per-descriptor Figure-4 sequence inline.
/// Returns `(ns_per_remove, average_teardown_batch)`.
fn watched_churn(deferred: bool) -> (f64, f64) {
    let frames = FrameTable::new();
    let mut machine = Machine::new();
    let base = VirtAddr::new(0x10_0000);
    machine.map_region(base, 1 << 16, "heap").expect("mapped");
    let mut rng = Arc4Random::from_seed(9, 0);
    let mut w = WatchpointManager::new(ReplacementPolicy::Naive, VirtDuration::from_secs(10));
    w.configure_fast_path(deferred, true);
    let candidates: Vec<WatchCandidate> =
        (0..4).map(|n| churn_candidate(&frames, base, n)).collect();

    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let mut removing = Duration::ZERO;
        for _ in 0..CHURN_CYCLES {
            // Install phase (untimed): the first consider also drains the
            // previous cycle's deferred batch, exactly like the runtime
            // drains at poll()/install points.
            for c in &candidates {
                w.consider(&mut machine, *c, &mut rng, |_| None);
            }
            let start = Instant::now();
            for c in &candidates {
                std::hint::black_box(w.remove_by_object(&mut machine, c.object_start));
            }
            removing += start.elapsed();
        }
        let ns = removing.as_nanos() as f64 / (CHURN_CYCLES * 4) as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    let stats = w.stats();
    let batch_avg = if stats.teardown_batches == 0 {
        0.0
    } else {
        stats.teardowns_batched as f64 / stats.teardown_batches as f64
    };
    (best, batch_avg)
}

/// ns per descriptor resolution with 16 threads alive (4 slots × 16
/// threads = 64 live descriptors): the fd index vs. the paper's linear
/// scan over every slot's per-thread descriptor list.
fn dispatch_pair() -> (f64, f64) {
    let frames = FrameTable::new();
    let mut machine = Machine::new();
    let base = VirtAddr::new(0x10_0000);
    machine.map_region(base, 1 << 16, "heap").expect("mapped");
    for _ in 1..DISPATCH_THREADS {
        machine.spawn_thread();
    }
    let mut rng = Arc4Random::from_seed(3, 0);
    let mut w = WatchpointManager::new(ReplacementPolicy::Naive, VirtDuration::from_secs(10));
    w.configure_fast_path(true, true);
    for n in 0..4 {
        w.consider(&mut machine, churn_candidate(&frames, base, n), &mut rng, |_| None);
    }
    let fds: Vec<_> = w
        .watched()
        .flat_map(|o| o.descriptors().map(|(_, fd)| fd))
        .collect();
    assert_eq!(fds.len(), 4 * DISPATCH_THREADS, "4 slots on every thread");

    let mut best_index = f64::INFINITY;
    let mut best_scan = f64::INFINITY;
    for round in 0..=ROUNDS {
        let start = Instant::now();
        for i in 0..DISPATCH_LOOKUPS {
            let hit = w.find_by_fd(fds[i % fds.len()]);
            std::hint::black_box(hit.map(|o| o.object_start));
        }
        let index_ns = start.elapsed().as_nanos() as f64 / DISPATCH_LOOKUPS as f64;
        let start = Instant::now();
        for i in 0..DISPATCH_LOOKUPS {
            let hit = w.find_by_fd_scan(fds[i % fds.len()]);
            std::hint::black_box(hit.map(|o| o.object_start));
        }
        let scan_ns = start.elapsed().as_nanos() as f64 / DISPATCH_LOOKUPS as f64;
        if round > 0 {
            best_index = best_index.min(index_ns);
            best_scan = best_scan.min(scan_ns);
        }
    }
    (best_index, best_scan)
}

/// Wall-clock seconds for a batch of effectiveness traces, serial vs.
/// fanned across the parallel scenario driver. Returns
/// `(serial_ms, parallel_ms)`; the outcomes are asserted identical — the
/// driver must never trade determinism for speed.
fn parallel_driver_pair() -> (f64, f64) {
    let pool = parallel_pool();
    let app = BuggyApp::by_name("gzip").expect("corpus app");
    let registry = app.registry();
    let traces: Vec<Vec<Event>> = (0..PARALLEL_TRACES as u64).map(|s| app.trace(s)).collect();
    let tool = ToolSpec::Csod(CsodConfig::default());

    let mut best_serial = f64::INFINITY;
    let mut best_parallel = f64::INFINITY;
    for round in 0..=3 {
        let start = Instant::now();
        let serial: Vec<_> = traces
            .iter()
            .map(|t| TraceRunner::new(&registry, tool.clone()).run(t.iter().cloned()))
            .collect();
        let serial_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let parallel = run_traces_parallel(&registry, &tool, &traces, pool);
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.reports, p.reports, "parallel driver changed an outcome");
        }
        if round > 0 {
            best_serial = best_serial.min(serial_ms);
            best_parallel = best_parallel.min(parallel_ms);
        }
    }
    (best_serial, best_parallel)
}

struct Results {
    metrics: Vec<(&'static str, f64)>,
}

impl Results {
    fn get(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {key} missing"))
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.2}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Attempts per timed scenario. Each scenario already keeps its fastest
/// round; repeating the whole scenario and keeping the overall minimum
/// spreads the samples across tens of seconds, so bursty interference
/// (this runs on shared CI hardware) has to last the whole bench to
/// inflate a metric.
const ATTEMPTS: usize = 3;

/// Minimum over [`ATTEMPTS`] runs of a scenario.
fn best_of<T, F: FnMut() -> (f64, T)>(mut f: F) -> (f64, T) {
    let mut best = f();
    for _ in 1..ATTEMPTS {
        let next = f();
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

fn measure() -> Results {
    eprintln!("freepath bench: unwatched frees through the filter...");
    let (unwatched, ()) = best_of(|| (unwatched_free_ns(), ()));
    eprintln!("freepath bench: watched churn, deferred teardown...");
    let (deferred, batch_avg) = best_of(|| watched_churn(true));
    eprintln!("freepath bench: watched churn, synchronous teardown...");
    let (synchronous, _) = best_of(|| watched_churn(false));
    eprintln!("freepath bench: trap dispatch, {DISPATCH_THREADS} threads...");
    let (index_ns, scan_ns) = best_of(dispatch_pair);
    eprintln!("freepath bench: parallel driver, {PARALLEL_TRACES} traces x {} threads...", parallel_pool());
    let (serial_ms, parallel_ms) = parallel_driver_pair();
    Results {
        metrics: vec![
            ("unwatched_ns_per_free", unwatched),
            ("watched_deferred_ns_per_free", deferred),
            ("watched_synchronous_ns_per_free", synchronous),
            ("deferred_free_speedup", synchronous / deferred),
            ("teardown_batch_avg", batch_avg),
            ("dispatch_threads", DISPATCH_THREADS as f64),
            ("trap_dispatch_fd_index_ns", index_ns),
            ("trap_dispatch_scan_ns", scan_ns),
            ("dispatch_speedup", scan_ns / index_ns),
            ("parallel_trace_threads", parallel_pool() as f64),
            ("parallel_serial_ms", serial_ms),
            ("parallel_fanned_ms", parallel_ms),
            ("parallel_trace_speedup", serial_ms / parallel_ms),
        ],
    }
}

/// Pulls `"key": <number>` out of the flat baseline JSON — the file is
/// written by this binary, so a full parser would be overkill.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = measure();
    println!("\n=== free path & watchpoint lifecycle ===");
    for (k, v) in &results.metrics {
        println!("{k:>36}  {v:10.2}");
    }

    let check_pos = args.iter().position(|a| a == "--check");
    let mut best = results;
    let mut failed = false;
    if let Some(pos) = check_pos {
        let baseline_path = args.get(pos + 1).map_or("BENCH_freepath.json", |s| s.as_str());
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let keys = [
            "unwatched_ns_per_free",
            "watched_deferred_ns_per_free",
            "trap_dispatch_fd_index_ns",
        ];
        // Interference can only inflate a wall-clock measurement, so a
        // single observation under the threshold proves the code has
        // not regressed. On an apparent failure, re-measure (twice at
        // most) and keep each metric's best observation before ruling.
        for retry in 0..=2 {
            let regressed = |r: &Results| {
                keys.iter().any(|key| {
                    let base = extract(&baseline, key)
                        .unwrap_or_else(|| panic!("baseline {baseline_path} lacks {key}"));
                    r.get(key) > base * REGRESSION_FACTOR
                })
            };
            if !regressed(&best) || retry == 2 {
                break;
            }
            eprintln!("freepath bench: over threshold, re-measuring (noisy host?)...");
            let again = measure();
            for (k, v) in &mut best.metrics {
                *v = v.min(again.get(k));
            }
        }
        for key in keys {
            let base = extract(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks {key}"));
            let fresh = best.get(key);
            let verdict = if fresh > base * REGRESSION_FACTOR {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("check {key}: {fresh:.2} vs baseline {base:.2} ({verdict})");
        }
        if !failed {
            println!("perf smoke passed");
        }
    }
    // `--out` combines with `--check`: CI gates and refreshes the
    // artifact in one run. Without either flag the default path is
    // written, preserving the original baseline-refresh behaviour.
    if check_pos.is_none() || args.iter().any(|a| a == "--out") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|p| args.get(p + 1).cloned())
            .unwrap_or_else(|| "BENCH_freepath.json".into());
        std::fs::write(&out, best.to_json()).expect("baseline written");
        println!("wrote {out}");
    }
    if failed {
        eprintln!("perf smoke FAILED: free path slower than {REGRESSION_FACTOR}x baseline");
        std::process::exit(1);
    }
}
