//! Runs every experiment harness in sequence — the one-command
//! regeneration of the paper's full evaluation. `--runs N` is forwarded
//! to the statistical harnesses (default 200 here; use 1000 for the
//! paper's exact protocol).

use std::process::Command;

fn main() {
    let runs = csod_bench::runs_arg(200).to_string();
    let me = std::env::current_exe().expect("current exe path");
    let bindir = me.parent().expect("bin dir");
    let with_runs = ["table2", "evidence", "ablation_sampling", "ablation_registers", "baselines"];
    let bins = [
        "table1", "table2", "table3", "fig6", "evidence", "fig7", "table4", "table5",
        "baselines", "limitations", "ablation_sampling", "ablation_keys",
        "ablation_backend", "ablation_registers",
    ];
    for bin in bins {
        let path = bindir.join(bin);
        let mut cmd = Command::new(&path);
        if with_runs.contains(&bin) {
            cmd.args(["--runs", &runs]);
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to run {bin} ({}): {e}", path.display())
        });
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nall experiments completed; see EXPERIMENTS.md for the paper comparison");
}
