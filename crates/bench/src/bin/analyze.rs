//! Tracked static-analysis benchmark: cold vs warm (incremental)
//! analysis throughput and the context-sensitivity verdict census.
//!
//! ```bash
//! cargo run --release -p csod-bench --bin analyze            # writes BENCH_analyze.json
//! cargo run --release -p csod-bench --bin analyze -- --check BENCH_analyze.json
//! ```
//!
//! The default mode writes `BENCH_analyze.json` (flat keys, one number
//! each) to the current directory; `--check <baseline>` re-runs the
//! measurements and exits non-zero when a tracked latency regressed to
//! more than twice the committed baseline, when the warm incremental
//! re-analysis after a one-function change is less than
//! [`MIN_WARM_SPEEDUP`]× faster than a cold run, or when the
//! context-sensitive pass fails to prove strictly more contexts safe
//! than the per-function view — the CI perf-smoke gate for the
//! analyzer.

use csod_analyze::{analyze_with_cache, SummaryCache};
use std::time::Instant;
use workloads::SharedHelperApp;

/// Shared allocation helpers in the bench app (one summary module each).
const HELPERS: usize = 64;
/// Calling contexts funneled through each helper.
const CONTEXTS_PER_HELPER: usize = 16;
/// The helper "edited" between the cold and warm runs.
const DIRTY_HELPER: usize = 17;
/// Timed rounds (the fastest is reported, Criterion-style).
const ROUNDS: usize = 8;
/// Allowed slowdown versus the committed baseline before `--check` fails.
const REGRESSION_FACTOR: f64 = 2.0;
/// Minimum cold/warm ratio `--check` accepts: a one-function change
/// must make incremental re-analysis at least this much faster.
const MIN_WARM_SPEEDUP: f64 = 5.0;

fn bench_app() -> SharedHelperApp {
    let mut app = SharedHelperApp::bench(HELPERS, CONTEXTS_PER_HELPER);
    // Enough per-allocation traffic that summarization dominates the
    // (unavoidable) lower/hash front-end, as it does in real traces.
    app.accesses_per_alloc = 32;
    app
}

struct Results {
    metrics: Vec<(&'static str, f64)>,
}

impl Results {
    fn get(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {key} missing"))
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.2}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn measure() -> Results {
    let app = bench_app();
    let registry = app.registry();
    let clean = app.trace(1, None);
    let dirty = app.trace(1, Some(DIRTY_HELPER));
    eprintln!(
        "analyze bench: {} contexts through {} helpers, {} events",
        app.contexts(),
        app.helpers,
        clean.len()
    );

    // Cold: every summary computed from scratch, fresh cache per round.
    let mut cold_ms = f64::INFINITY;
    let mut modules = 0usize;
    for round in 0..=ROUNDS {
        let mut cache = SummaryCache::new();
        let start = Instant::now();
        let (report, stats) = analyze_with_cache(&registry, &clean, Some(&mut cache));
        let ms = start.elapsed().as_nanos() as f64 / 1e6;
        assert_eq!(stats.computed, stats.modules);
        modules = stats.modules;
        std::hint::black_box(report.verdicts.len());
        if round > 0 {
            cold_ms = cold_ms.min(ms);
        }
    }

    // Warm: the cache carries the clean run's summaries; the dirty
    // trace invalidates exactly one helper. Each round starts from a
    // copy of the prewarmed cache so the refresh inside the run never
    // turns later rounds into pure cache hits.
    let mut prewarmed = SummaryCache::new();
    let (_, stats) = analyze_with_cache(&registry, &clean, Some(&mut prewarmed));
    assert_eq!(stats.computed, stats.modules);
    let mut warm_ms = f64::INFINITY;
    let mut census = (0usize, 0usize, 0usize);
    let mut fn_census = (0usize, 0usize, 0usize);
    for round in 0..=ROUNDS {
        let mut cache = prewarmed.clone();
        let start = Instant::now();
        let (report, stats) = analyze_with_cache(&registry, &dirty, Some(&mut cache));
        let ms = start.elapsed().as_nanos() as f64 / 1e6;
        assert_eq!(stats.computed, 1, "one dirty helper, one recomputed module");
        census = report.census();
        fn_census = report.function_census();
        std::hint::black_box(report.verdicts.len());
        if round > 0 {
            warm_ms = warm_ms.min(ms);
        }
    }

    Results {
        metrics: vec![
            ("contexts", app.contexts() as f64),
            ("modules", modules as f64),
            ("trace_events", clean.len() as f64),
            ("cold_ms", cold_ms),
            ("warm_ms", warm_ms),
            ("warm_speedup", cold_ms / warm_ms),
            ("functions_per_sec", modules as f64 / (cold_ms / 1e3)),
            ("contexts_per_sec", app.contexts() as f64 / (cold_ms / 1e3)),
            ("context_proven_safe", census.0 as f64),
            ("function_proven_safe", fn_census.0 as f64),
            ("suspicious", census.1 as f64),
            ("unknown", census.2 as f64),
        ],
    }
}

/// Pulls `"key": <number>` out of the flat baseline JSON — the file is
/// written by this binary, so a full parser would be overkill.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = measure();
    println!("\n=== static analysis ===");
    for (k, v) in &results.metrics {
        println!("{k:>24}  {v:10.2}");
    }

    let check_pos = args.iter().position(|a| a == "--check");
    let mut failed = false;
    if let Some(pos) = check_pos {
        let baseline_path = args
            .get(pos + 1)
            .map_or("BENCH_analyze.json", |s| s.as_str());
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        for key in ["cold_ms", "warm_ms"] {
            let base = extract(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks {key}"));
            let fresh = results.get(key);
            let verdict = if fresh > base * REGRESSION_FACTOR {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("check {key}: {fresh:.2} vs baseline {base:.2} ({verdict})");
        }
        let speedup = results.get("warm_speedup");
        let verdict = if speedup < MIN_WARM_SPEEDUP {
            failed = true;
            "TOO SLOW"
        } else {
            "ok"
        };
        println!("check warm_speedup: {speedup:.2} vs floor {MIN_WARM_SPEEDUP:.2} ({verdict})");
        let ctx_safe = results.get("context_proven_safe");
        let fn_safe = results.get("function_proven_safe");
        let verdict = if ctx_safe <= fn_safe {
            failed = true;
            "NO PRECISION GAIN"
        } else {
            "ok"
        };
        println!(
            "check context_proven_safe: {ctx_safe:.0} vs per-function {fn_safe:.0} ({verdict})"
        );
        if !failed {
            println!("perf smoke passed");
        }
    }
    // `--out` combines with `--check`: CI gates and refreshes the
    // artifact in one run. Without either flag the default path is
    // written, preserving the baseline-refresh behaviour.
    if check_pos.is_none() || args.iter().any(|a| a == "--out") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|p| args.get(p + 1).cloned())
            .unwrap_or_else(|| "BENCH_analyze.json".into());
        std::fs::write(&out, results.to_json()).expect("baseline written");
        println!("wrote {out}");
    }
    if failed {
        eprintln!("perf smoke FAILED: analysis slower than {REGRESSION_FACTOR}x baseline, warm speedup under {MIN_WARM_SPEEDUP}x, or no context-sensitivity gain");
        std::process::exit(1);
    }
}
