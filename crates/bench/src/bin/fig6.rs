//! Figure 6: the bug report CSOD prints for the Heartbleed problem —
//! the overflowing statement's full calling context followed by the
//! overflowed object's allocation calling context.
//!
//! The demo reconstructs the paper's exact scenario: Nginx + OpenSSL, a
//! heartbeat-response buffer allocated through OpenSSL's allocator and
//! over-read by `memcpy` in `t1_lib.c`.

use csod_core::{Csod, CsodConfig};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{Machine, SiteToken, ThreadId};
use std::sync::Arc;

fn main() {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).expect("fresh heap");
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));

    // The allocation calling context of the heartbeat buffer (paper Fig. 6).
    let alloc_ctx = CallingContext::from_locations(
        &frames,
        [
            "OPENSSL/crypto/mem.c:312",
            "OPENSSL/crypto/bn/bn_ctx.c:217",
            "OPENSSL/ssl/t1_lib.c:2560",
            "NGINX/http/ngx_http_request.c:577",
            "NGINX/http/ngx_http_request.c:527",
        ],
    );
    let key = ContextKey::new(alloc_ctx.first_level().expect("non-empty"), 0x40);

    // The over-reading statement: memcpy of the attacker-controlled length.
    let overflow_site = SiteToken(0);
    csod.register_site(
        overflow_site,
        CallingContext::from_locations(
            &frames,
            [
                "GLIBC/memcpy-sse2-unaligned.S:81",
                "OPENSSL/ssl/t1_lib.c:2588",
                "OPENSSL/ssl/s3_pkt.c:1095",
                "NGINX/os/unix/ngx_process_cycle.c:138",
                "NGINX/core/nginx.c:415",
            ],
        ),
    );

    // The heartbeat payload claims to be much larger than the buffer.
    let payload = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &alloc_ctx)
        .expect("allocation fits");
    machine.set_current_site(ThreadId::MAIN, overflow_site);
    machine
        .app_read(ThreadId::MAIN, payload + 64, 8)
        .expect("heap stays mapped");
    csod.poll(&mut machine);

    assert!(csod.detected(), "the very first object is watched");
    for report in csod.reports() {
        println!("{}", report.render(&frames));
    }
}
