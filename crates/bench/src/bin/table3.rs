//! Table III: detailed information of applications with bugs —
//! total contexts/allocations and those before the overflow, measured
//! from the generated traces (a consistency check that the workload
//! models realize their Table III parameters).

use csod_bench::{header, row};
use std::collections::HashSet;
use workloads::{BuggyApp, Event};

fn main() {
    header("Table III: contexts and allocations, total and before the overflow");
    let widths = [18, 10, 12, 10, 12];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "Total CC".into(),
                "Total Allocs".into(),
                "CC Before".into(),
                "Allocs Before".into(),
            ],
            &widths
        )
    );
    for app in BuggyApp::all() {
        let trace = app.trace(42);
        let mut total_allocs = 0u64;
        let mut allocs_before = 0u64;
        let mut contexts = HashSet::new();
        let mut contexts_before = 0usize;
        let mut seen_overflow = false;
        for event in &trace {
            match event {
                Event::Malloc { site, .. } => {
                    total_allocs += 1;
                    contexts.insert(*site);
                    if !seen_overflow {
                        allocs_before += 1;
                        contexts_before = contexts.len();
                    }
                }
                Event::OverflowAccess { .. } => seen_overflow = true,
                _ => {}
            }
        }
        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    contexts.len().to_string(),
                    total_allocs.to_string(),
                    contexts_before.to_string(),
                    allocs_before.to_string(),
                ],
                &widths
            )
        );
    }
}
