//! Baseline shoot-out: CSOD vs Sampler (MICRO'18) vs ASan on the nine
//! buggy applications.
//!
//! The paper's related-work discussion (Section VII) positions CSOD
//! against its closest relative: "Sampler utilizes PMU-based memory
//! access sampling to detect buffer overflows and use-after-frees, with
//! similar overhead to that of CSOD. However, Sampler requires a custom
//! memory allocator, and change of the underlying OS." This harness
//! measures both detection and cost so the sampling-philosophy
//! difference is visible: CSOD samples *objects* (and is then certain),
//! Sampler samples *accesses* (and needs the overflow to be long or
//! repeated).

use asan_sim::AsanConfig;
use csod_bench::{header, parallel_map, row, runs_arg};
use csod_core::CsodConfig;
use sampler_sim::SamplerConfig;
use workloads::{BuggyApp, PerfApp, ToolSpec, TraceRunner};

fn main() {
    let runs = runs_arg(200);
    header(&format!(
        "Baselines: detection rate over {runs} executions (+ mean overhead)"
    ));
    let widths = [18, 12, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "Application".into(),
                "CSOD".into(),
                "Sampler".into(),
                "ASan".into(),
                "extent(w)".into(),
            ],
            &widths
        )
    );
    for app in BuggyApp::all() {
        let registry = app.registry();
        let trace = app.trace(42);

        let csod_hits: usize = parallel_map(runs, |seed| {
            let outcome = TraceRunner::new(
                &registry,
                ToolSpec::Csod(CsodConfig::with_seed(seed as u64)),
            )
            .run(trace.iter().copied());
            usize::from(outcome.watchpoint_detected)
        })
        .into_iter()
        .sum();

        let sampler_hits: usize = parallel_map(runs, |seed| {
            let outcome = TraceRunner::new(
                &registry,
                ToolSpec::Sampler(SamplerConfig {
                    phase: seed as u64 * 97,
                    ..SamplerConfig::default()
                }),
            )
            .run(trace.iter().copied());
            usize::from(outcome.detected)
        })
        .into_iter()
        .sum();

        // ASan is deterministic: one run decides.
        let asan = TraceRunner::new(
            &registry,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
        )
        .run(trace.iter().copied());

        println!(
            "{}",
            row(
                &[
                    app.name.into(),
                    format!("{:.0}%", 100.0 * csod_hits as f64 / runs as f64),
                    format!("{:.0}%", 100.0 * sampler_hits as f64 / runs as f64),
                    if asan.detected { "yes".into() } else { "MISS".into() },
                    app.overflow_extent.to_string(),
                ],
                &widths
            )
        );
    }
    // Overhead comparison on the performance workloads — the claim is
    // "similar overhead to that of CSOD" (Section VII).
    header("Overhead on the performance workloads (normalized)");
    let widths = [14, 10, 10, 10];
    println!(
        "{}",
        row(
            &["Application".into(), "CSOD".into(), "Sampler".into(), "ASan".into()],
            &widths
        )
    );
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for app in PerfApp::all() {
        if app.name == "Freqmine" {
            continue; // omitted for ASan in the paper
        }
        let registry = app.registry();
        let mut cells = vec![app.name.to_string()];
        for (i, spec) in [
            ToolSpec::Csod(CsodConfig::default()),
            ToolSpec::Sampler(SamplerConfig::default()),
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
        ]
        .into_iter()
        .enumerate()
        {
            let outcome = app.run(&registry, spec, 1);
            sums[i] += outcome.overhead;
            cells.push(format!("{:.3}", outcome.overhead));
        }
        count += 1;
        println!("{}", row(&cells, &widths));
    }
    println!(
        "{}",
        row(
            &[
                "Average".into(),
                format!("{:.3}", sums[0] / count as f64),
                format!("{:.3}", sums[1] / count as f64),
                format!("{:.3}", sums[2] / count as f64),
            ],
            &widths
        )
    );
    println!("\nreading: Sampler shines when the overflow touches many words");
    println!("(Heartbleed's 64KB over-read) but misses short overflows that CSOD");
    println!("catches per-object; it also needs a custom allocator + OS change.");
}
