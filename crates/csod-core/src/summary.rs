//! End-of-run summaries.
//!
//! Production detectors print a closing statistics block so operators
//! can see what the always-on tool did (and what it cost). CSOD's
//! summary collects the counters the paper's evaluation reports —
//! allocations, distinct contexts, watched times, traps, canary
//! evidence — plus the machine's overhead accounting.

use crate::runtime::Csod;
use sim_machine::Machine;
use std::fmt;

/// A snapshot of everything an operator wants to know at exit.
///
/// # Examples
///
/// ```
/// use csod_core::{Csod, CsodConfig, RunSummary};
/// use csod_ctx::FrameTable;
/// use sim_heap::{HeapConfig, SimHeap};
/// use sim_machine::Machine;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new();
/// let _heap = SimHeap::new(&mut machine, HeapConfig::default())?;
/// let mut csod = Csod::new(CsodConfig::default(), Arc::new(FrameTable::new()));
/// csod.finish(&mut machine);
/// let summary = RunSummary::collect(&csod, &machine);
/// assert_eq!(summary.allocations, 0);
/// println!("{summary}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Allocations interposed.
    pub allocations: u64,
    /// Deallocations interposed.
    pub frees: u64,
    /// Distinct allocation calling contexts observed.
    pub contexts: usize,
    /// Objects ever watched (Table IV "WT").
    pub watched_times: u64,
    /// Watchpoint replacements performed.
    pub replacements: u64,
    /// Watch candidates rejected by the policy.
    pub rejected: u64,
    /// Watchpoint traps delivered.
    pub traps: u64,
    /// Corrupted canaries found at deallocation.
    pub canary_free_hits: u64,
    /// Corrupted canaries found by the termination sweep.
    pub canary_exit_hits: u64,
    /// Overflow reports produced.
    pub reports: usize,
    /// Contexts with persisted overflow evidence.
    pub evidence_contexts: usize,
    /// Watchpoint installs the backend refused.
    pub install_failures: u64,
    /// Install retries attempted after backend failures.
    pub install_retries: u64,
    /// Transitions into canary-only detection.
    pub degradations: u64,
    /// Transitions back to watchpoint detection.
    pub recoveries: u64,
    /// Contexts quarantined at collection time.
    pub quarantined_contexts: usize,
    /// Whether the run ended in canary-only mode (backend still down).
    pub canary_only: bool,
    /// Allocations from contexts the static pre-analysis proved safe.
    pub proven_safe_allocs: u64,
    /// Watchpoint installs spent on proven-safe contexts.
    pub proven_safe_installs: u64,
    /// Watchpoint installs spent on statically suspicious contexts.
    pub suspicious_installs: u64,
    /// Availability bypasses denied on proven-safe contexts — watch
    /// slots the static priors saved outright.
    pub prior_availability_skips: u64,
    /// Soundness counter: overflows from proven-safe contexts. Anything
    /// but zero is an analyzer bug.
    pub proven_safe_overflows: u64,
    /// Frees the watched-address filter proved unwatched, skipping the
    /// slot scan and retry-cancel entirely.
    pub frees_fast_filtered: u64,
    /// Figure-4 teardowns paid through batched drains off the free path.
    pub teardowns_batched: u64,
    /// Stale traps drained after logical removal — counted, never
    /// reported.
    pub stale_traps_suppressed: u64,
    /// System calls the tool issued.
    pub syscalls: u64,
    /// Normalized overhead of the run so far (Figure 7 metric).
    pub overhead: f64,
}

impl RunSummary {
    /// Collects the summary from a runtime and its machine.
    pub fn collect(csod: &Csod, machine: &Machine) -> RunSummary {
        let stats = csod.stats();
        let wp = csod.watchpoint_stats();
        RunSummary {
            allocations: stats.allocations,
            frees: stats.frees,
            contexts: csod.distinct_contexts(),
            watched_times: wp.installs,
            replacements: wp.replacements,
            rejected: wp.rejected,
            traps: stats.traps,
            canary_free_hits: stats.canary_free_hits,
            canary_exit_hits: stats.canary_exit_hits,
            reports: csod.reports().len(),
            evidence_contexts: csod.evidence().len(),
            install_failures: stats.install_failures,
            install_retries: stats.install_retries,
            degradations: stats.degradations,
            recoveries: stats.recoveries,
            quarantined_contexts: csod.quarantined_contexts(machine),
            canary_only: csod.detection_mode() == crate::DetectionMode::CanaryOnly,
            proven_safe_allocs: stats.proven_safe_allocs,
            proven_safe_installs: stats.proven_safe_installs,
            suspicious_installs: stats.suspicious_installs,
            prior_availability_skips: stats.prior_availability_skips,
            proven_safe_overflows: stats.proven_safe_overflows,
            frees_fast_filtered: stats.frees_fast_filtered,
            teardowns_batched: stats.teardowns_batched,
            stale_traps_suppressed: stats.stale_traps_suppressed,
            syscalls: machine.counter().syscalls(),
            overhead: machine.counter().normalized_overhead(),
        }
    }

    /// Whether the run found any overflow by any mechanism.
    pub fn found_overflows(&self) -> bool {
        self.reports > 0
    }

    /// Whether static priors left any trace in this run.
    pub fn prior_used(&self) -> bool {
        self.proven_safe_allocs > 0
            || self.proven_safe_installs > 0
            || self.suspicious_installs > 0
            || self.prior_availability_skips > 0
            || self.proven_safe_overflows > 0
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== CSOD run summary ====")?;
        writeln!(
            f,
            "allocations: {} ({} freed), contexts: {}",
            self.allocations, self.frees, self.contexts
        )?;
        writeln!(
            f,
            "watched: {} object(s) ({} replacements, {} rejected candidates)",
            self.watched_times, self.replacements, self.rejected
        )?;
        writeln!(
            f,
            "detections: {} trap(s), {} canary hit(s) at free, {} at exit -> {} report(s)",
            self.traps, self.canary_free_hits, self.canary_exit_hits, self.reports
        )?;
        writeln!(
            f,
            "evidence store: {} context(s) with observed overflows",
            self.evidence_contexts
        )?;
        writeln!(
            f,
            "health: {} failed install(s), {} retried, {} degradation(s), {} recover(ies), {} quarantined, mode: {}",
            self.install_failures,
            self.install_retries,
            self.degradations,
            self.recoveries,
            self.quarantined_contexts,
            if self.canary_only { "canary-only" } else { "watchpoints" }
        )?;
        writeln!(
            f,
            "free path: {} filtered free(s), {} batched teardown(s), {} stale trap(s) suppressed",
            self.frees_fast_filtered, self.teardowns_batched, self.stale_traps_suppressed
        )?;
        if self.prior_used() {
            writeln!(
                f,
                "priors: {} proven-safe alloc(s), {} install(s) on proven-safe, {} on suspicious, {} slot(s) saved, {} soundness violation(s)",
                self.proven_safe_allocs,
                self.proven_safe_installs,
                self.suspicious_installs,
                self.prior_availability_skips,
                self.proven_safe_overflows
            )?;
        }
        write!(
            f,
            "cost: {} syscall(s), normalized overhead {:.3}",
            self.syscalls, self.overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CsodConfig;
    use csod_ctx::{CallingContext, ContextKey, FrameTable};
    use sim_heap::{HeapConfig, SimHeap};
    use sim_machine::ThreadId;
    use std::sync::Arc;

    #[test]
    fn summary_reflects_a_detecting_run() {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
        let ctx = CallingContext::from_locations(&frames, ["s.c:1", "main.c:1"]);
        let key = ContextKey::new(frames.intern("s.c:1"), 0x40);
        let p = csod
            .malloc(&mut machine, &mut heap, ThreadId::MAIN, 32, key, &ctx)
            .unwrap();
        machine.app_write(ThreadId::MAIN, p + 32, 8).unwrap();
        csod.poll(&mut machine);
        csod.finish(&mut machine);

        let summary = RunSummary::collect(&csod, &machine);
        assert_eq!(summary.allocations, 1);
        assert_eq!(summary.contexts, 1);
        assert_eq!(summary.watched_times, 1);
        assert_eq!(summary.traps, 1);
        assert!(summary.found_overflows());
        // The over-write also corrupted the canary; the exit sweep saw it.
        assert_eq!(summary.canary_exit_hits, 1);
        assert_eq!(summary.evidence_contexts, 1);
        assert!(summary.overhead > 1.0);

        let text = summary.to_string();
        assert!(text.contains("CSOD run summary"));
        assert!(text.contains("watched: 1 object(s)"));
        assert!(text.contains("1 trap(s)"));
    }

    #[test]
    fn summary_of_empty_run_is_quiet() {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut csod = Csod::new(CsodConfig::default(), frames);
        csod.finish(&mut machine);
        let summary = RunSummary::collect(&csod, &machine);
        assert!(!summary.found_overflows());
        assert_eq!(summary.allocations, 0);
        assert_eq!(summary.syscalls, 0);
    }
}
