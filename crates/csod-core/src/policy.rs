//! Watchpoint replacement policies (paper Section III-C2).

use std::fmt;
use std::str::FromStr;

/// How CSOD chooses a victim when all four watchpoints are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// No preemption: a watchpoint is kept until its object is freed.
    /// Detects bugs only in programs with at most four contexts or an
    /// overflow within the first four allocations (Table II).
    Naive,
    /// Pick a random slot; if its (age-decayed) probability is lower than
    /// the candidate's, replace it, otherwise continue scanning from that
    /// slot until a lower-probability victim is found.
    Random,
    /// Replace in approximately first-installed-first-replaced order via
    /// a circular cursor updated with an atomic-style single pointer
    /// bump; deallocations perturb strict FIFO order, hence "near".
    #[default]
    NearFifo,
}

impl ReplacementPolicy {
    /// All policies, in the order Table II reports them.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Naive,
        ReplacementPolicy::Random,
        ReplacementPolicy::NearFifo,
    ];
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Naive => f.write_str("naive"),
            ReplacementPolicy::Random => f.write_str("random"),
            ReplacementPolicy::NearFifo => f.write_str("near-FIFO"),
        }
    }
}

/// Error returned when parsing an unknown policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown replacement policy `{}` (expected naive, random or near-fifo)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for ReplacementPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(ReplacementPolicy::Naive),
            "random" => Ok(ReplacementPolicy::Random),
            "near-fifo" | "nearfifo" | "fifo" => Ok(ReplacementPolicy::NearFifo),
            other => Err(ParsePolicyError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(p.to_string().parse::<ReplacementPolicy>().unwrap(), p);
        }
        assert_eq!("FIFO".parse::<ReplacementPolicy>().unwrap(), ReplacementPolicy::NearFifo);
        assert!("lru".parse::<ReplacementPolicy>().is_err());
    }

    #[test]
    fn default_is_near_fifo() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::NearFifo);
    }

    #[test]
    fn parse_error_mentions_input() {
        let err = "bogus".parse::<ReplacementPolicy>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}
