//! The Watchpoint Management Unit (paper Section III-C).
//!
//! At most four heap objects are watched at a time — one hardware debug
//! register each, installed on *every* alive thread through the
//! `perf_event_open` sequence of Figure 3 and removed with the
//! `ioctl(DISABLE)` + `close` sequence of Figure 4.
//!
//! When all four slots are busy, the [replacement
//! policy](crate::ReplacementPolicy) decides whether a new candidate
//! preempts an installed watchpoint. A replacement happens only when the
//! candidate's probability exceeds the victim's *effective* probability,
//! which decays by halving for every 10 seconds the watchpoint has been
//! installed — "an object without overflows for an extended period will
//! likely have a lower chance of experiencing overflows in the future".

use crate::config::WatchBackend;
use crate::fastmap::FastMap;
use crate::policy::ReplacementPolicy;
use crate::sampling::CtxId;
use csod_ctx::ContextKey;
use csod_rng::Arc4Random;
use csod_trace::{Histogram, HistogramSnapshot};
use sim_machine::{
    Fd, FcntlCmd, IoctlCmd, Machine, PerfError, PerfEventAttr, Signal, ThreadId, VirtAddr,
    VirtDuration, VirtInstant, NUM_WATCHPOINT_REGISTERS,
};

/// Compact mirror of the live watched object addresses — at most one
/// `u64` per watchpoint slot, so four words on real hardware.
///
/// The deallocation fast path reads this (a handful of integer compares)
/// instead of scanning the slot array, so the overwhelming majority of
/// frees — those of unwatched objects — skip the Watchpoint Management
/// Unit entirely. The manager keeps the filter exact: an address is
/// present if and only if a slot currently guards it, so a miss is a
/// guaranteed "not watched".
#[derive(Debug, Clone, Default)]
pub struct WatchFilter {
    addrs: Vec<u64>,
}

/// A slot index as the `u32` stored in the fd index. Slot counts are
/// bounded by the debug-register count (a handful), so the cast is
/// lossless.
#[allow(clippy::cast_possible_truncation)]
fn slot_u32(idx: usize) -> u32 {
    idx as u32
}

impl WatchFilter {
    /// Whether `addr` is the start of a currently watched object.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.addrs.contains(&addr.as_u64())
    }

    /// Number of watched addresses in the filter.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether nothing is watched.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    fn insert(&mut self, addr: VirtAddr) {
        self.addrs.push(addr.as_u64());
    }

    fn remove(&mut self, addr: VirtAddr) {
        let raw = addr.as_u64();
        if let Some(i) = self.addrs.iter().position(|&a| a == raw) {
            self.addrs.swap_remove(i);
        }
    }

    fn clear(&mut self) {
        self.addrs.clear();
    }
}

/// One fd-index entry: which slot the descriptor belongs to and the
/// slot's generation at insertion time. A lookup is valid only while the
/// generation still matches — a recycled slot (or a kernel-recycled fd
/// number) can never resolve to the wrong watchpoint.
#[derive(Debug, Clone, Copy)]
struct FdEntry {
    slot: u32,
    generation: u64,
}

/// A request to watch one freshly allocated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchCandidate {
    /// User-visible start of the object.
    pub object_start: VirtAddr,
    /// The boundary word to watch (the canary slot).
    pub canary_addr: VirtAddr,
    /// The object's allocation-context key.
    pub key: ContextKey,
    /// The context's dense id.
    pub ctx_id: CtxId,
    /// The context's probability at allocation time, in ppm.
    pub probability_ppm: u32,
}

/// One installed watchpoint.
#[derive(Debug, Clone)]
pub struct WatchedObject {
    /// User-visible start of the watched object.
    pub object_start: VirtAddr,
    /// The watched boundary word.
    pub canary_addr: VirtAddr,
    /// Allocation-context key of the object.
    pub key: ContextKey,
    /// Dense id of the allocation context.
    pub ctx_id: CtxId,
    /// Probability at install time, in ppm.
    pub probability_ppm: u32,
    /// Virtual time of installation.
    pub installed_at: VirtInstant,
    /// One perf event per alive thread.
    fds: Vec<(ThreadId, Fd)>,
}

impl WatchedObject {
    /// The probability this watchpoint defends with when a candidate
    /// wants its slot: the owning context's *current* probability (which
    /// degradation and watch-halving keep pushing down), additionally
    /// halved once per elapsed decay period — "the probability of an
    /// existing object will be reduced when it has been installed for a
    /// long period of time".
    ///
    /// The decay is clamped at 31 periods: a `u32` shift by ≥ 32 would
    /// panic in debug builds and wrap on release (`base >> (n % 32)`),
    /// resurrecting a long-dead probability. The clamp is lossless —
    /// any ppm value is below 2³¹, so 31 halvings already take it to 0.
    pub fn effective_probability_ppm(
        &self,
        current_ctx_ppm: Option<u32>,
        now: VirtInstant,
        decay: VirtDuration,
    ) -> u32 {
        let base = current_ctx_ppm.unwrap_or(self.probability_ppm);
        let elapsed = now.saturating_duration_since(self.installed_at).as_nanos();
        let periods = if decay.as_nanos() == 0 {
            0
        } else {
            (elapsed / decay.as_nanos()).min(31) as u32
        };
        base >> periods
    }

    /// The perf descriptors (one per thread) backing this watchpoint.
    pub fn descriptors(&self) -> impl Iterator<Item = (ThreadId, Fd)> + '_ {
        self.fds.iter().copied()
    }
}

/// Outcome of [`WatchpointManager::consider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcome {
    /// A free debug register was available ("installation due to
    /// availability").
    InstalledFree,
    /// An existing watchpoint was preempted.
    Replaced,
    /// The candidate lost: all slots busy and no victim had a lower
    /// effective probability (or the policy never preempts).
    Rejected,
    /// The backend refused the install (`EBUSY`/`ENOSPC`/`EINTR` from the
    /// perf syscalls). The slot is left free; the degradation manager
    /// decides whether to retry, quarantine, or fall back to canaries.
    Failed,
}

/// Counters the manager maintains (Table IV's "WT" column and the
/// overhead discussion of Section V-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchpointStats {
    /// Objects ever watched (free-slot installs + replacements).
    pub installs: u64,
    /// Installs that preempted an existing watchpoint.
    pub replacements: u64,
    /// Watchpoints removed because their object was freed.
    pub removals_on_free: u64,
    /// Candidates rejected by the policy.
    pub rejected: u64,
    /// Installs the backend refused (fault injection or a co-resident
    /// debugger holding the registers).
    pub install_failures: u64,
    /// Descriptors torn down through deferred batched drains (as opposed
    /// to the synchronous per-fd Figure-4 sequence).
    pub teardowns_batched: u64,
    /// Batched drains performed; `teardowns_batched / teardown_batches`
    /// is the average batch size.
    pub teardown_batches: u64,
}

/// The Watchpoint Management Unit.
#[derive(Debug)]
pub struct WatchpointManager {
    policy: ReplacementPolicy,
    backend: WatchBackend,
    age_decay: VirtDuration,
    slots: Vec<Option<WatchedObject>>,
    /// Near-FIFO circular cursor: next victim position.
    fifo_cursor: usize,
    /// Exact mirror of the occupied slots' object addresses; the free
    /// fast path reads it instead of scanning `slots`.
    filter: WatchFilter,
    /// Per-slot install generation; bumped on every install and logical
    /// removal so stale fd-index entries can never resolve.
    generations: Vec<u64>,
    /// fd → (slot, generation) for O(1) trap dispatch.
    fd_index: FastMap<u64, FdEntry>,
    /// Descriptors of logically removed watchpoints awaiting their
    /// batched Figure-4 teardown.
    pending_teardown: Vec<Fd>,
    /// Whether `remove_by_object` defers the physical teardown to the
    /// next drain point instead of paying it synchronously on the free.
    deferred_teardown: bool,
    /// Whether `find_by_fd` uses the fd index (`true`) or the paper's
    /// one-by-one descriptor comparison (`false`).
    use_fd_index: bool,
    stats: WatchpointStats,
    /// Observability: install-to-removal lifetime of every watchpoint
    /// that was ever taken down, in virtual nanoseconds.
    watch_lifetime: Histogram,
    /// Observability: occupied slots immediately after each install.
    slot_occupancy: Histogram,
}

impl WatchpointManager {
    /// Creates a manager with the given policy and age-decay period,
    /// installing through `perf_event_open`.
    pub fn new(policy: ReplacementPolicy, age_decay: VirtDuration) -> Self {
        WatchpointManager::with_backend(policy, WatchBackend::PerfEvent, age_decay)
    }

    /// Creates a manager with an explicit installation backend.
    pub fn with_backend(
        policy: ReplacementPolicy,
        backend: WatchBackend,
        age_decay: VirtDuration,
    ) -> Self {
        WatchpointManager::with_slots(policy, backend, age_decay, NUM_WATCHPOINT_REGISTERS)
    }

    /// Creates a manager for hypothetical hardware with `slots` debug
    /// registers (the register-count ablation); the machine must be
    /// built with at least as many via
    /// [`Machine::with_debug_registers`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_slots(
        policy: ReplacementPolicy,
        backend: WatchBackend,
        age_decay: VirtDuration,
        slots: usize,
    ) -> Self {
        assert!(slots > 0, "at least one watchpoint slot");
        WatchpointManager {
            policy,
            backend,
            age_decay,
            slots: (0..slots).map(|_| None).collect(),
            fifo_cursor: 0,
            filter: WatchFilter::default(),
            generations: vec![0; slots],
            fd_index: FastMap::new(),
            pending_teardown: Vec::new(),
            deferred_teardown: false,
            use_fd_index: false,
            stats: WatchpointStats::default(),
            watch_lifetime: Histogram::new(),
            slot_occupancy: Histogram::new(),
        }
    }

    /// Configures the free-path optimizations: deferred batched teardown
    /// and fd-indexed trap dispatch. Both default to off (the
    /// paper-faithful behaviour); the runtime switches them on from
    /// [`crate::FastPathParams`].
    pub fn configure_fast_path(&mut self, deferred_teardown: bool, fd_index: bool) {
        self.deferred_teardown = deferred_teardown;
        self.use_fd_index = fd_index;
    }

    /// The compact watched-address filter. Reading it costs a few
    /// integer compares and never touches the slot array.
    pub fn filter(&self) -> &WatchFilter {
        &self.filter
    }

    /// Descriptors queued for batched teardown and not yet drained.
    pub fn pending_teardowns(&self) -> usize {
        self.pending_teardown.len()
    }

    /// Physically tears down every queued descriptor in one batch: a
    /// single kernel entry for the perf and combined backends, per-fd
    /// round trips for `ptrace` (which cannot batch). Called at the
    /// drain points — `poll()`, before any install, thread exit, and
    /// the end of the run.
    pub fn drain_teardowns(&mut self, machine: &mut Machine) {
        if self.pending_teardown.is_empty() {
            return;
        }
        let fds = std::mem::take(&mut self.pending_teardown);
        self.stats.teardowns_batched += fds.len() as u64;
        self.stats.teardown_batches += 1;
        match self.backend {
            WatchBackend::Ptrace => {
                for fd in &fds {
                    let _ = machine.sys_ptrace_unwatch(*fd);
                }
            }
            WatchBackend::CombinedSyscall => machine.sys_unwatch_all(&fds),
            WatchBackend::PerfEvent => machine.sys_teardown_batch(&fds),
        }
    }

    /// Number of watchpoint slots this manager drives.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The policy in effect.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The installation backend in effect.
    pub fn backend(&self) -> WatchBackend {
        self.backend
    }

    /// Whether at least one of the four slots is free.
    pub fn has_free_slot(&self) -> bool {
        self.slots.iter().any(Option::is_none)
    }

    /// Number of objects currently watched.
    pub fn watched_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Counters.
    pub fn stats(&self) -> WatchpointStats {
        self.stats
    }

    /// Distribution of install-to-removal watchpoint lifetimes, in
    /// virtual nanoseconds (one observation per removed watchpoint).
    pub fn watch_lifetime_histogram(&self) -> HistogramSnapshot {
        self.watch_lifetime.snapshot()
    }

    /// Distribution of occupied slot counts sampled right after each
    /// install — how hard the four registers are being contended.
    pub fn slot_occupancy_histogram(&self) -> HistogramSnapshot {
        self.slot_occupancy.snapshot()
    }

    /// Offers `candidate` to the manager.
    ///
    /// A free slot is always used regardless of probability; otherwise
    /// the replacement policy picks a victim whose effective probability
    /// is lower than the candidate's, or rejects the candidate.
    pub fn consider(
        &mut self,
        machine: &mut Machine,
        candidate: WatchCandidate,
        rng: &mut Arc4Random,
        current_ctx_ppm: impl Fn(ContextKey) -> Option<u32>,
    ) -> InstallOutcome {
        // Deferred teardowns still hold debug registers; release them
        // before claiming one for the candidate.
        self.drain_teardowns(machine);
        if let Some(free) = self.slots.iter().position(Option::is_none) {
            return match self.install_into(machine, free, candidate) {
                Ok(()) => {
                    self.stats.installs += 1;
                    InstallOutcome::InstalledFree
                }
                Err(_) => {
                    self.stats.install_failures += 1;
                    InstallOutcome::Failed
                }
            };
        }
        let now = machine.now();
        let victim = match self.policy {
            ReplacementPolicy::Naive => None,
            ReplacementPolicy::Random => {
                // Start at a random slot, then scan forward until a
                // lower-probability victim is found (Section III-C2).
                let n = self.slots.len();
                // At most a handful of debug registers, so the
                // conversion never saturates in practice.
                let start = rng.uniform(u32::try_from(n).unwrap_or(u32::MAX)) as usize;
                (0..n)
                    .map(|i| (start + i) % n)
                    .find(|&idx| self.loses_to(idx, &candidate, now, &current_ctx_ppm))
            }
            ReplacementPolicy::NearFifo => {
                // Check only the first-installed position; the cursor
                // advances when a replacement happens.
                let idx = self.fifo_cursor;
                if self.loses_to(idx, &candidate, now, &current_ctx_ppm) {
                    self.fifo_cursor = (idx + 1) % self.slots.len();
                    Some(idx)
                } else {
                    None
                }
            }
        };
        match victim {
            Some(idx) => {
                self.remove_slot(machine, idx);
                match self.install_into(machine, idx, candidate) {
                    Ok(()) => {
                        self.stats.installs += 1;
                        self.stats.replacements += 1;
                        InstallOutcome::Replaced
                    }
                    // The victim is gone and the candidate did not make
                    // it in: the slot stays free for the next attempt.
                    Err(_) => {
                        self.stats.install_failures += 1;
                        InstallOutcome::Failed
                    }
                }
            }
            None => {
                self.stats.rejected += 1;
                InstallOutcome::Rejected
            }
        }
    }

    fn loses_to(
        &self,
        idx: usize,
        candidate: &WatchCandidate,
        now: VirtInstant,
        current_ctx_ppm: impl Fn(ContextKey) -> Option<u32>,
    ) -> bool {
        self.slots[idx].as_ref().is_some_and(|w| {
            let defense = w.effective_probability_ppm(current_ctx_ppm(w.key), now, self.age_decay);
            // Same-context candidates win ties: the newer object of an
            // equally suspicious context is the better target, since the
            // installed sibling has demonstrably not overflowed yet.
            // This is also what makes evidence-pinned contexts (100 %)
            // always migrate the watch to their latest allocation.
            candidate.probability_ppm > defense
                || (candidate.key == w.key && candidate.probability_ppm >= defense)
        })
    }

    /// Removes the watchpoint guarding `object_start`, if any — called on
    /// deallocation. Returns whether one was removed.
    ///
    /// With deferred teardown enabled the removal is *logical*: the slot
    /// is vacated, the filter and fd index are purged (so a later trap
    /// from the still-armed hardware watchpoint is recognized as stale),
    /// and the Figure-4 syscalls are queued for the next batched drain.
    pub fn remove_by_object(&mut self, machine: &mut Machine, object_start: VirtAddr) -> bool {
        let Some(idx) = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|w| w.object_start == object_start))
        else {
            return false;
        };
        if self.deferred_teardown {
            self.unlink_slot(idx, machine.now());
        } else {
            self.remove_slot(machine, idx);
        }
        self.stats.removals_on_free += 1;
        true
    }

    /// The watched object owning `fd`, if any — how the signal handler
    /// identifies which watchpoint fired. With the fd index enabled this
    /// is one hash probe plus a generation check; otherwise it falls
    /// back to [`WatchpointManager::find_by_fd_scan`].
    pub fn find_by_fd(&self, fd: Fd) -> Option<&WatchedObject> {
        if self.use_fd_index {
            let entry = self.fd_index.get(fd.as_raw())?;
            let idx = entry.slot as usize;
            if self.generations.get(idx).copied() == Some(entry.generation) {
                return self.slots[idx].as_ref();
            }
            return None;
        }
        self.find_by_fd_scan(fd)
    }

    /// The paper-faithful dispatch of Section III-D1: "CSOD compares the
    /// current file descriptor with each of these saved file descriptors
    /// one-by-one". Kept behind the config flag and as the parity oracle
    /// for the fd index.
    pub fn find_by_fd_scan(&self, fd: Fd) -> Option<&WatchedObject> {
        self.slots
            .iter()
            .flatten()
            .find(|w| w.fds.iter().any(|&(_, f)| f == fd))
    }

    /// The watched object guarding `object_start`, if any.
    pub fn find_by_object(&self, object_start: VirtAddr) -> Option<&WatchedObject> {
        self.slots
            .iter()
            .flatten()
            .find(|w| w.object_start == object_start)
    }

    /// Whether `object_start` is currently watched.
    pub fn is_watched(&self, object_start: VirtAddr) -> bool {
        self.find_by_object(object_start).is_some()
    }

    /// Iterates over the currently watched objects.
    pub fn watched(&self) -> impl Iterator<Item = &WatchedObject> {
        self.slots.iter().flatten()
    }

    /// Extends every installed watchpoint onto a newly spawned thread —
    /// CSOD's `pthread_create` interception. Thread creation is rare, so
    /// even the combined-syscall backend uses the per-thread route here.
    ///
    /// A slot that cannot be extended to the new thread is torn down
    /// entirely: partial coverage would let the unwatched thread overflow
    /// silently while the tool believes the object is guarded. The canary
    /// fallback still covers the object.
    pub fn install_on_thread(&mut self, machine: &mut Machine, tid: ThreadId) {
        let backend = match self.backend {
            WatchBackend::CombinedSyscall => WatchBackend::PerfEvent,
            other => other,
        };
        for idx in 0..self.slots.len() {
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            match open_watch_event(machine, backend, slot.canary_addr, tid) {
                Ok(fd) => {
                    slot.fds.push((tid, fd));
                    self.fd_index.insert(
                        fd.as_raw(),
                        FdEntry {
                            slot: slot_u32(idx),
                            generation: self.generations[idx],
                        },
                    );
                }
                Err(_) => {
                    self.stats.install_failures += 1;
                    self.remove_slot(machine, idx);
                }
            }
        }
    }

    /// Forgets descriptors pinned to an exited thread (the kernel closes
    /// them with the thread; see [`Machine::exit_thread`]).
    pub fn forget_thread(&mut self, tid: ThreadId) {
        let fd_index = &mut self.fd_index;
        for slot in self.slots.iter_mut().flatten() {
            slot.fds.retain(|&(t, fd)| {
                if t == tid {
                    fd_index.remove(fd.as_raw());
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Removes every watchpoint (end of execution), including any
    /// teardowns still queued from deferred removals.
    pub fn remove_all(&mut self, machine: &mut Machine) {
        for idx in 0..self.slots.len() {
            if self.slots[idx].is_some() {
                self.remove_slot(machine, idx);
            }
        }
        self.drain_teardowns(machine);
        self.filter.clear();
        self.fd_index.clear();
    }

    fn install_into(
        &mut self,
        machine: &mut Machine,
        idx: usize,
        candidate: WatchCandidate,
    ) -> Result<(), PerfError> {
        debug_assert!(self.slots[idx].is_none());
        // Figure 3: install the watchpoint on ALL alive threads, "since
        // there is no way to know which thread will cause an overflow".
        // Any per-thread failure rolls back the threads already armed so
        // a failed install never leaks a descriptor or register.
        let fds = match self.backend {
            WatchBackend::CombinedSyscall => {
                machine.sys_watch_all_threads(PerfEventAttr::rw_word(candidate.canary_addr))?
            }
            _ => {
                let threads: Vec<ThreadId> = machine.threads().alive().collect();
                let mut fds: Vec<(ThreadId, Fd)> = Vec::with_capacity(threads.len());
                for tid in threads {
                    match open_watch_event(machine, self.backend, candidate.canary_addr, tid) {
                        Ok(fd) => fds.push((tid, fd)),
                        Err(e) => {
                            for (_tid, fd) in fds {
                                close_watch_event(machine, self.backend, fd);
                            }
                            return Err(e);
                        }
                    }
                }
                fds
            }
        };
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        let generation = self.generations[idx];
        for &(_tid, fd) in &fds {
            self.fd_index.insert(
                fd.as_raw(),
                FdEntry {
                    slot: slot_u32(idx),
                    generation,
                },
            );
        }
        self.filter.insert(candidate.object_start);
        self.slots[idx] = Some(WatchedObject {
            object_start: candidate.object_start,
            canary_addr: candidate.canary_addr,
            key: candidate.key,
            ctx_id: candidate.ctx_id,
            probability_ppm: candidate.probability_ppm,
            installed_at: machine.now(),
            fds,
        });
        self.slot_occupancy.record(self.watched_count() as u64);
        Ok(())
    }

    /// Logically removes the watchpoint in slot `idx` without issuing any
    /// syscalls: the slot, the watched-address filter, and the fd index
    /// forget it immediately — so a trap from the still-armed hardware
    /// watchpoint is *stale* (counted, never reported) — while the
    /// Figure-4 `ioctl`/`close` sequence is queued for the next batched
    /// drain. The generation bump guarantees a recycled slot never
    /// resolves through a stale fd-index entry.
    fn unlink_slot(&mut self, idx: usize, now: VirtInstant) {
        let watched = self.slots[idx].take().expect("slot occupied");
        self.watch_lifetime
            .record(now.saturating_duration_since(watched.installed_at).as_nanos());
        self.filter.remove(watched.object_start);
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        for (_tid, fd) in watched.fds {
            self.fd_index.remove(fd.as_raw());
            self.pending_teardown.push(fd);
        }
    }

    fn remove_slot(&mut self, machine: &mut Machine, idx: usize) {
        let watched = self.slots[idx].take().expect("slot occupied");
        self.watch_lifetime.record(
            machine
                .now()
                .saturating_duration_since(watched.installed_at)
                .as_nanos(),
        );
        self.filter.remove(watched.object_start);
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        for &(_tid, fd) in &watched.fds {
            self.fd_index.remove(fd.as_raw());
        }
        match self.backend {
            WatchBackend::PerfEvent => {
                // Figure 4: disable the event and close the descriptor on
                // every thread that still holds one.
                for (_tid, fd) in watched.fds {
                    close_watch_event(machine, WatchBackend::PerfEvent, fd);
                }
            }
            WatchBackend::Ptrace => {
                for (_tid, fd) in watched.fds {
                    close_watch_event(machine, WatchBackend::Ptrace, fd);
                }
            }
            WatchBackend::CombinedSyscall => {
                let fds: Vec<Fd> = watched.fds.iter().map(|&(_, fd)| fd).collect();
                machine.sys_unwatch_all(&fds);
            }
        }
    }
}

/// Installs one armed watchpoint event on one thread through the chosen
/// backend. The perf route performs the full Figure-3 syscall sequence;
/// a failure mid-sequence closes the half-configured descriptor before
/// reporting the error, so callers never see a leaked fd.
fn open_watch_event(
    machine: &mut Machine,
    backend: WatchBackend,
    canary_addr: VirtAddr,
    tid: ThreadId,
) -> Result<Fd, PerfError> {
    match backend {
        WatchBackend::Ptrace => machine.sys_ptrace_watch(PerfEventAttr::rw_word(canary_addr), tid),
        _ => {
            let fd = machine.sys_perf_event_open(PerfEventAttr::rw_word(canary_addr), tid)?;
            let sequence = |machine: &mut Machine| -> Result<(), PerfError> {
                let _flags = machine.sys_fcntl(fd, FcntlCmd::GetFl)?;
                machine.sys_fcntl(fd, FcntlCmd::SetFlAsync)?;
                machine.sys_fcntl(fd, FcntlCmd::SetSig(Signal::Trap))?;
                machine.sys_fcntl(fd, FcntlCmd::SetOwn(tid))?;
                machine.sys_ioctl(fd, IoctlCmd::Enable)?;
                Ok(())
            };
            match sequence(machine) {
                Ok(()) => Ok(fd),
                Err(e) => {
                    // EINTR on close still releases the descriptor, so a
                    // single best-effort close cannot leak.
                    let _ = machine.sys_close(fd);
                    Err(e)
                }
            }
        }
    }
}

/// Tears down one armed watchpoint event, tolerating injected failures:
/// `ioctl`/`close` may report `EINTR`, but the kernel releases the
/// descriptor (and its debug register) regardless, so the teardown never
/// retries — retrying a close is the classic double-close bug.
fn close_watch_event(machine: &mut Machine, backend: WatchBackend, fd: Fd) {
    match backend {
        WatchBackend::Ptrace => {
            let _ = machine.sys_ptrace_unwatch(fd);
        }
        _ => {
            let _ = machine.sys_ioctl(fd, IoctlCmd::Disable);
            let _ = machine.sys_close(fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;

    fn machine_with_heap() -> (Machine, VirtAddr) {
        let mut m = Machine::new();
        let base = VirtAddr::new(0x10_0000);
        m.map_region(base, 1 << 16, "heap").unwrap();
        (m, base)
    }

    fn candidate(frames: &FrameTable, base: VirtAddr, n: u64, prob: u32) -> WatchCandidate {
        WatchCandidate {
            object_start: base + n * 64,
            canary_addr: base + n * 64 + 56,
            key: ContextKey::new(frames.intern(&format!("site{n}")), 0),
            ctx_id: CtxId::from_index(n as u32),
            probability_ppm: prob,
        }
    }

    fn manager(policy: ReplacementPolicy) -> WatchpointManager {
        WatchpointManager::new(policy, VirtDuration::from_secs(10))
    }

    #[test]
    fn free_slots_always_accept() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        for i in 0..4 {
            // Probability zero — availability still wins.
            let out = w.consider(&mut m, candidate(&frames, base, i, 0), &mut rng, |_| None);
            assert_eq!(out, InstallOutcome::InstalledFree);
        }
        assert_eq!(w.watched_count(), 4);
        assert!(!w.has_free_slot());
        assert_eq!(w.stats().installs, 4);
    }

    #[test]
    fn naive_never_preempts() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        for i in 0..4 {
            w.consider(&mut m, candidate(&frames, base, i, 10), &mut rng, |_| None);
        }
        let out = w.consider(&mut m, candidate(&frames, base, 9, 1_000_000), &mut rng, |_| None);
        assert_eq!(out, InstallOutcome::Rejected);
        assert_eq!(w.stats().rejected, 1);
    }

    #[test]
    fn random_replaces_lower_probability_victim() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Random);
        for i in 0..4 {
            w.consider(&mut m, candidate(&frames, base, i, 100), &mut rng, |_| None);
        }
        let strong = candidate(&frames, base, 9, 500_000);
        assert_eq!(w.consider(&mut m, strong, &mut rng, |_| None), InstallOutcome::Replaced);
        assert!(w.is_watched(strong.object_start));
        // A weaker candidate loses everywhere.
        let weak = candidate(&frames, base, 10, 50);
        assert_eq!(w.consider(&mut m, weak, &mut rng, |_| None), InstallOutcome::Rejected);
    }

    #[test]
    fn near_fifo_checks_cursor_only() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::NearFifo);
        // Slot 0 holds a strong watchpoint; slots 1..3 weak ones.
        w.consider(&mut m, candidate(&frames, base, 0, 900_000), &mut rng, |_| None);
        for i in 1..4 {
            w.consider(&mut m, candidate(&frames, base, i, 10), &mut rng, |_| None);
        }
        // Candidate beats slots 1..3 but not slot 0 — the cursor points
        // at slot 0, so near-FIFO rejects.
        let mid = candidate(&frames, base, 9, 100_000);
        assert_eq!(w.consider(&mut m, mid, &mut rng, |_| None), InstallOutcome::Rejected);
        // A candidate that beats slot 0 replaces it and advances the cursor.
        let strong = candidate(&frames, base, 10, 950_000);
        assert_eq!(w.consider(&mut m, strong, &mut rng, |_| None), InstallOutcome::Replaced);
        // Now the cursor is at slot 1 (weak): mid-strength wins.
        assert_eq!(w.consider(&mut m, mid, &mut rng, |_| None), InstallOutcome::Replaced);
    }

    #[test]
    fn effective_probability_decays_with_age() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::NearFifo);
        for i in 0..4 {
            w.consider(&mut m, candidate(&frames, base, i, 400_000), &mut rng, |_| None);
        }
        // A 300k candidate loses against fresh 400k watchpoints...
        let c = candidate(&frames, base, 9, 300_000);
        assert_eq!(w.consider(&mut m, c, &mut rng, |_| None), InstallOutcome::Rejected);
        // ...but wins once they are 10+ seconds old (400k -> 200k).
        m.skip_time(VirtDuration::from_secs(10));
        assert_eq!(w.consider(&mut m, c, &mut rng, |_| None), InstallOutcome::Replaced);
    }

    #[test]
    fn removal_on_free_releases_slot_and_registers() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        assert_eq!(m.free_registers(ThreadId::MAIN), 3);
        assert!(w.remove_by_object(&mut m, c.object_start));
        assert!(!w.remove_by_object(&mut m, c.object_start));
        assert_eq!(m.free_registers(ThreadId::MAIN), 4);
        assert_eq!(w.stats().removals_on_free, 1);
        assert!(w.has_free_slot());
    }

    #[test]
    fn installs_cover_all_alive_threads() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        let obj = w.find_by_object(c.object_start).unwrap();
        let tids: Vec<ThreadId> = obj.descriptors().map(|(t, _)| t).collect();
        assert_eq!(tids, vec![ThreadId::MAIN, worker]);
        // The worker touching the canary fires on the worker.
        m.app_write(worker, c.canary_addr, 8).unwrap();
        let sigs = m.take_signals();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].thread, worker);
    }

    #[test]
    fn new_thread_inherits_watchpoints() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        let late = m.spawn_thread();
        w.install_on_thread(&mut m, late);
        m.app_read(late, c.canary_addr, 8).unwrap();
        assert_eq!(m.take_signals().len(), 1);
    }

    #[test]
    fn find_by_fd_resolves_the_firing_watchpoint() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c0 = candidate(&frames, base, 0, 10);
        let c1 = candidate(&frames, base, 1, 10);
        w.consider(&mut m, c0, &mut rng, |_| None);
        w.consider(&mut m, c1, &mut rng, |_| None);
        m.app_write(ThreadId::MAIN, c1.canary_addr, 8).unwrap();
        let sig = m.take_signals().pop().unwrap();
        let hit = w.find_by_fd(sig.fd.unwrap()).unwrap();
        assert_eq!(hit.object_start, c1.object_start);
        assert!(w.find_by_fd(Fd::from_raw(9999)).is_none());
    }

    #[test]
    fn thread_exit_is_forgotten() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        w.forget_thread(worker);
        m.exit_thread(worker).unwrap();
        // Removing the object must not try to close the dead thread's fd.
        assert!(w.remove_by_object(&mut m, c.object_start));
    }

    #[test]
    fn ptrace_backend_installs_working_watchpoints_at_higher_cost() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = WatchpointManager::with_backend(
            ReplacementPolicy::Naive,
            WatchBackend::Ptrace,
            VirtDuration::from_secs(10),
        );
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        let ptrace_cost = m.counter().tool_ns();
        m.app_write(ThreadId::MAIN, c.canary_addr, 8).unwrap();
        assert_eq!(m.take_signals().len(), 1, "ptrace watch traps too");
        assert!(w.remove_by_object(&mut m, c.object_start));
        assert_eq!(m.open_events(), 0);

        let (mut m2, base2) = machine_with_heap();
        let mut w2 = manager(ReplacementPolicy::Naive);
        w2.consider(&mut m2, candidate(&frames, base2, 0, 10), &mut rng, |_| None);
        assert!(ptrace_cost > 3 * m2.counter().tool_ns());
    }

    #[test]
    fn combined_backend_uses_one_syscall_per_install() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = WatchpointManager::with_backend(
            ReplacementPolicy::Naive,
            WatchBackend::CombinedSyscall,
            VirtDuration::from_secs(10),
        );
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        assert_eq!(m.counter().syscalls(), 1, "one kernel entry for both threads");
        m.app_write(worker, c.canary_addr, 8).unwrap();
        assert_eq!(m.take_signals().len(), 1);
        assert!(w.remove_by_object(&mut m, c.object_start));
        assert_eq!(m.counter().syscalls(), 2);
        assert_eq!(m.open_events(), 0);
        // Late threads still get covered via the per-thread fallback.
        w.consider(&mut m, c, &mut rng, |_| None);
        let late = m.spawn_thread();
        w.install_on_thread(&mut m, late);
        m.app_read(late, c.canary_addr, 8).unwrap();
        assert_eq!(m.take_signals().len(), 1);
    }

    #[test]
    fn remove_all_clears_every_slot() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Random);
        for i in 0..4 {
            w.consider(&mut m, candidate(&frames, base, i, 10), &mut rng, |_| None);
        }
        w.remove_all(&mut m);
        assert_eq!(w.watched_count(), 0);
        assert_eq!(m.open_events(), 0);
    }

    #[test]
    fn decay_saturates_instead_of_wrapping() {
        // Installed for far more than 31 decay periods: the shift clamp
        // must take the probability to 0, not wrap around to a large
        // value (u32 >> 32 would).
        let (mut m, base) = machine_with_heap();
        let frames = FrameTable::new();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        let c = candidate(&frames, base, 0, 1_000_000);
        w.consider(&mut m, c, &mut rng, |_| None);
        let decay = VirtDuration::from_secs(10);
        let watched = w.find_by_fd_scan(w.slots[0].as_ref().unwrap().fds[0].1).unwrap();
        for secs in [320u64, 400, 100_000] {
            let now = m.now() + VirtDuration::from_secs(secs);
            assert_eq!(watched.effective_probability_ppm(Some(1_000_000), now, decay), 0);
        }
        // Right at the clamp boundary: 31 periods of a full-scale ppm.
        let now = m.now() + VirtDuration::from_secs(310);
        assert_eq!(watched.effective_probability_ppm(Some(1_000_000), now, decay), 0);
    }

    #[test]
    fn filter_tracks_watched_addresses_exactly() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        assert!(w.filter().is_empty());
        let a = candidate(&frames, base, 0, 10);
        let b = candidate(&frames, base, 1, 10);
        w.consider(&mut m, a, &mut rng, |_| None);
        w.consider(&mut m, b, &mut rng, |_| None);
        assert!(w.filter().contains(a.object_start));
        assert!(w.filter().contains(b.object_start));
        assert!(!w.filter().contains(base + 9 * 64));
        w.remove_by_object(&mut m, a.object_start);
        assert!(!w.filter().contains(a.object_start));
        assert!(w.filter().contains(b.object_start));
        w.remove_all(&mut m);
        assert!(w.filter().is_empty());
    }

    #[test]
    fn deferred_unlink_queues_teardown_until_drain() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        w.configure_fast_path(true, true);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        let before = m.counter().syscalls();
        assert!(w.remove_by_object(&mut m, c.object_start));
        // Logical removal: no syscalls yet, register still held, but the
        // filter and slot no longer know the object.
        assert_eq!(m.counter().syscalls(), before);
        assert_eq!(m.free_registers(ThreadId::MAIN), 3);
        assert!(!w.is_watched(c.object_start));
        assert!(!w.filter().contains(c.object_start));
        assert_eq!(w.pending_teardowns(), 1);
        w.drain_teardowns(&mut m);
        assert_eq!(m.counter().syscalls(), before + 1);
        assert_eq!(m.free_registers(ThreadId::MAIN), 4);
        assert_eq!(w.pending_teardowns(), 0);
        assert_eq!(w.stats().teardowns_batched, 1);
        assert_eq!(w.stats().teardown_batches, 1);
    }

    #[test]
    fn consider_drains_pending_teardowns_first() {
        // All four registers are tied up in deferred teardowns; a new
        // install must drain them first instead of failing with EBUSY.
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        w.configure_fast_path(true, true);
        let cs: Vec<WatchCandidate> = (0..4).map(|i| candidate(&frames, base, i, 10)).collect();
        for c in &cs {
            w.consider(&mut m, *c, &mut rng, |_| None);
        }
        for c in &cs {
            w.remove_by_object(&mut m, c.object_start);
        }
        assert_eq!(w.pending_teardowns(), 4);
        assert_eq!(m.free_registers(ThreadId::MAIN), 0);
        let out = w.consider(&mut m, candidate(&frames, base, 9, 10), &mut rng, |_| None);
        assert_eq!(out, InstallOutcome::InstalledFree);
        assert_eq!(w.pending_teardowns(), 0);
    }

    #[test]
    fn fd_index_agrees_with_paper_scan() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let worker = m.spawn_thread();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        w.configure_fast_path(true, true);
        for i in 0..4 {
            w.consider(&mut m, candidate(&frames, base, i, 10), &mut rng, |_| None);
        }
        // Every live descriptor resolves identically through the index
        // and through the Section III-D1 linear scan.
        let fds: Vec<Fd> = w
            .slots
            .iter()
            .flatten()
            .flat_map(|s| s.fds.iter().map(|&(_, fd)| fd))
            .collect();
        assert_eq!(fds.len(), 8); // 4 slots × 2 threads
        for fd in fds {
            let via_index = w.find_by_fd(fd).map(|o| o.object_start);
            let via_scan = w.find_by_fd_scan(fd).map(|o| o.object_start);
            assert_eq!(via_index, via_scan);
            assert!(via_index.is_some());
        }
        // A descriptor that never belonged to a watchpoint misses both ways.
        let bogus = Fd::from_raw(u64::MAX);
        assert!(w.find_by_fd(bogus).is_none());
        assert!(w.find_by_fd_scan(bogus).is_none());
        m.exit_thread(worker).unwrap();
    }

    #[test]
    fn generation_counter_rejects_stale_index_entries() {
        let frames = FrameTable::new();
        let (mut m, base) = machine_with_heap();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut w = manager(ReplacementPolicy::Naive);
        w.configure_fast_path(true, true);
        let c = candidate(&frames, base, 0, 10);
        w.consider(&mut m, c, &mut rng, |_| None);
        let stale_fd = w.slots[0].as_ref().unwrap().fds[0].1;
        w.remove_by_object(&mut m, c.object_start);
        // The old fd must not resolve — neither before nor after the slot
        // is recycled for a different object.
        assert!(w.find_by_fd(stale_fd).is_none());
        let fresh = candidate(&frames, base, 1, 10);
        w.consider(&mut m, fresh, &mut rng, |_| None);
        assert!(w.find_by_fd(stale_fd).is_none());
        let fresh_fd = w.slots[0].as_ref().unwrap().fds[0].1;
        assert_eq!(w.find_by_fd(fresh_fd).unwrap().object_start, fresh.object_start);
    }
}
