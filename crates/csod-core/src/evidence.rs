//! The persistent evidence store (paper Section IV-B).
//!
//! "At the end of the execution, all allocation calling contexts observed
//! to have overflows are written to persistent storage as a file in order
//! to detect buffer overflow in future executions." On the next run, any
//! context whose full backtrace matches a stored signature starts pinned
//! at 100 % — which is why Section V-A2 finds that every over-write is
//! "always detected … during their second execution, if missed in the
//! first".
//!
//! The on-disk format is one signature per line: the context's frames
//! joined by `|`, innermost first. A leading `#` marks comments.

use csod_ctx::{CallingContext, FrameTable};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Separator between frames inside one signature line.
const FRAME_SEP: char = '|';

/// A set of allocation-context signatures with observed overflow
/// evidence.
///
/// # Examples
///
/// ```
/// use csod_core::EvidenceStore;
/// use csod_ctx::{CallingContext, FrameTable};
///
/// let frames = FrameTable::new();
/// let ctx = CallingContext::from_locations(&frames, ["mem.c:312", "main.c:1"]);
/// let mut store = EvidenceStore::new();
/// assert!(!store.contains(&ctx, &frames));
/// store.record(&ctx, &frames);
/// assert!(store.contains(&ctx, &frames));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvidenceStore {
    signatures: BTreeSet<String>,
}

impl EvidenceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        EvidenceStore::default()
    }

    /// The canonical signature of a context: frame locations joined by
    /// `|`, innermost first.
    pub fn signature(ctx: &CallingContext, frames: &FrameTable) -> String {
        let mut out = String::new();
        for (i, frame) in ctx.iter().enumerate() {
            if i > 0 {
                out.push(FRAME_SEP);
            }
            out.push_str(&frames.resolve(frame));
        }
        out
    }

    /// Records overflow evidence for `ctx`. Returns `true` if it was new.
    pub fn record(&mut self, ctx: &CallingContext, frames: &FrameTable) -> bool {
        self.signatures.insert(Self::signature(ctx, frames))
    }

    /// Whether `ctx` has recorded evidence.
    pub fn contains(&self, ctx: &CallingContext, frames: &FrameTable) -> bool {
        self.signatures.contains(&Self::signature(ctx, frames))
    }

    /// Records an already-rendered signature — the seeding path for
    /// aggregators (csod-fleet) that hold signatures recovered from
    /// other processes' reports rather than live contexts. Returns
    /// `true` if it was new; blank signatures are ignored.
    pub fn insert_signature(&mut self, signature: &str) -> bool {
        let sig = signature.trim();
        if sig.is_empty() || sig.starts_with('#') {
            return false;
        }
        self.signatures.insert(sig.to_owned())
    }

    /// Whether an already-rendered signature has recorded evidence.
    pub fn contains_signature(&self, signature: &str) -> bool {
        self.signatures.contains(signature)
    }

    /// Number of recorded contexts.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Iterates over the stored signatures in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.signatures.iter().map(String::as_str)
    }

    /// Loads a store from `path`. A missing file yields an empty store,
    /// so first executions need no special casing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(EvidenceStore::new()),
            Err(e) => return Err(e),
        };
        let signatures = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect();
        Ok(EvidenceStore { signatures })
    }

    /// Saves the store to `path`, one signature per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut file = fs::File::create(path)?;
        writeln!(file, "# CSOD evidence store: allocation contexts with observed overflows")?;
        for sig in &self.signatures {
            writeln!(file, "{sig}")?;
        }
        Ok(())
    }
}

impl fmt::Display for EvidenceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} context(s) with overflow evidence", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(frames: &FrameTable, locs: &[&str]) -> CallingContext {
        CallingContext::from_locations(frames, locs.iter().copied())
    }

    #[test]
    fn record_and_contains() {
        let frames = FrameTable::new();
        let a = ctx(&frames, &["a.c:1", "main.c:9"]);
        let b = ctx(&frames, &["b.c:2", "main.c:9"]);
        let mut store = EvidenceStore::new();
        assert!(store.record(&a, &frames));
        assert!(!store.record(&a, &frames), "duplicate is not new");
        assert!(store.contains(&a, &frames));
        assert!(!store.contains(&b, &frames));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn signature_is_order_sensitive() {
        let frames = FrameTable::new();
        let a = ctx(&frames, &["x.c:1", "y.c:2"]);
        let b = ctx(&frames, &["y.c:2", "x.c:1"]);
        assert_ne!(
            EvidenceStore::signature(&a, &frames),
            EvidenceStore::signature(&b, &frames)
        );
        assert_eq!(EvidenceStore::signature(&a, &frames), "x.c:1|y.c:2");
    }

    #[test]
    fn save_and_load_round_trip() {
        let frames = FrameTable::new();
        let dir = std::env::temp_dir().join("csod-evidence-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evidence.txt");
        let mut store = EvidenceStore::new();
        store.record(&ctx(&frames, &["mem.c:312", "req.c:577"]), &frames);
        store.record(&ctx(&frames, &["gz.c:804"]), &frames);
        store.save(&path).unwrap();
        let loaded = EvidenceStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_empty() {
        let path = std::env::temp_dir().join("csod-evidence-definitely-missing.txt");
        let store = EvidenceStore::load(&path).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let dir = std::env::temp_dir().join("csod-evidence-test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evidence.txt");
        fs::write(&path, "# header\n\nsig.c:1|main.c:2\n  \n").unwrap();
        let store = EvidenceStore::load(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.iter().next(), Some("sig.c:1|main.c:2"));
        fs::remove_file(&path).unwrap();
    }
}
