//! Bug reports (paper Section III-D2 and Figure 6).
//!
//! CSOD reports two calling contexts for every detected overflow: the
//! context of the overflowing statement (from the SIGTRAP handler's
//! backtrace) and the allocation context of the overflowed object (from
//! the context table). Reports never contain false positives — a
//! watchpoint only fires on a genuine access beyond the object boundary.

use crate::sampling::CtxId;
use csod_ctx::{CallingContext, FrameTable};
use sim_machine::{AccessKind, ThreadId, VirtAddr, VirtInstant};
use std::fmt;

/// How an overflow was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionMethod {
    /// A hardware watchpoint fired at the moment of the access — the
    /// precise path that yields the overflowing statement.
    Watchpoint,
    /// A corrupted canary was found when the object was freed
    /// (evidence-based detection, Section IV-B).
    CanaryOnFree,
    /// A corrupted canary was found by the Termination Handling Unit at
    /// the end of the execution.
    CanaryAtExit,
}

impl fmt::Display for DetectionMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionMethod::Watchpoint => f.write_str("hardware watchpoint"),
            DetectionMethod::CanaryOnFree => f.write_str("canary check at deallocation"),
            DetectionMethod::CanaryAtExit => f.write_str("canary check at exit"),
        }
    }
}

/// One detected buffer overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverflowReport {
    /// Over-read or over-write. Canary evidence always implies a write.
    pub kind: AccessKind,
    /// Detection path.
    pub method: DetectionMethod,
    /// The thread that performed the overflowing access (watchpoint
    /// path) or discovered the evidence.
    pub thread: ThreadId,
    /// User-visible start of the overflowed object.
    pub object_start: VirtAddr,
    /// The boundary word that was touched or corrupted.
    pub boundary_addr: VirtAddr,
    /// Full calling context of the overflowing statement; only the
    /// watchpoint path can know it.
    pub overflow_site: Option<CallingContext>,
    /// Allocation calling context of the overflowed object.
    pub alloc_context: CallingContext,
    /// Dense id of the allocation context.
    pub ctx_id: CtxId,
    /// Virtual time of detection.
    pub at: VirtInstant,
}

impl OverflowReport {
    /// Renders the report in the format of the paper's Figure 6.
    ///
    /// # Examples
    ///
    /// ```
    /// use csod_core::{DetectionMethod, OverflowReport};
    /// use csod_core::CtxId;
    /// use csod_ctx::{CallingContext, FrameTable};
    /// use sim_machine::{AccessKind, ThreadId, VirtAddr, VirtInstant};
    ///
    /// let frames = FrameTable::new();
    /// let report = OverflowReport {
    ///     kind: AccessKind::Read,
    ///     method: DetectionMethod::Watchpoint,
    ///     thread: ThreadId::MAIN,
    ///     object_start: VirtAddr::new(0x1000),
    ///     boundary_addr: VirtAddr::new(0x1040),
    ///     overflow_site: Some(CallingContext::from_locations(
    ///         &frames,
    ///         ["GLIBC/memcpy-sse2-unaligned.S:81", "OPENSSL/ssl/t1_lib.c:2588"],
    ///     )),
    ///     alloc_context: CallingContext::from_locations(
    ///         &frames,
    ///         ["OPENSSL/crypto/mem.c:312", "NGINX/http/ngx_http_request.c:577"],
    ///     ),
    ///     ctx_id: CtxId::from_index(0),
    ///     at: VirtInstant::BOOT,
    /// };
    /// let text = report.render(&frames);
    /// assert!(text.starts_with("A buffer over-read problem is detected at:"));
    /// assert!(text.contains("This object is allocated at:"));
    /// ```
    pub fn render(&self, frames: &FrameTable) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "A buffer {} problem is detected at:\n",
            self.kind.overflow_noun()
        ));
        match &self.overflow_site {
            Some(site) => out.push_str(&site.render(frames)),
            None => out.push_str(&format!(
                "<overflow site unavailable: detected by {}>\n",
                self.method
            )),
        }
        out.push_str("\nThis object is allocated at:\n");
        out.push_str(&self.alloc_context.render(frames));
        out
    }
}

impl fmt::Display for OverflowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of object at {} ({}, {}, {})",
            self.kind.overflow_noun(),
            self.object_start,
            self.method,
            self.thread,
            self.ctx_id
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(frames: &FrameTable, method: DetectionMethod, kind: AccessKind) -> OverflowReport {
        OverflowReport {
            kind,
            method,
            thread: ThreadId::MAIN,
            object_start: VirtAddr::new(0x1000),
            boundary_addr: VirtAddr::new(0x1010),
            overflow_site: matches!(method, DetectionMethod::Watchpoint).then(|| {
                CallingContext::from_locations(frames, ["libhx/string.c:30", "app.c:9"])
            }),
            alloc_context: CallingContext::from_locations(frames, ["alloc.c:5", "main.c:2"]),
            ctx_id: CtxId::from_index(3),
            at: VirtInstant::BOOT,
        }
    }

    #[test]
    fn watchpoint_report_shows_both_contexts() {
        let frames = FrameTable::new();
        let r = sample(&frames, DetectionMethod::Watchpoint, AccessKind::Write);
        let text = r.render(&frames);
        assert!(text.contains("over-write problem is detected at:"));
        assert!(text.contains("libhx/string.c:30"));
        assert!(text.contains("This object is allocated at:"));
        assert!(text.contains("alloc.c:5"));
    }

    #[test]
    fn canary_report_explains_missing_site() {
        let frames = FrameTable::new();
        let r = sample(&frames, DetectionMethod::CanaryOnFree, AccessKind::Write);
        let text = r.render(&frames);
        assert!(text.contains("overflow site unavailable"));
        assert!(text.contains("canary check at deallocation"));
        assert!(text.contains("alloc.c:5"));
    }

    #[test]
    fn display_is_compact() {
        let frames = FrameTable::new();
        let r = sample(&frames, DetectionMethod::CanaryAtExit, AccessKind::Write);
        let line = r.to_string();
        assert!(line.contains("over-write"));
        assert!(line.contains("ctx#3"));
        assert!(!line.contains('\n'));
    }
}
