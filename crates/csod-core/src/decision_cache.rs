//! Per-thread memoization of sampling verdicts.
//!
//! The sampling unit's context table is striped, but a probability
//! lookup still costs a lock acquisition plus open-addressed probe on
//! *every* allocation — the single hottest path in the tool. A context's
//! probability, however, barely moves between consecutive allocations
//! (plain degradation is −10 ppm per allocation out of an initial
//! 500,000); the only *step changes* are discrete events: a watch
//! install, evidence pinning, quarantine, burst-throttle entry or exit,
//! reviving, and a priors update.
//!
//! [`DecisionCache`] exploits that: each thread memoizes the last
//! verdict per context and re-draws against the *cached* probability
//! for up to `refresh − 1` subsequent allocations, touching the shared
//! table only every `refresh` allocations. Correctness is anchored by
//! the sampling unit's probability epoch ([`crate::SamplingUnit::epoch`]):
//! every step-change event bumps it, and the cache compares epochs
//! before every use, discarding all memoized verdicts wholesale on
//! mismatch. Time-driven transitions the epoch cannot see coming —
//! burst-throttle exit, revive eligibility — are covered by an entry
//! time-to-live of one burst window. Allocations that were decided from the cache are counted
//! as `pending` per entry and absorbed into the sampler (allocation
//! counts, burst windows, degradation) at the next refresh or flush, so
//! the probability schedule converges to the uncached one with an error
//! bounded by `refresh × degrade_per_alloc_ppm`.
//!
//! With `refresh == 1` every decision goes to the shared table — the
//! pre-cache behaviour, kept as a comparison mode for the fast-path
//! bench and the parity tests.

use crate::fastmap::FastMap;
use crate::sampling::{AllocDecision, SamplingUnit};
use csod_ctx::{CallingContext, ContextKey};
use csod_rng::Arc4Random;
use sim_machine::VirtInstant;

/// A memoized sampling verdict for one context.
#[derive(Debug, Clone, Copy)]
struct CachedVerdict {
    /// The last authoritative decision (carries ctx id, probability,
    /// prior watches, static prior).
    decision: AllocDecision,
    /// When the authoritative decision was taken. Entries expire after
    /// one burst window: burst-throttle exit and revive eligibility are
    /// *time*-driven, invisible to the allocation-count epoch, so a
    /// verdict must never be reused across a window boundary.
    filled_at: VirtInstant,
    /// Cache-hit allocations not yet absorbed into the sampler.
    pending: u32,
    /// Hits remaining before the next forced refresh.
    uses_left: u32,
}

/// Counters describing how a [`DecisionCache`] behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Decisions served from the cache (no shared-table access).
    pub hits: u64,
    /// Decisions that went to the sampling unit (first sight, refresh
    /// due, or right after an invalidation).
    pub misses: u64,
    /// Whole-cache invalidations caused by a probability-epoch change.
    pub invalidations: u64,
}

/// A per-thread cache of sampling verdicts keyed by calling context.
///
/// Owned by exactly one thread; all methods take `&mut self` and the
/// only shared state touched is the sampling unit passed in, so the
/// fast path (a cache hit) acquires no lock at all.
#[derive(Debug)]
pub struct DecisionCache {
    map: FastMap<ContextKey, CachedVerdict>,
    /// The sampler epoch the memoized verdicts were filled at.
    epoch: u64,
    /// Decisions per context between authoritative refreshes; `1`
    /// disables memoization entirely.
    refresh: u32,
    stats: DecisionCacheStats,
}

impl DecisionCache {
    /// Creates a cache that consults the shared table every `refresh`
    /// allocations per context.
    ///
    /// # Panics
    ///
    /// Panics if `refresh` is zero (the config layer rejects it first).
    pub fn new(refresh: u32) -> Self {
        assert!(refresh > 0, "decision-cache refresh must be at least 1");
        DecisionCache {
            map: FastMap::new(),
            epoch: 0,
            refresh,
            stats: DecisionCacheStats::default(),
        }
    }

    /// Decides one allocation, from the cache when the memoized verdict
    /// is still inside its refresh budget and the sampler's probability
    /// epoch has not moved, from the sampling unit otherwise.
    ///
    /// Cache hits still draw the thread's generator once, so runs stay
    /// deterministic per seed regardless of hit pattern.
    pub fn on_allocation(
        &mut self,
        sampler: &SamplingUnit,
        key: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        ctx: &CallingContext,
        known_overflow: impl FnOnce(&CallingContext) -> bool,
    ) -> AllocDecision {
        let current = sampler.epoch();
        if current != self.epoch {
            self.invalidate(sampler, current);
        }
        let ttl = sampler.params().burst_window;
        if self.refresh > 1 {
            if let Some(entry) = self.map.get_mut(key) {
                if entry.uses_left > 0 && now.saturating_duration_since(entry.filled_at) <= ttl {
                    entry.uses_left -= 1;
                    entry.pending += 1;
                    self.stats.hits += 1;
                    let mut d = entry.decision;
                    d.first_seen = false;
                    // One-shot event flags must not replay on every hit.
                    d.revived = false;
                    d.entered_burst = false;
                    d.wants_watch = rng.chance_ppm(d.probability_ppm);
                    return d;
                }
            }
        }
        // Miss, refresh due, or memoization disabled: take the pending
        // batch to the sampling unit and memoize the fresh verdict. The
        // count is moved out of the entry, not copied — if the fresh
        // decision bumps the epoch (burst, revive) the invalidation
        // below must not absorb the same allocations twice.
        let pending = self
            .map
            .get_mut(key)
            .map_or(0, |e| std::mem::take(&mut e.pending));
        let decision =
            sampler.on_allocation_batched(key, now, rng, ctx, known_overflow, pending);
        self.stats.misses += 1;
        // The decision itself may have stepped a probability (burst
        // entry/exit, revive) and bumped the epoch; re-sync so the next
        // allocation does not immediately invalidate the fresh entry.
        let post = sampler.epoch();
        if post != self.epoch {
            self.invalidate(sampler, post);
        }
        self.map.insert(
            key,
            CachedVerdict {
                decision,
                filled_at: now,
                pending: 0,
                uses_left: self.refresh - 1,
            },
        );
        decision
    }

    /// Drops every memoized verdict, first absorbing all pending
    /// allocation counts into the sampler. Called on epoch changes and
    /// from [`DecisionCache::flush`].
    fn invalidate(&mut self, sampler: &SamplingUnit, new_epoch: u64) {
        self.stats.invalidations += 1;
        self.map.drain(|key, entry| {
            if entry.pending > 0 {
                sampler.absorb_allocations(key, entry.pending);
            }
        });
        self.epoch = new_epoch;
    }

    /// Absorbs all pending allocation counts into the sampler and
    /// empties the cache. Called at thread exit and run end so no
    /// allocation goes unaccounted.
    pub fn flush(&mut self, sampler: &SamplingUnit) {
        if self.map.is_empty() {
            return;
        }
        self.invalidate(sampler, sampler.epoch());
    }

    /// The refresh interval this cache was built with.
    pub fn refresh(&self) -> u32 {
        self.refresh
    }

    /// Number of memoized contexts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no memoized verdicts.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> DecisionCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingParams;
    use csod_ctx::FrameTable;

    fn sampler() -> SamplingUnit {
        SamplingUnit::new(SamplingParams::default())
    }

    fn fixtures(frames: &FrameTable, name: &str) -> (ContextKey, CallingContext) {
        (
            ContextKey::new(frames.intern(name), 0x40),
            CallingContext::from_locations(frames, [name, "main.c:1"]),
        )
    }

    #[test]
    fn hits_between_refreshes_misses_on_schedule() {
        let frames = FrameTable::new();
        let u = sampler();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut cache = DecisionCache::new(4);
        let (k, c) = fixtures(&frames, "a");
        for _ in 0..12 {
            cache.on_allocation(&u, k, VirtInstant::BOOT, &mut rng, &c, |_| false);
        }
        let stats = cache.stats();
        // Misses at allocations 1, 5, 9; hits in between.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 9);
        // Every allocation is accounted for in the sampler, cached or not.
        cache.flush(&u);
        assert_eq!(u.state(k).unwrap().alloc_count, 12);
    }

    #[test]
    fn refresh_one_disables_memoization() {
        let frames = FrameTable::new();
        let u = sampler();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut cache = DecisionCache::new(1);
        let (k, c) = fixtures(&frames, "a");
        for _ in 0..10 {
            cache.on_allocation(&u, k, VirtInstant::BOOT, &mut rng, &c, |_| false);
        }
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 10);
        assert_eq!(u.state(k).unwrap().alloc_count, 10);
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let frames = FrameTable::new();
        let u = sampler();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut cache = DecisionCache::new(64);
        let (ka, ca) = fixtures(&frames, "a");
        let (kb, cb) = fixtures(&frames, "b");
        cache.on_allocation(&u, ka, VirtInstant::BOOT, &mut rng, &ca, |_| false);
        cache.on_allocation(&u, kb, VirtInstant::BOOT, &mut rng, &cb, |_| false);
        cache.on_allocation(&u, ka, VirtInstant::BOOT, &mut rng, &ca, |_| false);
        assert_eq!(cache.len(), 2);
        let inv_before = cache.stats().invalidations;
        // A watch on `a` bumps the epoch: the next use of *either* key
        // flushes the whole cache and re-reads the table.
        u.on_watched(ka);
        let d = cache.on_allocation(&u, kb, VirtInstant::BOOT, &mut rng, &cb, |_| false);
        assert!(!d.first_seen);
        assert_eq!(cache.stats().invalidations, inv_before + 1);
        // The pending hit on `a` was absorbed during the invalidation.
        assert_eq!(u.state(ka).unwrap().alloc_count, 2);
    }

    #[test]
    fn cached_decisions_see_pinned_probability() {
        let frames = FrameTable::new();
        let u = sampler();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut cache = DecisionCache::new(64);
        let (k, c) = fixtures(&frames, "a");
        cache.on_allocation(&u, k, VirtInstant::BOOT, &mut rng, &c, |_| false);
        u.pin_certain(k); // bumps epoch → next decision refreshes
        for _ in 0..64 {
            let d = cache.on_allocation(&u, k, VirtInstant::BOOT, &mut rng, &c, |_| false);
            assert!(d.wants_watch, "pinned context always watched, cached or not");
            assert_eq!(d.probability_ppm, csod_rng::PPM_SCALE);
        }
    }

    #[test]
    fn flush_absorbs_pending_and_empties() {
        let frames = FrameTable::new();
        let u = sampler();
        let mut rng = Arc4Random::from_seed(1, 0);
        let mut cache = DecisionCache::new(100);
        let (k, c) = fixtures(&frames, "a");
        for _ in 0..7 {
            cache.on_allocation(&u, k, VirtInstant::BOOT, &mut rng, &c, |_| false);
        }
        // Only the miss reached the sampler so far.
        assert_eq!(u.state(k).unwrap().alloc_count, 1);
        cache.flush(&u);
        assert!(cache.is_empty());
        assert_eq!(u.state(k).unwrap().alloc_count, 7);
        // Flushing an empty cache is a no-op (no spurious invalidation).
        let inv = cache.stats().invalidations;
        cache.flush(&u);
        assert_eq!(cache.stats().invalidations, inv);
    }
}
