//! # csod-core — Context-Sensitive Overflow Detection
//!
//! A Rust reproduction of **CSOD** (Liu et al., CGO 2019): an always-on
//! heap buffer-overflow detector that guards millions of heap objects with
//! only the four hardware watchpoints an x86-64 thread offers, by sampling
//! *allocation calling contexts* instead of objects.
//!
//! The runtime interposes on `malloc`/`free` (no recompilation — the
//! paper preloads it with `LD_PRELOAD`), assigns every allocation context
//! an adaptive watch probability, places watchpoints on the word just
//! past sampled objects, and reports the full calling context of both the
//! overflowing statement and the overflowed object's allocation when a
//! watchpoint fires — with zero false positives and ~6.7 % overhead.
//!
//! The units of the paper's Figure 1 map to modules:
//!
//! | Paper unit | Here |
//! |---|---|
//! | Alloc/Dealloc Monitoring | [`Csod::malloc`], [`Csod::free`] |
//! | Sampling Management | [`SamplingUnit`] |
//! | Watchpoint Management | [`WatchpointManager`], [`ReplacementPolicy`] |
//! | Signal Handling | [`Csod::poll`], [`OverflowReport`] |
//! | Canary Management | [`CanaryUnit`], [`ObjectLayout`] |
//! | Termination Handling | [`Csod::finish`], [`EvidenceStore`] |
//!
//! See the crate-level example on [`Csod`] for an end-to-end detection.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::missing_panics_doc)]
#![warn(clippy::perf)]

mod canary;
mod config;
mod decision_cache;
mod degradation;
mod evidence;
mod fastmap;
mod policy;
mod report;
mod runtime;
mod sampling;
mod summary;
mod trap;
mod watchpoints;

pub use canary::{CanaryStatus, CanaryUnit, ObjectHeader, ObjectLayout, CANARY_SIZE, HEADER_SIZE, OBJECT_IDENTIFIER};
pub use config::{
    paper, AnalysisPriors, CsodConfig, FastPathParams, ParseRiskClassError, RiskClass,
    SamplingParams, TraceParams, WatchBackend,
};
pub use decision_cache::{DecisionCache, DecisionCacheStats};
pub use fastmap::{FastKey, FastMap};
pub use degradation::{
    DegradationManager, DegradationParams, DegradationStats, DetectionMode, FailureVerdict,
};
pub use evidence::EvidenceStore;
pub use policy::{ParsePolicyError, ReplacementPolicy};
pub use report::{DetectionMethod, OverflowReport};
pub use runtime::{Csod, CsodError, CsodStats};
pub use sampling::{AllocDecision, CtxId, CtxState, SamplingUnit};
pub use summary::RunSummary;
pub use trap::{ReportPipeline, TrapReport};
pub use watchpoints::{
    InstallOutcome, WatchCandidate, WatchFilter, WatchedObject, WatchpointManager, WatchpointStats,
};
