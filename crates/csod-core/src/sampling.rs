//! The Sampling Management Unit (paper Sections III-B and IV-A).
//!
//! Every allocation calling context carries a probability of being
//! watched. The unit maintains those probabilities with the paper's
//! adaptive rules:
//!
//! * every new context starts at 50 % — "treated … as if it were equally
//!   likely to either contain a bug or be bug-free";
//! * **degradation on each allocation**: −0.001 % per allocation from the
//!   context, watched or not;
//! * **degradation after each watch**: halved whenever an object of the
//!   context is watched;
//! * a **floor** of 0.001 % so every context keeps some chance;
//! * **burst throttling**: more than 5,000 allocations inside a
//!   10-second window drop the context to 0.0001 % until the window
//!   elapses;
//! * **reviving** (Section IV-A): floor-level contexts are randomly
//!   boosted back to 0.01 % after a quiet period, so bugs gated on rare
//!   inputs keep a chance across long runs;
//! * **evidence pinning** (Section IV-B): once a corrupted canary proves
//!   a context overflows, its probability is pinned at 100 %.

use crate::config::{AnalysisPriors, RiskClass, SamplingParams};
use csod_ctx::{CallingContext, ContextKey, ContextTable, ContextTree, CtxNodeId};
use csod_rng::{Arc4Random, PPM_SCALE};
use sim_machine::VirtInstant;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Dense identifier assigned to each distinct calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(u32);

impl CtxId {
    /// Builds an id from a raw index (workload registries and tests).
    pub const fn from_index(index: u32) -> Self {
        CtxId(index)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// Per-context sampling state.
#[derive(Debug, Clone)]
pub struct CtxState {
    /// Dense id of this context.
    pub id: CtxId,
    /// The full backtrace, interned in the unit's calling-context tree
    /// (shared suffixes stored once; see [`ContextTree`]).
    pub node: CtxNodeId,
    /// Current probability in ppm.
    probability_ppm: u32,
    /// Total allocations from this context.
    pub alloc_count: u64,
    /// Times an object of this context was watched.
    pub watch_count: u64,
    /// Evidence pinning: probability stays at 100 %.
    pub pinned_certain: bool,
    /// Static verdict from the `csod-analyze` pre-pass, if one was
    /// loaded for this context.
    pub prior: Option<RiskClass>,
    window_start: VirtInstant,
    window_allocs: u32,
    burst_until: Option<VirtInstant>,
    floor_since: Option<VirtInstant>,
}

impl CtxState {
    /// Current probability in parts per million.
    pub fn probability_ppm(&self) -> u32 {
        self.probability_ppm
    }
}

/// Outcome of the sampling decision for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDecision {
    /// The context's dense id.
    pub ctx_id: CtxId,
    /// `true` if this context was seen for the first time (the caller
    /// pays the `backtrace` cost exactly then).
    pub first_seen: bool,
    /// The probability used for the decision, in ppm.
    pub probability_ppm: u32,
    /// Whether the sampler wants this object watched. The watchpoint
    /// manager may still watch a rejected object when a register is free
    /// ("installation due to availability").
    pub wants_watch: bool,
    /// How many times this context had been watched before this
    /// allocation. The availability rule only bypasses the probability
    /// for never-watched contexts ("the first few objects"), which keeps
    /// the watched-times count near the context count as in Table IV.
    pub prior_watches: u64,
    /// Static verdict the unit applied to this context, if any. The
    /// runtime uses it to deny the availability bypass to proven-safe
    /// contexts and to account saved watch slots.
    pub prior: Option<RiskClass>,
    /// `true` when *this* decision revived the context from the floor
    /// (Section IV-A). One-shot: decision-cache hits replay the decision
    /// with the flag cleared, so the event is observed exactly once.
    pub revived: bool,
    /// `true` when *this* decision tripped the burst throttle. One-shot
    /// like [`AllocDecision::revived`].
    pub entered_burst: bool,
}

/// Probability in ppm of at least one success across `n` independent
/// Bernoulli trials of per-trial probability `p_ppm`:
/// `1 − (1 − p)^n`. Used so one batched decision gives time-gated
/// random events (reviving) the same expected frequency as `n`
/// individual decisions.
fn compound_chance_ppm(p_ppm: u32, n: u32) -> u32 {
    if n <= 1 || p_ppm >= PPM_SCALE {
        return p_ppm.min(PPM_SCALE);
    }
    let scale = u64::from(PPM_SCALE);
    let q = scale - u64::from(p_ppm);
    let mut miss_all = scale;
    for _ in 0..n {
        miss_all = miss_all * q / scale;
    }
    u32::try_from(scale - miss_all).expect("result is at most PPM_SCALE")
}

/// The Sampling Management Unit.
#[derive(Debug)]
pub struct SamplingUnit {
    params: SamplingParams,
    priors: AnalysisPriors,
    table: ContextTable<CtxState>,
    tree: ContextTree,
    next_id: AtomicU32,
    /// Probability-epoch counter. Bumped by every event that can change
    /// a context's watch probability outside the plain per-allocation
    /// degradation: a watch install ([`SamplingUnit::on_watched`]),
    /// evidence pinning, quarantine, burst-throttle entry and exit,
    /// reviving, and a priors update. Per-thread decision caches
    /// compare this against the epoch they were filled at and drop
    /// every memoized verdict on mismatch.
    epoch: AtomicU64,
}

impl SamplingUnit {
    /// Creates a unit with the given constants and no static priors.
    pub fn new(params: SamplingParams) -> Self {
        SamplingUnit::with_priors(params, AnalysisPriors::none())
    }

    /// Creates a unit primed with static analysis verdicts: proven-safe
    /// contexts start at the floor, suspicious contexts start boosted
    /// and are exempt from burst throttling, unknown contexts follow
    /// the paper's default schedule.
    pub fn with_priors(params: SamplingParams, priors: AnalysisPriors) -> Self {
        SamplingUnit {
            params,
            priors,
            table: ContextTable::new(),
            tree: ContextTree::new(),
            next_id: AtomicU32::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The sampling constants in effect.
    pub fn params(&self) -> &SamplingParams {
        &self.params
    }

    /// The static prior table in effect (empty when no analysis ran).
    pub fn priors(&self) -> &AnalysisPriors {
        &self.priors
    }

    /// The current probability epoch. Any change to this value means
    /// memoized sampling verdicts may be stale and must be refreshed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Replaces the static priors at run time (e.g. a `csod-analyze`
    /// report arriving after start-up) and re-bases every already-seen
    /// context that gained a verdict: proven-safe contexts drop to the
    /// floor, suspicious contexts are boosted to at least the
    /// suspicious level. Evidence pinning still outranks both. Bumps
    /// the probability epoch so decision caches refresh.
    pub fn update_priors(&mut self, priors: AnalysisPriors) {
        let params = self.params;
        self.table.for_each_mut(|key, state| {
            let class = priors.class_of(key);
            state.prior = class;
            if state.pinned_certain {
                return;
            }
            match class {
                Some(RiskClass::ProvenSafe) => {
                    state.probability_ppm = params.floor_ppm;
                }
                Some(RiskClass::Suspicious) => {
                    state.probability_ppm = state.probability_ppm.max(priors.suspicious_ppm);
                }
                Some(RiskClass::Unknown) | None => {}
            }
        });
        self.priors = priors;
        self.bump_epoch();
    }

    /// Handles one allocation from `key` at virtual time `now`.
    ///
    /// `ctx` is the full backtrace; it is interned (and `known_overflow`
    /// consulted, to pre-pin contexts recorded by a previous execution's
    /// evidence file) only when the key is new, so the caller charges
    /// the expensive `backtrace` cost exactly when
    /// [`AllocDecision::first_seen`] comes back `true`.
    pub fn on_allocation(
        &self,
        key: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        ctx: &CallingContext,
        known_overflow: impl FnOnce(&CallingContext) -> bool,
    ) -> AllocDecision {
        self.on_allocation_batched(key, now, rng, ctx, known_overflow, 0)
    }

    /// Like [`SamplingUnit::on_allocation`], but first absorbs `pending`
    /// earlier allocations from the same context that bypassed the table
    /// through a per-thread decision cache: their per-allocation
    /// degradation and burst-window counts are applied in one step
    /// before this allocation's decision is made.
    pub fn on_allocation_batched(
        &self,
        key: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        ctx: &CallingContext,
        known_overflow: impl FnOnce(&CallingContext) -> bool,
        pending: u32,
    ) -> AllocDecision {
        let params = self.params;
        let priors = &self.priors;
        let next_id = &self.next_id;
        let tree = &self.tree;
        let epoch = &self.epoch;
        self.table.with_entry_tracked(
            key,
            || {
                let pinned = known_overflow(ctx);
                let prior = priors.class_of(key);
                // Evidence from a real execution outranks a static
                // verdict: a pinned context starts (and stays) at 100 %
                // even if the analyzer called it proven-safe.
                let initial = if pinned {
                    PPM_SCALE
                } else {
                    match prior {
                        Some(RiskClass::ProvenSafe) => params.floor_ppm,
                        Some(RiskClass::Suspicious) => priors.suspicious_ppm,
                        Some(RiskClass::Unknown) | None => params.initial_ppm,
                    }
                };
                CtxState {
                    id: CtxId(next_id.fetch_add(1, Ordering::Relaxed)),
                    node: tree.intern(ctx),
                    probability_ppm: initial,
                    alloc_count: 0,
                    watch_count: 0,
                    pinned_certain: pinned,
                    prior,
                    window_start: now,
                    window_allocs: 0,
                    burst_until: None,
                    floor_since: None,
                }
            },
            |state, first_seen| {
                // 0. Absorb allocations that bypassed the table through a
                // per-thread decision cache: their counts and degradation
                // are applied in one step, so a cached context's schedule
                // converges to the uncached one at every refresh.
                if pending > 0 {
                    state.alloc_count += u64::from(pending);
                    state.window_allocs = state.window_allocs.saturating_add(pending);
                    if !state.pinned_certain
                        && state.burst_until.is_none()
                        && state.probability_ppm > params.floor_ppm
                    {
                        state.probability_ppm = state
                            .probability_ppm
                            .saturating_sub(params.degrade_per_alloc_ppm.saturating_mul(pending))
                            .max(params.floor_ppm);
                    }
                }

                // Pending allocations predate this decision: they only
                // stand in for individual revive draws if the context was
                // already quietly at the floor when they happened — not
                // while burst-throttled, and not before the quiet period
                // elapsed. Judged before burst exit below so allocations
                // made *inside* a burst window never earn revive draws.
                let pending_revive_eligible = !state.pinned_certain
                    && state.burst_until.is_none()
                    && state.probability_ppm <= params.floor_ppm
                    && state.floor_since.is_some_and(|since| {
                        now.saturating_duration_since(since) >= params.revive_period
                    });

                // 1. Burst-window bookkeeping.
                if now.saturating_duration_since(state.window_start) > params.burst_window {
                    state.window_start = now;
                    state.window_allocs = 0;
                }
                if let Some(until) = state.burst_until {
                    if now >= until {
                        // Window elapsed: "the probability … will again be
                        // increased to the lower bound".
                        state.burst_until = None;
                        if !state.pinned_certain {
                            state.probability_ppm = state.probability_ppm.max(params.floor_ppm);
                        }
                        epoch.fetch_add(1, Ordering::AcqRel);
                    }
                }
                state.window_allocs += 1;
                // Suspicious contexts are exempt from burst throttling:
                // an allocation burst from a statically risky site is
                // exactly when the watchpoints should stay on it.
                let mut entered_burst = false;
                if !state.pinned_certain
                    && state.prior != Some(RiskClass::Suspicious)
                    && state.burst_until.is_none()
                    && state.window_allocs > params.burst_threshold
                {
                    state.probability_ppm = params.burst_ppm;
                    state.burst_until = Some(state.window_start + params.burst_window);
                    entered_burst = true;
                    epoch.fetch_add(1, Ordering::AcqRel);
                }

                // 2. Reviving (Section IV-A): floor-level contexts are
                // randomly boosted after a quiet period. When the pending
                // batch was itself revive-eligible, this decision stands
                // in for `pending + 1` individual ones, so the revive
                // draw uses the compounded chance of at least one success
                // across that many trials — reviving fires at the same
                // expected frequency cached or not.
                let revive_trials = if pending_revive_eligible {
                    pending + 1
                } else {
                    1
                };
                let mut revived = false;
                if !state.pinned_certain && state.burst_until.is_none() {
                    if state.probability_ppm <= params.floor_ppm {
                        match state.floor_since {
                            None => state.floor_since = Some(now),
                            Some(since)
                                if now.saturating_duration_since(since)
                                    >= params.revive_period
                                    && rng.chance_ppm(compound_chance_ppm(
                                        params.revive_chance_ppm,
                                        revive_trials,
                                    )) =>
                            {
                                state.probability_ppm = params.revive_ppm;
                                state.floor_since = None;
                                revived = true;
                                epoch.fetch_add(1, Ordering::AcqRel);
                            }
                            Some(_) => {}
                        }
                    } else {
                        state.floor_since = None;
                    }
                }

                // 3. The decision itself, at the pre-degradation probability.
                let probability_ppm = state.probability_ppm;
                let wants_watch =
                    state.pinned_certain || rng.chance_ppm(probability_ppm);

                // 4. Degradation on each allocation, floor-bounded.
                state.alloc_count += 1;
                if !state.pinned_certain
                    && state.burst_until.is_none()
                    && state.probability_ppm > params.floor_ppm
                {
                    state.probability_ppm = state
                        .probability_ppm
                        .saturating_sub(params.degrade_per_alloc_ppm)
                        .max(params.floor_ppm);
                }

                AllocDecision {
                    ctx_id: state.id,
                    first_seen,
                    probability_ppm,
                    wants_watch,
                    prior_watches: state.watch_count,
                    prior: state.prior,
                    revived,
                    entered_burst,
                }
            },
        )
    }

    /// Absorbs `count` allocations from `key` that bypassed the table
    /// through a per-thread decision cache and will see no fresh
    /// decision (cache flushed at thread exit or run end): counts and
    /// per-allocation degradation are applied, burst detection is left
    /// to the next timed decision.
    pub fn absorb_allocations(&self, key: ContextKey, count: u32) {
        if count == 0 {
            return;
        }
        let params = self.params;
        self.table.with_existing(key, |state| {
            state.alloc_count += u64::from(count);
            state.window_allocs = state.window_allocs.saturating_add(count);
            if !state.pinned_certain
                && state.burst_until.is_none()
                && state.probability_ppm > params.floor_ppm
            {
                state.probability_ppm = state
                    .probability_ppm
                    .saturating_sub(params.degrade_per_alloc_ppm.saturating_mul(count))
                    .max(params.floor_ppm);
            }
        });
    }

    /// Records that an object of `key` was watched: halves the context's
    /// probability ("degradation after each watch"). Bumps the
    /// probability epoch.
    pub fn on_watched(&self, key: ContextKey) {
        let floor = self.params.floor_ppm;
        let hit = self.table.with_existing(key, |state| {
            state.watch_count += 1;
            if !state.pinned_certain {
                state.probability_ppm = (state.probability_ppm / 2).max(floor);
            }
        });
        if hit.is_some() {
            self.bump_epoch();
        }
    }

    /// Drops `key` to the probability floor — called when the degradation
    /// manager benches a context whose installs keep failing, so the
    /// sampler stops proposing it while the quarantine lasts. Evidence-
    /// pinned contexts are exempt: a proven overflow outranks backend
    /// trouble. Bumps the probability epoch.
    pub fn quarantine(&self, key: ContextKey) {
        let floor = self.params.floor_ppm;
        let hit = self.table.with_existing(key, |state| {
            if !state.pinned_certain {
                state.probability_ppm = floor;
            }
        });
        if hit.is_some() {
            self.bump_epoch();
        }
    }

    /// Pins `key` at 100 % — called when canary evidence proves the
    /// context overflows (Section IV-B). Bumps the probability epoch.
    pub fn pin_certain(&self, key: ContextKey) {
        let hit = self.table.with_existing(key, |state| {
            state.pinned_certain = true;
            state.probability_ppm = PPM_SCALE;
        });
        if hit.is_some() {
            self.bump_epoch();
        }
    }

    /// Current probability of `key`, if seen.
    pub fn probability_ppm(&self, key: ContextKey) -> Option<u32> {
        self.table.with_existing(key, |s| s.probability_ppm)
    }

    /// The full calling context of `key`, if seen (materialized from
    /// the context tree).
    pub fn full_context(&self, key: ContextKey) -> Option<CallingContext> {
        let node = self.table.with_existing(key, |s| s.node)?;
        Some(self.tree.materialize(node))
    }

    /// The calling-context tree storing the full backtraces.
    pub fn tree(&self) -> &ContextTree {
        &self.tree
    }

    /// State snapshot of `key`, if seen.
    pub fn state(&self, key: ContextKey) -> Option<CtxState> {
        self.table.with_existing(key, |s| s.clone())
    }

    /// Number of distinct contexts observed (Table III/IV "CC" column).
    pub fn distinct_contexts(&self) -> usize {
        self.table.len()
    }

    /// Snapshot of all context states for end-of-run reporting.
    pub fn snapshot(&self) -> Vec<(ContextKey, CtxState)> {
        self.table.snapshot()
    }

    /// Total allocations across all contexts.
    pub fn total_allocations(&self) -> u64 {
        let mut total = 0;
        self.table.for_each(|_, s| total += s.alloc_count);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;
    use sim_machine::VirtDuration;

    fn unit() -> SamplingUnit {
        SamplingUnit::new(SamplingParams::default())
    }

    fn key(frames: &FrameTable, name: &str) -> ContextKey {
        ContextKey::new(frames.intern(name), 0x40)
    }

    fn ctx(frames: &FrameTable, name: &str) -> CallingContext {
        CallingContext::from_locations(frames, [name, "main.c:1"])
    }

    fn alloc(
        unit: &SamplingUnit,
        k: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        frames: &FrameTable,
    ) -> AllocDecision {
        unit.on_allocation(k, now, rng, &ctx(frames, "site"), |_| false)
    }

    #[test]
    fn new_context_starts_at_fifty_percent() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        assert!(d.first_seen);
        assert_eq!(d.probability_ppm, 500_000);
        assert_eq!(d.ctx_id, CtxId(0));
        // Second allocation: no longer first seen, degraded by 10 ppm.
        let d2 = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        assert!(!d2.first_seen);
        assert_eq!(d2.probability_ppm, 499_990);
    }

    #[test]
    fn ids_are_dense_per_context() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let a = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        let b = alloc(&u, key(&frames, "b"), VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(a.ctx_id, CtxId(0));
        assert_eq!(b.ctx_id, CtxId(1));
        assert_eq!(u.distinct_contexts(), 2);
    }

    #[test]
    fn context_is_interned_only_on_first_sight() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let c = ctx(&frames, "a");
        let mut known_checks = 0;
        let mut firsts = 0;
        for _ in 0..5 {
            let d = u.on_allocation(k, VirtInstant::BOOT, &mut rng, &c, |_| {
                known_checks += 1;
                false
            });
            if d.first_seen {
                firsts += 1;
            }
        }
        assert_eq!(firsts, 1, "first_seen reported exactly once");
        assert_eq!(known_checks, 1, "evidence consulted exactly once");
        let nodes_after_five = u.tree().node_count();
        u.on_allocation(k, VirtInstant::BOOT, &mut rng, &c, |_| false);
        assert_eq!(u.tree().node_count(), nodes_after_five, "no re-interning");
    }

    #[test]
    fn epoch_bumps_on_probability_changing_events() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let e0 = u.epoch();
        // Plain allocations do not bump the epoch (degradation drift is
        // tolerated by the caches)...
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(u.epoch(), e0);
        // ...but every probability-changing event does.
        u.on_watched(k);
        let e1 = u.epoch();
        assert!(e1 > e0, "watch install bumps the epoch");
        u.quarantine(k);
        let e2 = u.epoch();
        assert!(e2 > e1, "quarantine bumps the epoch");
        u.pin_certain(k);
        let e3 = u.epoch();
        assert!(e3 > e2, "evidence pinning bumps the epoch");
        // Events on unseen keys are no-ops and leave the epoch alone.
        u.on_watched(key(&frames, "never-seen"));
        assert_eq!(u.epoch(), e3);
    }

    #[test]
    fn epoch_bumps_on_burst_entry_and_exit() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "bursty");
        let t0 = VirtInstant::BOOT;
        let e0 = u.epoch();
        for _ in 0..5_001 {
            alloc(&u, k, t0, &mut rng, &frames);
        }
        let e_burst = u.epoch();
        assert!(e_burst > e0, "burst entry bumps the epoch");
        let later = t0 + VirtDuration::from_secs(11);
        alloc(&u, k, later, &mut rng, &frames);
        assert!(u.epoch() > e_burst, "burst exit bumps the epoch");
    }

    #[test]
    fn priors_update_bumps_epoch_and_rebases() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let mut u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "reclassified");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        let e0 = u.epoch();
        u.update_priors(AnalysisPriors::from_classes([(k, RiskClass::ProvenSafe)]));
        assert!(u.epoch() > e0, "priors update bumps the epoch");
        assert_eq!(
            u.probability_ppm(k).unwrap(),
            SamplingParams::default().floor_ppm,
            "already-seen context re-based to the floor"
        );
        assert_eq!(u.state(k).unwrap().prior, Some(RiskClass::ProvenSafe));
    }

    #[test]
    fn batched_pending_matches_individual_degradation() {
        let frames = FrameTable::new();
        let a = unit();
        let b = unit();
        let mut rng_a = Arc4Random::from_seed(1, 0);
        let mut rng_b = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let c = ctx(&frames, "site");
        // Unit A: 10 individual allocations. Unit B: one allocation, then
        // one with 8 pending absorbed first, then one more — same totals.
        for _ in 0..10 {
            a.on_allocation(k, VirtInstant::BOOT, &mut rng_a, &c, |_| false);
        }
        b.on_allocation(k, VirtInstant::BOOT, &mut rng_b, &c, |_| false);
        b.on_allocation_batched(k, VirtInstant::BOOT, &mut rng_b, &c, |_| false, 8);
        assert_eq!(
            a.state(k).unwrap().alloc_count,
            b.state(k).unwrap().alloc_count,
            "absorbed allocations are counted"
        );
        assert_eq!(
            a.probability_ppm(k).unwrap(),
            b.probability_ppm(k).unwrap(),
            "absorbed degradation matches the per-allocation schedule"
        );
    }

    #[test]
    fn absorb_allocations_counts_and_degrades() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        let before = u.probability_ppm(k).unwrap();
        u.absorb_allocations(k, 5);
        assert_eq!(u.state(k).unwrap().alloc_count, 6);
        assert_eq!(u.probability_ppm(k).unwrap(), before - 5 * 10);
        // Unknown keys and zero counts are no-ops.
        u.absorb_allocations(key(&frames, "never-seen"), 3);
        u.absorb_allocations(k, 0);
        assert_eq!(u.state(k).unwrap().alloc_count, 6);
    }

    #[test]
    fn degradation_reaches_floor_and_stops() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        // 50_000 allocations * 10 ppm = 500_000 ppm of degradation, far
        // past the floor. Keep every allocation in a fresh window to
        // avoid burst throttling.
        let mut now = VirtInstant::BOOT;
        for i in 0..60_000u64 {
            if i % 4_000 == 0 {
                now = now + VirtDuration::from_secs(11);
            }
            alloc(&u, k, now, &mut rng, &frames);
        }
        let p = u.probability_ppm(k).unwrap();
        // Reviving may have bumped it to 0.01%, but never above that.
        assert!(p <= 100, "probability {p} should be at/near the floor");
        assert!(p >= 10, "probability {p} must respect the floor");
    }

    #[test]
    fn watch_halves_probability() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        let before = u.probability_ppm(k).unwrap();
        u.on_watched(k);
        assert_eq!(u.probability_ppm(k).unwrap(), before / 2);
        assert_eq!(u.state(k).unwrap().watch_count, 1);
        // Halving also floors.
        for _ in 0..30 {
            u.on_watched(k);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 10);
    }

    #[test]
    fn burst_throttles_then_recovers_to_floor() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "swaptions");
        let t0 = VirtInstant::BOOT;
        // 5,001 allocations within one window trip the throttle.
        for _ in 0..5_001 {
            alloc(&u, k, t0, &mut rng, &frames);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 1, "0.0001% while bursting");
        // Decisions during the burst use the throttled probability.
        let d = alloc(&u, k, t0 + VirtDuration::from_secs(1), &mut rng, &frames);
        assert_eq!(d.probability_ppm, 1);
        // After the window elapses the probability returns to the floor.
        let later = t0 + VirtDuration::from_secs(11);
        let d = alloc(&u, k, later, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 10, "recovered to the lower bound");
    }

    #[test]
    fn reviving_boosts_floor_contexts() {
        let frames = FrameTable::new();
        let params = SamplingParams {
            revive_chance_ppm: PPM_SCALE, // make reviving deterministic
            ..SamplingParams::default()
        };
        let u = SamplingUnit::new(params);
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        // Drive to the floor: initial 50% degrades by 10ppm per alloc;
        // use watches instead for speed.
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        for _ in 0..30 {
            u.on_watched(k);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 10);
        // First allocation at the floor records the floor time...
        let t1 = VirtInstant::BOOT + VirtDuration::from_secs(1);
        alloc(&u, k, t1, &mut rng, &frames);
        // ...and after the revive period the next allocation boosts.
        let t2 = t1 + VirtDuration::from_secs(11);
        let d = alloc(&u, k, t2, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 100, "revived to 0.01%");
    }

    #[test]
    fn pinned_contexts_always_watch() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        u.pin_certain(k);
        for _ in 0..50 {
            let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
            assert!(d.wants_watch);
            assert_eq!(d.probability_ppm, PPM_SCALE);
        }
        // Watching a pinned context must not halve it.
        u.on_watched(k);
        assert_eq!(u.probability_ppm(k).unwrap(), PPM_SCALE);
    }

    #[test]
    fn known_overflow_prepins_on_first_sight() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let d = u.on_allocation(
            k,
            VirtInstant::BOOT,
            &mut rng,
            &ctx(&frames, "a"),
            |_| true, // the evidence file knows this context
        );
        assert!(d.wants_watch);
        assert_eq!(d.probability_ppm, PPM_SCALE);
        assert!(u.state(k).unwrap().pinned_certain);
    }

    #[test]
    fn decision_statistics_follow_probability() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(77, 0);
        let k = key(&frames, "a");
        // At ~50% the first decisions should be a near-even split.
        let mut watched = 0;
        for _ in 0..1_000 {
            // Reset degradation drift by using many contexts would be
            // complex; tolerate the slight downward drift (~1%).
            if alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames).wants_watch {
                watched += 1;
            }
        }
        assert!((400..600).contains(&watched), "watched {watched}/1000");
    }

    #[test]
    fn proven_safe_prior_starts_at_the_floor() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "safe_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::ProvenSafe)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert!(d.first_seen);
        assert_eq!(d.probability_ppm, SamplingParams::default().floor_ppm);
        assert_eq!(d.prior, Some(RiskClass::ProvenSafe));
        // Contexts without a verdict keep the 50% default.
        let other = key(&frames, "other_site");
        let d2 = alloc(&u, other, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d2.probability_ppm, 500_000);
        assert_eq!(d2.prior, None);
    }

    #[test]
    fn suspicious_prior_boosts_and_skips_burst_throttle() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "risky_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::Suspicious)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d.probability_ppm, AnalysisPriors::DEFAULT_SUSPICIOUS_PPM);
        assert_eq!(d.prior, Some(RiskClass::Suspicious));
        // 5,001 allocations in one window would throttle a default
        // context to 0.0001%; a suspicious context keeps degrading
        // normally instead.
        for _ in 0..5_001 {
            alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        }
        let p = u.probability_ppm(k).unwrap();
        assert!(p > SamplingParams::default().burst_ppm, "not throttled: {p}");
        assert!(
            p >= AnalysisPriors::DEFAULT_SUSPICIOUS_PPM - 5_002 * 10,
            "only ordinary degradation applied: {p}"
        );
    }

    #[test]
    fn unknown_prior_follows_default_schedule() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "murky_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::Unknown)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 500_000);
        assert_eq!(d.prior, Some(RiskClass::Unknown));
    }

    #[test]
    fn evidence_outranks_a_proven_safe_prior() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "misjudged_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::ProvenSafe)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        // The evidence file from a previous run knows this context
        // overflows: pinning wins over the static verdict.
        let d = u.on_allocation(
            k,
            VirtInstant::BOOT,
            &mut rng,
            &ctx(&frames, "misjudged_site"),
            |_| true,
        );
        assert!(d.wants_watch);
        assert_eq!(d.probability_ppm, PPM_SCALE);
        // Runtime canary evidence also overrides an already-applied
        // floor start.
        let k2 = key(&frames, "misjudged_site_2");
        let u2 = SamplingUnit::with_priors(
            SamplingParams::default(),
            AnalysisPriors::from_classes([(k2, RiskClass::ProvenSafe)]),
        );
        alloc(&u2, k2, VirtInstant::BOOT, &mut rng, &frames);
        u2.pin_certain(k2);
        assert_eq!(u2.probability_ppm(k2).unwrap(), PPM_SCALE);
    }

    #[test]
    fn total_allocations_sums_contexts() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        for _ in 0..3 {
            alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        }
        for _ in 0..2 {
            alloc(&u, key(&frames, "b"), VirtInstant::BOOT, &mut rng, &frames);
        }
        assert_eq!(u.total_allocations(), 5);
        assert_eq!(u.snapshot().len(), 2);
    }
}
